//! A line-aware lexical scanner for Rust sources.
//!
//! `sdds-lint` deliberately avoids `syn` (the build environment is offline
//! and every external dependency is a `shims/` path crate), so rules work
//! on a *shadow text* representation instead of a full AST. One pass over
//! the file produces, for every source line:
//!
//! * `code` — the line with comments and the *contents* of string/char
//!   literals blanked out. Token searches on this text cannot be fooled by
//!   a pattern appearing inside a string or a comment.
//! * `comments` — the mirror image: only comment text survives. Checks for
//!   `// SAFETY:`, `// ordering:` and `// lint: allow(...)` annotations
//!   read this text, so a string literal containing "SAFETY:" does not
//!   satisfy the unsafe-audit rule.
//! * `is_test` — whether the line sits inside a `#[cfg(test)]` item
//!   (a `mod tests { .. }` block or a single `#[cfg(test)]` function).
//!   Rules about production code skip these lines.
//!
//! The scanner understands line comments, nested block comments, string
//! literals with escapes, byte strings, raw strings (`r"…"`, `r#"…"#`,
//! `br"…"`), char literals, and tells lifetimes (`'a`) apart from char
//! literals (`'a'`).

/// Shadow-text view of one source file. All four vectors have one entry
/// per source line and identical line counts.
pub struct Scanned {
    /// Original line text.
    pub raw: Vec<String>,
    /// Comments and literal contents blanked with spaces.
    pub code: Vec<String>,
    /// Only comment text kept; code blanked with spaces.
    pub comments: Vec<String>,
    /// True when the line belongs to a `#[cfg(test)]` item.
    pub is_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside `"…"` (or `b"…"`).
    Str,
    /// Inside a raw string with this many `#` marks.
    RawStr(u32),
}

/// Scans `content` into its shadow-text representation.
pub fn scan(content: &str) -> Scanned {
    let chars: Vec<char> = content.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(n);
    let mut comments = String::with_capacity(n);
    let mut state = State::Code;
    // True when the previous code char continues an identifier — used to
    // tell a raw-string prefix `r"` from an identifier ending in `r`.
    let mut prev_ident = false;
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push('\n');
            comments.push('\n');
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    comments.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comments.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    comments.push(' ');
                    i += 1;
                } else if !prev_ident && (c == 'r' || c == 'b') {
                    // Possible raw/byte string prefix: r" r#" b" br" br#"
                    if let Some((hashes, skip)) = raw_string_start(&chars, i) {
                        state = State::RawStr(hashes);
                        for _ in 0..skip {
                            code.push(' ');
                            comments.push(' ');
                        }
                        code.push('"');
                        comments.push(' ');
                        i += skip + 1;
                    } else if c == 'b' && next == Some('"') {
                        state = State::Str;
                        code.push(' ');
                        code.push('"');
                        comments.push_str("  ");
                        i += 2;
                    } else {
                        prev_ident = true;
                        code.push(c);
                        comments.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime?
                    if next == Some('\\') {
                        // escaped char literal: skip to the closing quote,
                        // never consuming a newline (keeps lines aligned)
                        let mut j = i + 2;
                        while j < n && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        let end = if j < n && chars[j] == '\'' { j + 1 } else { j };
                        for _ in i..end {
                            code.push(' ');
                            comments.push(' ');
                        }
                        i = end;
                    } else if chars.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                        // plain char literal 'x'
                        code.push_str("   ");
                        comments.push_str("   ");
                        i += 3;
                    } else {
                        // lifetime: keep as code
                        code.push('\'');
                        comments.push(' ');
                        i += 1;
                    }
                    prev_ident = false;
                } else {
                    prev_ident = c.is_alphanumeric() || c == '_';
                    code.push(c);
                    comments.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                comments.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    comments.push_str("*/");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    comments.push_str("/*");
                    i += 2;
                } else {
                    code.push(' ');
                    comments.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // escape: blank the backslash; blank the escaped char
                    // too unless it is a newline (string line continuation)
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                    if i < n && chars[i] != '\n' {
                        code.push(' ');
                        comments.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                    prev_ident = false;
                    i += 1;
                } else {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                    for _ in 0..hashes {
                        code.push(' ');
                        comments.push(' ');
                    }
                    prev_ident = false;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            }
        }
    }

    let raw: Vec<String> = content.lines().map(str::to_string).collect();
    let mut code_lines: Vec<String> = code.lines().map(str::to_string).collect();
    let mut comment_lines: Vec<String> = comments.lines().map(str::to_string).collect();
    code_lines.resize(raw.len(), String::new());
    comment_lines.resize(raw.len(), String::new());
    let is_test = mark_test_regions(&code_lines);
    Scanned {
        raw,
        code: code_lines,
        comments: comment_lines,
        is_test,
    }
}

impl Scanned {
    /// The line with comments blanked but string-literal contents kept —
    /// what the secret-hygiene rule scans so inline format captures like
    /// `{key:?}` are visible while comment text is not. Relies on the
    /// scanner's column alignment across the three buffers.
    pub fn raw_sans_comments(&self, line: usize) -> String {
        self.raw[line]
            .chars()
            .zip(self.comments[line].chars().chain(std::iter::repeat(' ')))
            .map(|(r, c)| if c == ' ' { r } else { ' ' })
            .collect()
    }

    /// Contents of every string literal that opens *and* closes on `line`,
    /// as `(column_of_opening_quote, contents)`. The scanner keeps the
    /// quote characters in the `code` plane (contents blanked), so pairing
    /// quotes there and slicing the matching columns out of `raw` recovers
    /// the literal text — comments can never contribute a phantom literal.
    /// Multi-line literals are skipped (observability names never wrap).
    pub fn line_strings(&self, line: usize) -> Vec<(usize, String)> {
        let code: Vec<char> = self.code[line].chars().collect();
        let raw: Vec<char> = self.raw[line].chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < code.len() {
            if code[i] == '"' {
                let Some(close) = (i + 1..code.len()).find(|&j| code[j] == '"') else {
                    break; // opens here, closes on a later line
                };
                if close < raw.len() {
                    out.push((i, raw[i + 1..close].iter().collect()));
                }
                i = close + 1;
            } else {
                i += 1;
            }
        }
        out
    }
}

/// A `(line, column)` position in the `code` plane, 0-based.
pub type Pos = (usize, usize);

/// One `{ … }` region of a file.
#[derive(Debug, Clone)]
pub struct BraceSpan {
    /// Position of the opening `{`.
    pub open: Pos,
    /// Position of the closing `}` (end of file when unbalanced).
    pub close: Pos,
    /// Index of the innermost enclosing span, if any.
    pub parent: Option<usize>,
    /// True when the brace opens a control-flow or item scope (`fn`,
    /// `if`/`else`, `match`, a match-arm body, a loop, a closure body, a
    /// bare block) rather than a struct/enum literal or a pattern's field
    /// list. Path-sensitive rules treat only control scopes as branches.
    pub control: bool,
}

/// Nested brace structure of one file, built from the `code` plane so
/// braces inside strings and comments are invisible. Spans are stored in
/// opening order, so a span's index is greater than its parent's.
pub struct BraceTree {
    /// All spans, in order of their opening brace.
    pub spans: Vec<BraceSpan>,
}

/// Keywords whose presence in the statement introducing a `{` marks the
/// brace as a control/item scope. `let x = Foo { .. }` has none of these
/// and is classified as a literal body.
const CONTROL_KEYWORDS: [&str; 12] = [
    "if", "else", "match", "while", "loop", "for", "fn", "unsafe", "impl", "trait", "mod", "extern",
];

impl BraceTree {
    /// Builds the tree for a scanned file.
    pub fn build(s: &Scanned) -> BraceTree {
        let mut spans: Vec<BraceSpan> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (li, line) in s.code.iter().enumerate() {
            for (ci, ch) in line.chars().enumerate() {
                match ch {
                    '{' => {
                        let idx = spans.len();
                        spans.push(BraceSpan {
                            open: (li, ci),
                            close: (usize::MAX, usize::MAX),
                            parent: stack.last().copied(),
                            control: opens_control_scope(s, (li, ci)),
                        });
                        stack.push(idx);
                    }
                    '}' => {
                        if let Some(idx) = stack.pop() {
                            spans[idx].close = (li, ci);
                        }
                    }
                    _ => {}
                }
            }
        }
        let eof = (s.code.len(), 0);
        for idx in stack {
            spans[idx].close = eof;
        }
        BraceTree { spans }
    }

    /// True when `pos` lies strictly inside span `idx` (between its
    /// braces, excluding the braces themselves).
    pub fn contains(&self, idx: usize, pos: Pos) -> bool {
        let sp = &self.spans[idx];
        pos > sp.open && pos < sp.close
    }

    /// Indices of every *control* span containing `pos`, outermost first.
    pub fn control_scopes(&self, pos: Pos) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(i, sp)| sp.control && self.contains(*i, pos))
            .map(|(i, _)| i)
            .collect()
    }

    /// The span whose opening brace sits exactly at `pos`, if any.
    pub fn span_opening_at(&self, pos: Pos) -> Option<usize> {
        self.spans.iter().position(|sp| sp.open == pos)
    }
}

/// Classifies the `{` at `pos`: walks backward to the start of the
/// statement (the previous `;`, `{` or `}`) and checks the collected text
/// for control keywords, a match-arm `=>`, or a closure's trailing `|`.
/// `struct`/`enum`/`union` headers introduce field lists, not branches.
fn opens_control_scope(s: &Scanned, pos: Pos) -> bool {
    let text = statement_before(s, pos, 40);
    let toks = idents(&text);
    if toks
        .iter()
        .any(|t| matches!(*t, "struct" | "enum" | "union"))
        && !toks.contains(&"fn")
    {
        return false;
    }
    if toks.iter().any(|t| CONTROL_KEYWORDS.contains(t)) {
        return true;
    }
    let trimmed = text.trim_end();
    // a match arm's body (`… => {`), a closure body (`|x| {`), or a bare
    // block (nothing before the brace) all branch control flow
    trimmed.ends_with("=>") || trimmed.ends_with('|') || trimmed.is_empty()
}

/// Code text from the start of the enclosing statement up to (not
/// including) `pos`, scanning back at most `max_lines` lines. The
/// statement start is the nearest preceding `;`, `{` or `}` at this
/// nesting level.
pub fn statement_before(s: &Scanned, pos: Pos, max_lines: usize) -> String {
    let (line, col) = pos;
    let mut collected: Vec<char> = Vec::new();
    let first = line.saturating_sub(max_lines);
    'outer: for li in (first..=line).rev() {
        let chars: Vec<char> = s.code[li].chars().collect();
        let end = if li == line {
            col.min(chars.len())
        } else {
            chars.len()
        };
        for ci in (0..end).rev() {
            let c = chars[ci];
            if c == ';' || c == '{' || c == '}' {
                break 'outer;
            }
            collected.push(c);
        }
        collected.push(' ');
    }
    collected.iter().rev().collect()
}

/// Returns `(hash_count, prefix_len)` when position `i` starts a raw
/// string literal (`r`, `br`, any number of `#`, then `"`). `prefix_len`
/// counts the chars before the opening quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

/// True when the `"` at position `i` is followed by `hashes` `#` marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]` item. After the attribute is
/// seen, the next brace-opened item (a `mod tests { … }` block or a test
/// helper `fn`) is skipped until its closing brace; a `;` before any `{`
/// cancels the pending state (braceless items like `#[cfg(test)] use …;`).
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut until_depth: Option<i64> = None;
    for (li, line) in code_lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending = true;
        }
        let mut line_is_test = pending || until_depth.is_some();
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending {
                        until_depth = Some(depth);
                        pending = false;
                        line_is_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = until_depth {
                        if depth <= d {
                            until_depth = None;
                            line_is_test = true;
                        }
                    }
                }
                ';' if pending && until_depth.is_none() => {
                    pending = false;
                    line_is_test = true;
                }
                _ => {}
            }
        }
        is_test[li] = line_is_test || until_depth.is_some();
    }
    is_test
}

/// Splits a code line into identifier tokens (`[A-Za-z0-9_]+` runs that do
/// not start with a digit).
pub fn idents(code_line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = code_line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && {
                let c = bytes[i] as char;
                c.is_ascii_alphanumeric() || c == '_'
            } {
                i += 1;
            }
            out.push(&code_line[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_in_code() {
        let s = scan("let x = \"unsafe // not code\"; // trailing unsafe\n");
        assert!(!s.code[0].contains("unsafe"));
        assert!(s.code[0].contains("let x ="));
        assert!(s.comments[0].contains("trailing unsafe"));
        assert!(!s.comments[0].contains("let x"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let p = r#\"panic!(\"inner\")\"#; call();\n");
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("call()"));
    }

    #[test]
    fn byte_and_prefixed_strings_are_blanked() {
        let s = scan("let k = b\"unwrap()\"; let r = br\"expect(\";\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[0].contains("expect"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; c }\n");
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(!s.code[0].contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a(); /* one /* two */ still comment */ b();\n");
        assert!(s.code[0].contains("a()"));
        assert!(s.code[0].contains("b()"));
        assert!(!s.code[0].contains("still"));
        assert!(s.comments[0].contains("still comment"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let s = scan("let x = \"line one\nunwrap() inside\"; tail();\n");
        assert!(!s.code[1].contains("unwrap"));
        assert!(s.code[1].contains("tail()"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn cfg_test_fn_region_is_marked() {
        let src = "#[cfg(test)]\npub(crate) fn helper() {\n    body();\n}\nfn prod() {}\n";
        let s = scan(src);
        assert!(s.is_test[0] && s.is_test[1] && s.is_test[2] && s.is_test[3]);
        assert!(!s.is_test[4]);
    }

    #[test]
    fn cfg_test_braceless_item_only_marks_itself() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { x(); }\n";
        let s = scan(src);
        assert!(s.is_test[0] && s.is_test[1]);
        assert!(!s.is_test[2]);
    }

    #[test]
    fn ident_tokenizer() {
        assert_eq!(
            idents("self.round_keys[0] = Ordering::Relaxed;"),
            vec!["self", "round_keys", "Ordering", "Relaxed"]
        );
    }

    #[test]
    fn raw_string_with_embedded_line_comment_and_quotes() {
        // `//` and `"` inside an r#"…"# literal are literal text, not
        // comment or string delimiters — code after it must survive
        let s = scan("let u = r#\"see // not \"a\" comment\"#; tail();\n");
        assert!(s.code[0].contains("tail()"), "code: {:?}", s.code[0]);
        assert!(!s.code[0].contains("comment"));
        assert!(s.comments[0].trim().is_empty(), "nothing is a comment here");
    }

    #[test]
    fn raw_string_with_extra_hashes_ignores_shorter_terminator() {
        // `"#` inside an r##"…"## literal does not close it
        let s = scan("let u = r##\"tricky \"# bit\"##; after();\n");
        assert!(s.code[0].contains("after()"), "code: {:?}", s.code[0]);
        assert!(!s.code[0].contains("tricky"));
    }

    #[test]
    fn multiline_raw_string_with_comment_markers() {
        let s = scan("let u = r#\"line one\n// still a string\nunwrap()\"#; end();\n");
        assert!(!s.code[1].contains("still"));
        assert!(s.comments[1].trim().is_empty());
        assert!(!s.code[2].contains("unwrap"));
        assert!(s.code[2].contains("end()"));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let s =
            scan("/* a /* b /* c */ b */ a */ live();\n/* open /* still\nopen */ tail */ fin();\n");
        assert!(s.code[0].contains("live()"));
        assert!(
            !s.code[0].contains('a'),
            "comment text leaked: {:?}",
            s.code[0]
        );
        assert!(s.code[2].contains("fin()"));
        assert!(!s.code[1].contains("open"));
    }

    #[test]
    fn cfg_test_on_out_of_line_mod_marks_only_the_declaration() {
        // `#[cfg(test)] mod tests;` is braceless: the attribute and the
        // declaration are test lines, the following item is not
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x.unwrap(); }\n";
        let s = scan(src);
        assert!(s.is_test[0] && s.is_test[1]);
        assert!(
            !s.is_test[2],
            "production fn after `mod tests;` misclassified"
        );
    }

    #[test]
    fn line_strings_extracts_contents_and_skips_comments() {
        let s = scan("obs(\"lh.requests\"); x(\"a\\\"b\"); // \"not.a.literal\"\n");
        let lits = s.line_strings(0);
        assert_eq!(lits.len(), 2, "{lits:?}");
        assert_eq!(lits[0].1, "lh.requests");
        assert!(s.line_strings(0).iter().all(|(_, l)| l != "not.a.literal"));
    }

    #[test]
    fn brace_tree_classifies_control_vs_literal() {
        let src = "fn f(x: u32) -> Vec<u32> {\n    if x > 1 {\n        let w = Wire {\n            a: 1,\n        };\n    }\n    match x {\n        0 => { g(); }\n        _ => h(),\n    }\n}\n";
        let s = scan(src);
        let t = BraceTree::build(&s);
        let find = |line: usize| {
            t.spans
                .iter()
                .find(|sp| sp.open.0 == line)
                .unwrap_or_else(|| panic!("no span opening on line {line}"))
        };
        assert!(find(0).control, "fn body");
        assert!(find(1).control, "if body");
        assert!(!find(2).control, "struct literal");
        assert!(find(6).control, "match body");
        assert!(find(7).control, "arm body");
        // nesting: the struct literal's parent is the if body
        let lit = t.spans.iter().position(|sp| sp.open.0 == 2).unwrap();
        let parent = t.spans[lit].parent.unwrap();
        assert_eq!(t.spans[parent].open.0, 1);
    }

    #[test]
    fn brace_tree_control_scopes_ignore_literal_braces() {
        let src = "fn f() {\n    out.push(Wire {\n        a: 1,\n    });\n}\n";
        let s = scan(src);
        let t = BraceTree::build(&s);
        // position inside the literal body: only the fn body is a control scope
        let scopes = t.control_scopes((2, 9));
        assert_eq!(scopes.len(), 1);
        assert_eq!(t.spans[scopes[0]].open.0, 0);
    }
}
