//! `sdds-lint` — the workspace invariant checker.
//!
//! The paper's guarantees are invariants of the *code*: Stage-1 index
//! chunks must be encrypted deterministically or chunk-equality search
//! silently breaks, key material must never reach a log or a metrics
//! label, and the hand-rolled concurrency in `sdds-par`/`sdds-net` must
//! justify its memory orderings. A careless refactor can void any of
//! these without failing a functional test, so this crate machine-checks
//! them on every CI run:
//!
//! ```text
//! cargo run -p sdds-lint -- --workspace [--json lint.json]
//! ```
//!
//! See [`rules`] for the per-file rules, [`protocol`] for the cross-file
//! protocol rules and the `Wire` send×handle matrix, and [`scanner`] for
//! the `syn`-free shadow-text lexer they all run on. Shim crates
//! (`shims/`) are exempt: they are offline stand-ins for external
//! dependencies, mirror the upstream APIs (which panic where upstream
//! panics), and hold no key material — see `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod rules;
pub mod scanner;

use protocol::{ProtocolAnalysis, ProtocolMatrix};
use rules::{Diagnostic, UnsafeSite};
use std::path::{Path, PathBuf};

/// Aggregated result of linting a set of files.
#[derive(Default)]
pub struct Report {
    /// Findings that fail the run.
    pub violations: Vec<Diagnostic>,
    /// Findings suppressed by `lint: allow(...)` annotations.
    pub allowed: Vec<Diagnostic>,
    /// Every `unsafe` occurrence with its rationale status.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The `Wire` send×handle matrix (present when the codec file was in
    /// the scanned set, i.e. on workspace runs).
    pub matrix: Option<ProtocolMatrix>,
}

impl Report {
    /// True when no violations remain (allowed findings do not fail).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Lints one in-memory source as though it lived at `rel_path`
    /// (workspace-relative, `/`-separated). Rule scoping keys off the
    /// path, which is what lets fixture tests replay a rule's scope.
    pub fn lint_source(&mut self, rel_path: &str, content: &str) {
        let scanned = scanner::scan(content);
        let (diags, inventory) = rules::check_file(rel_path, &scanned);
        for d in diags {
            if d.allowed {
                self.allowed.push(d);
            } else {
                self.violations.push(d);
            }
        }
        self.unsafe_inventory.extend(inventory);
        self.files_scanned += 1;
    }

    /// Serializes the report as JSON (hand-rolled: this crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"rules\": [{}],\n",
            self.files_scanned,
            rules::RULES
                .iter()
                .map(|r| format!("\"{r}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let diag_json = |d: &Diagnostic| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
                 \"excerpt\": \"{}\"}}",
                d.rule,
                json_escape(&d.file),
                d.line,
                json_escape(&d.message),
                json_escape(&d.excerpt)
            )
        };
        out.push_str("  \"violations\": [\n");
        out.push_str(
            &self
                .violations
                .iter()
                .map(diag_json)
                .collect::<Vec<_>>()
                .join(",\n"),
        );
        out.push_str("\n  ],\n  \"allowed\": [\n");
        out.push_str(
            &self
                .allowed
                .iter()
                .map(diag_json)
                .collect::<Vec<_>>()
                .join(",\n"),
        );
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"unsafe_inventory\": [\n{}\n  ]\n}}\n",
            self.unsafe_inventory_json(4)
        ));
        out
    }

    /// The unsafe inventory as a JSON array body (used both in the full
    /// report and in the standalone `--unsafe-inventory` artifact).
    pub fn unsafe_inventory_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        self.unsafe_inventory
            .iter()
            .map(|u| {
                format!(
                    "{pad}{{\"file\": \"{}\", \"line\": {}, \"has_safety\": {}, \"excerpt\": \
                     \"{}\"}}",
                    json_escape(&u.file),
                    u.line,
                    u.has_safety,
                    json_escape(&u.excerpt)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never scanned, relative to the workspace root.
///
/// * `shims/` — offline dependency stand-ins, exempt by policy
///   (`shims/README.md`).
/// * `target/` — build output.
/// * `crates/lint/tests/fixtures/` — seeded-violation fixtures that must
///   keep violating so the rule tests stay honest.
const SKIP_PREFIXES: [&str; 4] = ["shims", "target", ".git", "crates/lint/tests/fixtures"];

/// Recursively collects workspace `.rs` files eligible for scanning.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints a set of in-memory sources as one coherent tree: runs the
/// per-file rules and the cross-file protocol analysis over a single
/// scanner pass per file, then sorts every diagnostic list by
/// (path, line, rule) so the JSON report is byte-stable.
///
/// `obs_doc` is the text of `docs/OBSERVABILITY.md`; `None` disables the
/// obs-drift doc comparison (code-side checks still run).
pub fn lint_files(files: &[(&str, &str)], obs_doc: Option<&str>) -> Report {
    let mut report = Report::default();
    let mut analysis = ProtocolAnalysis::new();
    for (rel_path, content) in files {
        let scanned = scanner::scan(content);
        let (diags, inventory) = rules::check_file(rel_path, &scanned);
        for d in diags {
            if d.allowed {
                report.allowed.push(d);
            } else {
                report.violations.push(d);
            }
        }
        report.unsafe_inventory.extend(inventory);
        analysis.add_file(rel_path, &scanned);
        report.files_scanned += 1;
    }
    let (proto_diags, matrix) = analysis.finish(obs_doc);
    for d in proto_diags {
        if d.allowed {
            report.allowed.push(d);
        } else {
            report.violations.push(d);
        }
    }
    report.matrix = matrix;
    let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
    report.violations.sort_by_key(key);
    report.allowed.sort_by_key(key);
    report
        .unsafe_inventory
        .sort_by_key(|u| (u.file.clone(), u.line));
    report
}

/// Lints every eligible `.rs` file under the workspace root, including
/// the protocol rules (which need the whole tree plus the observability
/// catalog).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut owned: Vec<(String, String)> = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        owned.push((rel, content));
    }
    let files: Vec<(&str, &str)> = owned
        .iter()
        .map(|(r, c)| (r.as_str(), c.as_str()))
        .collect();
    let obs_doc = std::fs::read_to_string(root.join("docs/OBSERVABILITY.md")).ok();
    Ok(lint_files(&files, obs_doc.as_deref()))
}

/// Finds the workspace root by walking upward from `start` until a
/// `Cargo.toml` containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
