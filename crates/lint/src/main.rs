//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p sdds-lint -- --workspace                 # human-readable, exit 1 on violations
//! cargo run -p sdds-lint -- --workspace --json lint.json
//! cargo run -p sdds-lint -- --workspace --unsafe-inventory unsafe-inventory.json
//! cargo run -p sdds-lint -- --workspace --protocol-matrix protocol-matrix.json
//! cargo run -p sdds-lint -- --as crates/cipher/src/x.rs some/fixture.rs
//! ```
//!
//! `--as` lints a single file as though it lived at the given
//! workspace-relative path — the way to demonstrate a rule against a
//! seeded fixture from the command line.

use sdds_lint::{find_workspace_root, lint_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut inventory_path: Option<PathBuf> = None;
    let mut matrix_path: Option<PathBuf> = None;
    let mut as_path: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => root = it.next().map(PathBuf::from),
            "--json" => json_path = it.next().map(PathBuf::from),
            "--unsafe-inventory" => inventory_path = it.next().map(PathBuf::from),
            "--protocol-matrix" => matrix_path = it.next().map(PathBuf::from),
            "--as" => as_path = it.next(),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(PathBuf::from(other)),
            other => {
                eprintln!("sdds-lint: unknown flag {other}\n{HELP}");
                return ExitCode::from(2);
            }
        }
    }

    let report = if let Some(rel) = as_path {
        let Some(path) = file else {
            eprintln!("sdds-lint: --as <rel-path> requires a file argument");
            return ExitCode::from(2);
        };
        let mut report = Report::default();
        match std::fs::read_to_string(&path) {
            Ok(content) => report.lint_source(&rel, &content),
            Err(e) => {
                eprintln!("sdds-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        report
    } else if workspace {
        let root = root
            .or_else(|| {
                std::env::current_dir()
                    .ok()
                    .and_then(|d| find_workspace_root(&d))
            })
            .unwrap_or_else(|| PathBuf::from("."));
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sdds-lint: scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        eprintln!("sdds-lint: nothing to do (pass --workspace or --as)\n{HELP}");
        return ExitCode::from(2);
    };

    if let Some(p) = &json_path {
        if let Err(e) = std::fs::write(p, report.to_json()) {
            eprintln!("sdds-lint: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &inventory_path {
        let body = format!("[\n{}\n]\n", report.unsafe_inventory_json(2));
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("sdds-lint: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &matrix_path {
        let Some(matrix) = &report.matrix else {
            eprintln!(
                "sdds-lint: --protocol-matrix needs a workspace run that includes the Wire codec"
            );
            return ExitCode::from(2);
        };
        if let Err(e) = std::fs::write(p, matrix.to_json()) {
            eprintln!("sdds-lint: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for d in &report.violations {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
            println!("    {}", d.excerpt);
        }
        println!(
            "sdds-lint: {} file(s) scanned, {} violation(s), {} allowed via `lint: allow`, {} \
             unsafe site(s) inventoried ({} with SAFETY rationale)",
            report.files_scanned,
            report.violations.len(),
            report.allowed.len(),
            report.unsafe_inventory.len(),
            report
                .unsafe_inventory
                .iter()
                .filter(|u| u.has_safety)
                .count()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const HELP: &str = "\
sdds-lint: workspace invariant checker for the paper's security contracts

USAGE:
    sdds-lint --workspace [--root DIR] [--json FILE] [--unsafe-inventory FILE]
              [--protocol-matrix FILE] [--quiet]
    sdds-lint --as <workspace-rel-path> <file>

Rules: secret-hygiene, determinism, unsafe-audit, panic-freedom,
atomics-rationale, protocol-coverage, reply-obligation, must-land,
obs-drift. Suppress one finding with `// lint: allow(<rule>)` on the same
or preceding line. shims/ and target/ are never scanned. The protocol
rules and the send/handle matrix need a --workspace run; --protocol-matrix
writes the machine-readable matrix CI diffs against the committed copy.
";
