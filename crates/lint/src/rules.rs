//! The per-file invariant rules (the cross-file protocol rules live in
//! [`crate::protocol`]).
//!
//! Each rule machine-checks one structural property the paper's security
//! argument rests on (see `DESIGN.md` § "Static analysis"):
//!
//! | rule                | protects                                          |
//! |---------------------|---------------------------------------------------|
//! | `secret-hygiene`    | key confidentiality (§5 key hierarchy)            |
//! | `determinism`       | ECB/PRP determinism of the Stage-1 index (§2.1)   |
//! | `unsafe-audit`      | memory-safety rationale coverage                  |
//! | `panic-freedom`     | availability of library crates (no abort paths)   |
//! | `atomics-rationale` | justified memory orderings in concurrent code     |
//! | `protocol-coverage` | protocol totality: every sent variant is handled  |
//! | `reply-obligation`  | request handlers reply on every branch            |
//! | `must-land`         | control-plane sends ride the `SendQueue`          |
//! | `obs-drift`         | metric/span catalog ↔ code agreement              |
//!
//! All line-level rules for a file run in one pass over a single
//! [`Scanned`] shadow text (scope predicates evaluated once per file,
//! every line visited once), so adding rules does not add rescans.
//!
//! A finding on line *n* is suppressed by `// lint: allow(<rule>)` on line
//! *n* or *n−1*; suppressed findings are still reported (as `allowed`) in
//! the JSON report so escape hatches stay auditable.

use crate::scanner::{idents, Scanned};

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (kebab-case, as used in `lint: allow(...)`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// True when an adjacent `lint: allow` annotation suppresses it.
    pub allowed: bool,
}

/// One `unsafe` occurrence, for the inventory artifact.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// True when a `// SAFETY:` rationale is adjacent.
    pub has_safety: bool,
    /// The source line, trimmed.
    pub excerpt: String,
}

/// All rule identifiers, in reporting order.
pub const RULES: [&str; 9] = [
    "secret-hygiene",
    "determinism",
    "unsafe-audit",
    "panic-freedom",
    "atomics-rationale",
    "protocol-coverage",
    "reply-obligation",
    "must-land",
    "obs-drift",
];

/// Library crates whose non-test code must be panic-free (ISSUE 3). The
/// binaries (`src/`, `crates/bench`) and test-support crates are exempt.
const PANIC_FREE_CRATES: [&str; 10] = [
    "gf", "cipher", "chunk", "encode", "disperse", "core", "lh", "net", "par", "storage",
];

/// Stage-1 index path: the only encryption allowed here is deterministic
/// (the chunk PRP / ECB). See the paper §2.1.
fn in_stage1_index_path(path: &str) -> bool {
    path == "crates/core/src/pipeline.rs" || path.starts_with("crates/chunk/src/")
}

fn in_panic_free_scope(path: &str) -> bool {
    PANIC_FREE_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn in_atomics_scope(path: &str) -> bool {
    path.starts_with("crates/par/src/") || path.starts_with("crates/net/src/")
}

fn in_cipher(path: &str) -> bool {
    path.starts_with("crates/cipher/src/")
}

/// Identifiers treated as key material for the secret-hygiene rule.
fn is_secret_ident(id: &str) -> bool {
    let id = id.to_ascii_lowercase();
    id == "key"
        || id == "keys"
        || id.starts_with("key_")
        || id.ends_with("_key")
        || id.ends_with("_keys")
        || id.contains("master")
        || id.contains("round_key")
        || id.contains("secret")
        || id.contains("passphrase")
}

/// True when `comments[line]` or the immediately preceding line carries a
/// `lint: allow(<rule>)` annotation.
pub(crate) fn is_allowed(s: &Scanned, line: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    let here = s.comments.get(line).map(|c| c.contains(&marker));
    let above = line
        .checked_sub(1)
        .and_then(|l| s.comments.get(l))
        .map(|c| c.contains(&marker));
    here == Some(true) || above == Some(true)
}

/// True when a rationale `needle` appears in the trailing comment of
/// `line` or in the contiguous run of comment-only lines directly above.
fn has_adjacent_rationale(s: &Scanned, line: usize, needle: &str) -> bool {
    let matches = |l: usize| s.comments[l].to_ascii_lowercase().contains(needle);
    if matches(line) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        let comment_only = s.code[l].trim().is_empty() && !s.comments[l].trim().is_empty();
        if !comment_only {
            return false;
        }
        if matches(l) {
            return true;
        }
    }
    false
}

fn push(
    out: &mut Vec<Diagnostic>,
    s: &Scanned,
    path: &str,
    line: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        file: path.to_string(),
        line: line + 1,
        message,
        excerpt: s.raw[line].trim().to_string(),
        allowed: is_allowed(s, line, rule),
    });
}

/// Runs every applicable line-level rule over one scanned file in a
/// single pass: scope predicates are computed once, then each line is
/// visited exactly once with all in-scope rules dispatched on it.
pub fn check_file(path: &str, s: &Scanned) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
    let mut diags = Vec::new();
    let mut inventory = Vec::new();
    let stage1 = in_stage1_index_path(path);
    let panic_free = in_panic_free_scope(path);
    let atomics = in_atomics_scope(path);
    let cipher = in_cipher(path);
    for line in 0..s.code.len() {
        // the unsafe inventory covers test code too — it is the audit surface
        unsafe_audit_line(path, s, line, &mut diags, &mut inventory);
        if s.is_test[line] {
            continue;
        }
        secret_hygiene_line(path, s, line, cipher, &mut diags);
        if stage1 {
            determinism_line(path, s, line, &mut diags);
        }
        if panic_free {
            panic_freedom_line(path, s, line, &mut diags);
        }
        if atomics {
            atomics_rationale_line(path, s, line, &mut diags);
        }
    }
    (diags, inventory)
}

/// Rule 1: key material must never become observable.
///
/// Inside `crates/cipher`: no `derive(Debug)`/serde derives on key-bearing
/// types, no print/debug macros at all, and no formatting macro that
/// mentions a key identifier (including inline `{key:?}` captures — these
/// are checked against the raw line because captures live inside the
/// format string). Workspace-wide: no key identifier may appear in a
/// `sdds_obs` call (metric names/labels end up in snapshots and logs).
fn secret_hygiene_line(
    path: &str,
    s: &Scanned,
    line: usize,
    cipher: bool,
    out: &mut Vec<Diagnostic>,
) {
    const RULE: &str = "secret-hygiene";
    let code = &s.code[line];
    // workspace-wide: obs labels
    if code.contains("sdds_obs::")
        && idents(&s.raw_sans_comments(line))
            .iter()
            .any(|i| is_secret_ident(i))
    {
        push(
            out,
            s,
            path,
            line,
            RULE,
            "key-material identifier flows into an sdds-obs call; metric names and labels \
             reach snapshots, logs and sidecar files"
                .into(),
        );
    }
    if !cipher {
        return;
    }
    // print/debug macros are banned outright in the cipher crate
    for mac in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
        if code.contains(mac) {
            push(
                out,
                s,
                path,
                line,
                RULE,
                format!("`{mac}` in sdds-cipher: cipher code must never write to stdio"),
            );
        }
    }
    // formatting a secret (arguments or inline captures)
    for mac in ["format!", "write!", "writeln!", "panic!", "todo!"] {
        if code.contains(mac)
            && idents(&s.raw_sans_comments(line))
                .iter()
                .any(|i| is_secret_ident(i))
        {
            push(
                out,
                s,
                path,
                line,
                RULE,
                format!("`{mac}` formats a key-material identifier in sdds-cipher"),
            );
        }
    }
    // derive(Debug/Serialize/Deserialize) on a key-bearing type
    if let Some(derived) = risky_derives(code) {
        if let Some(field) = key_bearing_field(s, line) {
            push(
                out,
                s,
                path,
                line,
                RULE,
                format!(
                    "derive({derived}) on a key-bearing type (field `{field}`): derived \
                     formatting/serialization would expose key bytes; write a redacting \
                     impl instead"
                ),
            );
        }
    }
}

/// The risky derive names present in a `#[derive(...)]` list, if any.
fn risky_derives(code: &str) -> Option<String> {
    let start = code.find("derive(")?;
    let list = &code[start + "derive(".len()..];
    let list = &list[..list.find(')').unwrap_or(list.len())];
    let risky: Vec<&str> = idents(list)
        .into_iter()
        .filter(|i| matches!(*i, "Debug" | "Serialize" | "Deserialize"))
        .collect();
    if risky.is_empty() {
        None
    } else {
        Some(risky.join(", "))
    }
}

/// Looks at the item following a derive attribute on `attr_line`; returns
/// the first secret-named field found in its body, scanning at most 60
/// lines (plenty for the structs in this workspace).
fn key_bearing_field(s: &Scanned, attr_line: usize) -> Option<String> {
    // find the struct/enum header
    let mut l = attr_line;
    let mut header = None;
    for _ in 0..6 {
        let toks = idents(&s.code[l]);
        if toks.contains(&"struct") || toks.contains(&"enum") {
            header = Some(l);
            break;
        }
        l += 1;
        if l >= s.code.len() {
            return None;
        }
    }
    let header = header?;
    // walk the braced body collecting `name:` field identifiers
    let mut depth = 0i64;
    let mut entered = false;
    for l in header..(header + 60).min(s.code.len()) {
        let code = &s.code[l];
        if entered && depth == 1 {
            if let Some(field) = field_ident(code) {
                if is_secret_ident(&field) {
                    return Some(field);
                }
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                ';' if !entered && depth == 0 => return None, // tuple/unit struct
                _ => {}
            }
        }
        if entered && depth <= 0 {
            return None;
        }
    }
    None
}

/// The field name on a `name: Type,` line, skipping visibility modifiers.
fn field_ident(code: &str) -> Option<String> {
    // first `:` that is not part of `::`
    let bytes = code.as_bytes();
    let mut colon = None;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b':' {
            if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                i += 2;
                continue;
            }
            colon = Some(i);
            break;
        }
        i += 1;
    }
    let before = &code[..colon?];
    idents(before)
        .into_iter()
        .rfind(|t| !matches!(*t, "pub" | "crate" | "super" | "in" | "self"))
        .map(str::to_string)
}

/// Rule 2: only deterministic (ECB/PRP) encryption inside the Stage-1
/// index path. A CBC or CTR call there breaks chunk-equality search
/// silently — results just go incomplete (§2.1).
fn determinism_line(path: &str, s: &Scanned, line: usize, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    for tok in idents(&s.code[line]) {
        if matches!(tok, "cbc_encrypt" | "cbc_decrypt" | "ctr_xor") {
            push(
                out,
                s,
                path,
                line,
                RULE,
                format!(
                    "`{tok}` in the Stage-1 index path: index chunks must be encrypted \
                     deterministically (ECB/chunk-PRP) or equality search breaks"
                ),
            );
        }
    }
}

/// Rule 3: every `unsafe` needs an adjacent `// SAFETY:` rationale, and
/// all occurrences are inventoried (test code included — the inventory is
/// the audit surface).
fn unsafe_audit_line(
    path: &str,
    s: &Scanned,
    line: usize,
    out: &mut Vec<Diagnostic>,
    inventory: &mut Vec<UnsafeSite>,
) {
    const RULE: &str = "unsafe-audit";
    if !idents(&s.code[line]).contains(&"unsafe") {
        return;
    }
    let has_safety = has_adjacent_rationale(s, line, "safety:");
    inventory.push(UnsafeSite {
        file: path.to_string(),
        line: line + 1,
        has_safety,
        excerpt: s.raw[line].trim().to_string(),
    });
    if !has_safety {
        push(
            out,
            s,
            path,
            line,
            RULE,
            "`unsafe` without a `// SAFETY:` rationale on the preceding line".into(),
        );
    }
}

/// Rule 4: no panic paths in non-test library code.
fn panic_freedom_line(path: &str, s: &Scanned, line: usize, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-freedom";
    const PATTERNS: [&str; 6] = [
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    for pat in PATTERNS {
        if s.code[line].contains(pat) {
            let what = pat.trim_start_matches('.').trim_end_matches('(');
            push(
                out,
                s,
                path,
                line,
                RULE,
                format!(
                    "`{what}` in library code: a panic here aborts a whole site; return a \
                     Result, use debug_assert!, or justify with `lint: allow(panic-freedom)`"
                ),
            );
        }
    }
}

/// Rule 5: every `Ordering::` use in the concurrency crates needs an
/// adjacent `// ordering:` justification comment.
fn atomics_rationale_line(path: &str, s: &Scanned, line: usize, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "atomics-rationale";
    if !s.code[line].contains("Ordering::") {
        return;
    }
    if !has_adjacent_rationale(s, line, "ordering:") {
        push(
            out,
            s,
            path,
            line,
            RULE,
            "atomic `Ordering::` use without an adjacent `// ordering:` justification \
             comment"
                .into(),
        );
    }
}
