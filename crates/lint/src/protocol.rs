//! Protocol-aware analysis: the `Wire` send×handle matrix and the four
//! flow-sensitive rules built on it.
//!
//! The paper's availability and ≤2-hop guarantees assume the LH* message
//! protocol is *total*: every message that can be sent has a handler,
//! every request produces a reply on every control-flow path, and
//! control-plane traffic can never be starved by admission control. PR 7
//! enforces the last invariant dynamically (`SendQueue`); this module
//! enforces all three at the source level, plus doc/code agreement for
//! the observability catalog:
//!
//! | rule                | checks                                          |
//! |---------------------|-------------------------------------------------|
//! | `protocol-coverage` | every constructed variant has an event-loop     |
//! |                     | handler; no dead handler arms                   |
//! | `reply-obligation`  | request handlers emit the paired response (or   |
//! |                     | forward the request) on every branch            |
//! | `must-land`         | event loops never bypass `SendQueue` for        |
//! |                     | control-plane sends                             |
//! | `obs-drift`         | metric/span name literals ↔ `docs/OBSERVABILITY.md` |
//!
//! Classification is purely lexical over the shadow text plus the
//! [`BraceTree`]: a `Wire::Variant` occurrence is a *pattern* when it is
//! inside a `matches!(..)` call, followed by `=>` (with an optional
//! guard), by `|` alternation, or by a single `=` (refutable `let`);
//! every other occurrence is a *construction* (a send). Patterns in the
//! five protocol actor files count as handles; constructions anywhere in
//! `crates/lh/src` (except the codec) count as sends.

use crate::rules::{is_allowed, Diagnostic};
use crate::scanner::{idents, statement_before, BraceTree, Pos, Scanned};

/// Rule identifiers this module owns, in reporting order.
pub const PROTOCOL_RULES: [&str; 4] = [
    "protocol-coverage",
    "reply-obligation",
    "must-land",
    "obs-drift",
];

/// The wire codec. Its `encode`/`decode` matches touch every variant by
/// construction, so it is excluded from the send/handle matrix (only the
/// enum declaration is read from it).
const CODEC_FILE: &str = "crates/lh/src/messages.rs";

/// Files whose `Wire` patterns count as protocol handlers: the three site
/// event loops plus the client/cluster sides that consume replies.
const HANDLER_FILES: [&str; 5] = [
    "crates/lh/src/bucket.rs",
    "crates/lh/src/client.rs",
    "crates/lh/src/cluster.rs",
    "crates/lh/src/coordinator.rs",
    "crates/lh/src/parity.rs",
];

/// The site event loops: reply-obligation and must-land apply here.
const LOOP_FILES: [&str; 3] = [
    "crates/lh/src/bucket.rs",
    "crates/lh/src/coordinator.rs",
    "crates/lh/src/parity.rs",
];

/// Request-shaped variants and the response each handler must emit.
/// Mirrors the reply classes `drain.rs::must_land` sheds under overload.
const REPLY_PAIRS: [(&str, &str); 6] = [
    ("Request", "Response"),
    ("ScanReq", "ScanResp"),
    ("SlotsRead", "SlotsState"),
    ("Dump", "DumpState"),
    ("ExtentReq", "ExtentResp"),
    ("ParityRead", "ParityState"),
];

/// Control-plane variants that must go through `SendQueue` inside an
/// event loop (PR 7's no-starvation discipline, statically).
const MUST_LAND_VARIANTS: [&str; 9] = [
    "Overflow",
    "Underflow",
    "SplitCmd",
    "MergeCmd",
    "SplitDone",
    "MergeDone",
    "TransferBatch",
    "TransferAck",
    "ParityUpdate",
];

/// Namespaces whose dotted string literals are observability names.
const OBS_NAMESPACES: [&str; 12] = [
    "lh", "net", "core", "storage", "leak", "cipher", "bucket", "coord", "parity", "client",
    "search", "obs",
];

/// File-ish suffixes that disqualify a dotted literal from being an
/// observability name (`leak.json`, `bucket.rs`, …).
const NON_NAME_SUFFIXES: [&str; 5] = [".json", ".jsonl", ".md", ".rs", ".toml"];

/// How a `Wire::Variant` occurrence is used.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// Expression position: a construction, i.e. a send site.
    Send,
    /// Pattern position (match arm, `matches!`, refutable `let`).
    Pattern,
}

/// One classified `Wire::Variant` occurrence.
#[derive(Debug, Clone)]
struct Occurrence {
    file: String,
    /// 0-based position of the `W` in `Wire::`.
    pos: Pos,
    variant: String,
    kind: Kind,
    /// For a match-arm pattern: position of the `=>` token.
    arm_arrow: Option<Pos>,
    /// True when the occurrence sits in a handler file.
    in_handler_file: bool,
    excerpt: String,
    allowed_coverage: bool,
}

/// One `Wire` enum variant declaration.
#[derive(Debug, Clone)]
struct VariantDecl {
    name: String,
    /// 0-based line in the codec file.
    line: usize,
    excerpt: String,
    allowed: bool,
}

/// One observability-name literal in code.
#[derive(Debug, Clone)]
struct ObsUse {
    file: String,
    /// 0-based line.
    line: usize,
    name: String,
    excerpt: String,
    allowed: bool,
}

/// One name (or `*` wildcard pattern) documented in the catalog.
#[derive(Debug, Clone)]
struct DocName {
    pattern: String,
    /// 0-based line in the doc.
    line: usize,
    excerpt: String,
}

/// A half-open region of code: `start` inclusive, `end` exclusive.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: Pos,
    end: Pos,
}

impl Region {
    fn contains(&self, pos: Pos) -> bool {
        pos >= self.start && pos < self.end
    }
}

/// One variant's row of the committed `protocol-matrix.json`.
#[derive(Debug, Clone)]
pub struct VariantEntry {
    /// Variant name.
    pub name: String,
    /// `file:line` (1-based) of every non-test construction site.
    pub sends: Vec<String>,
    /// `file:line` (1-based) of every handler-file pattern site.
    pub handles: Vec<String>,
    /// For request-shaped variants: the paired response variant.
    pub responds_with: Option<String>,
    /// For request-shaped variants: handler paths that can exit without
    /// emitting the reply (0 on a healthy tree).
    pub unreplied_paths: usize,
}

/// The machine-readable send×handle matrix over `Wire`.
#[derive(Debug, Clone, Default)]
pub struct ProtocolMatrix {
    /// One entry per variant, in declaration order.
    pub variants: Vec<VariantEntry>,
}

impl ProtocolMatrix {
    /// Renders the matrix as deterministic JSON (stable field and entry
    /// order) for the committed artifact CI diffs against.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"variants\": [\n");
        let rows: Vec<String> = self
            .variants
            .iter()
            .map(|v| {
                let list = |xs: &[String]| {
                    xs.iter()
                        .map(|x| format!("\"{}\"", crate::json_escape(x)))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let reply = match &v.responds_with {
                    Some(r) => format!(
                        "{{\"responds_with\": \"{}\", \"unreplied_paths\": {}}}",
                        r, v.unreplied_paths
                    ),
                    None => "null".to_string(),
                };
                format!(
                    "    {{\"variant\": \"{}\", \"sends\": [{}], \"handles\": [{}], \"reply\": {}}}",
                    v.name,
                    list(&v.sends),
                    list(&v.handles),
                    reply
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Accumulates protocol facts file by file, then renders diagnostics and
/// the matrix. Feed every scanned file through [`add_file`], then call
/// [`finish`].
///
/// [`add_file`]: ProtocolAnalysis::add_file
/// [`finish`]: ProtocolAnalysis::finish
#[derive(Default)]
pub struct ProtocolAnalysis {
    variants: Vec<VariantDecl>,
    occurrences: Vec<Occurrence>,
    flow_diags: Vec<Diagnostic>,
    obs_uses: Vec<ObsUse>,
}

impl ProtocolAnalysis {
    /// A fresh, empty analysis.
    pub fn new() -> ProtocolAnalysis {
        ProtocolAnalysis::default()
    }

    /// Collects protocol facts from one scanned file. Reuses the same
    /// [`Scanned`] the per-file rules ran on — one scanner pass per file.
    pub fn add_file(&mut self, path: &str, s: &Scanned) {
        self.collect_obs_names(path, s);
        if path == CODEC_FILE {
            self.variants = parse_wire_enum(s);
            return;
        }
        if !path.starts_with("crates/lh/src/") {
            return;
        }
        let view = FileView::new(path, s);
        let occs = view.wire_occurrences();
        if LOOP_FILES.contains(&path) {
            self.check_reply_obligation(&view, &occs);
            self.check_must_land(&view, &occs);
        }
        self.occurrences.extend(occs);
    }

    /// Renders all protocol diagnostics and the matrix. `obs_doc` is the
    /// text of `docs/OBSERVABILITY.md`; without it the obs-drift rule is
    /// skipped (single-fixture replays). The matrix is `None` when the
    /// codec file was never scanned.
    pub fn finish(mut self, obs_doc: Option<&str>) -> (Vec<Diagnostic>, Option<ProtocolMatrix>) {
        let mut diags = std::mem::take(&mut self.flow_diags);
        if let Some(doc) = obs_doc {
            self.check_obs_drift(doc, &mut diags);
        }
        if self.variants.is_empty() {
            return (diags, None);
        }
        let matrix = self.build_matrix(&mut diags);
        (diags, Some(matrix))
    }

    /// protocol-coverage + matrix assembly (both need the full variant ×
    /// occurrence view, so they run together).
    fn build_matrix(&self, diags: &mut Vec<Diagnostic>) -> ProtocolMatrix {
        let mut matrix = ProtocolMatrix::default();
        for v in &self.variants {
            let mut sends: Vec<(String, usize)> = Vec::new();
            let mut handles: Vec<(String, usize)> = Vec::new();
            let mut first_handle: Option<&Occurrence> = None;
            for occ in self.occurrences.iter().filter(|o| o.variant == v.name) {
                match occ.kind {
                    Kind::Send => sends.push((occ.file.clone(), occ.pos.0 + 1)),
                    Kind::Pattern if occ.in_handler_file => {
                        handles.push((occ.file.clone(), occ.pos.0 + 1));
                        if first_handle.is_none() {
                            first_handle = Some(occ);
                        }
                    }
                    Kind::Pattern => {}
                }
            }
            sends.sort();
            handles.sort();
            match (sends.is_empty(), handles.is_empty()) {
                (false, true) => diags.push(Diagnostic {
                    rule: "protocol-coverage",
                    file: CODEC_FILE.to_string(),
                    line: v.line + 1,
                    message: format!(
                        "`Wire::{}` is constructed but no event loop handles it; a send of this \
                         variant is a black hole",
                        v.name
                    ),
                    excerpt: v.excerpt.clone(),
                    allowed: v.allowed,
                }),
                (true, false) => {
                    let h = first_handle.expect("non-empty handles");
                    diags.push(Diagnostic {
                        rule: "protocol-coverage",
                        file: h.file.clone(),
                        line: h.pos.0 + 1,
                        message: format!(
                            "dead handler arm: `Wire::{}` is never constructed outside the codec \
                             and tests",
                            v.name
                        ),
                        excerpt: h.excerpt.clone(),
                        allowed: h.allowed_coverage,
                    });
                }
                (true, true) => diags.push(Diagnostic {
                    rule: "protocol-coverage",
                    file: CODEC_FILE.to_string(),
                    line: v.line + 1,
                    message: format!(
                        "`Wire::{}` is declared but never constructed and never handled",
                        v.name
                    ),
                    excerpt: v.excerpt.clone(),
                    allowed: v.allowed,
                }),
                (false, false) => {}
            }
            let reply = REPLY_PAIRS.iter().find(|(req, _)| *req == v.name);
            matrix.variants.push(VariantEntry {
                name: v.name.clone(),
                sends: sends.iter().map(|(f, l)| format!("{f}:{l}")).collect(),
                handles: handles.iter().map(|(f, l)| format!("{f}:{l}")).collect(),
                responds_with: reply.map(|(_, resp)| resp.to_string()),
                unreplied_paths: diags
                    .iter()
                    .filter(|d| {
                        d.rule == "reply-obligation" && d.message.contains(&format!("`{}`", v.name))
                    })
                    .count(),
            });
        }
        matrix
    }

    /// reply-obligation: every match arm for a request-shaped variant,
    /// inside a `-> Vec<(SiteId, Wire)>` function of an event-loop file,
    /// must emit the paired response (or re-send the request — a forward
    /// transfers the obligation) on every exit path of its body or of the
    /// function it delegates to.
    fn check_reply_obligation(&mut self, view: &FileView, occs: &[Occurrence]) {
        let fns = view.find_fns();
        let wire_fns: Vec<&FnDecl> = fns.iter().filter(|f| f.is_wire_fn()).collect();
        for occ in occs {
            let Some(arrow) = occ.arm_arrow else { continue };
            let Some((_, response)) = REPLY_PAIRS.iter().find(|(req, _)| *req == occ.variant)
            else {
                continue;
            };
            if !wire_fns
                .iter()
                .any(|f| f.body.is_some_and(|b| b.contains(occ.pos)))
            {
                continue; // span-name tables etc. carry no reply duty
            }
            let Some(region) = view.arm_body(arrow) else {
                continue;
            };
            let emits = |r: Region| -> Vec<Pos> {
                occs.iter()
                    .filter(|e| {
                        e.kind == Kind::Send
                            && (e.variant == *response || e.variant == occ.variant)
                            && r.contains(e.pos)
                    })
                    .map(|e| e.pos)
                    .collect()
            };
            let mut target = region;
            let mut emissions = emits(region);
            if emissions.is_empty() {
                // delegation: `self.handle_request(..)` — path-check the
                // called wire-handler function instead
                match view.delegate_body(region, &wire_fns) {
                    Some(body) => {
                        target = body;
                        emissions = emits(body);
                    }
                    None => {
                        self.push_flow(
                            view,
                            occ.pos.0,
                            "reply-obligation",
                            format!(
                                "handler arm for `{}` never constructs `{}` (and does not forward \
                                 the request or delegate to a wire handler)",
                                occ.variant, response
                            ),
                        );
                        continue;
                    }
                }
            }
            for exit in view.exit_paths(target) {
                if !view.exit_satisfied(exit, &emissions, target) {
                    self.push_flow(
                        view,
                        exit.0,
                        "reply-obligation",
                        format!(
                            "`{}` handler: this path can return without sending `{}` (or \
                             forwarding `{}`) — the client would hang until timeout",
                            occ.variant, response, occ.variant
                        ),
                    );
                }
            }
        }
    }

    /// must-land: inside an event-loop file, a control-plane construction
    /// whose statement also performs a direct `.send(..)`/`.send_traced(..)`
    /// on anything but the `outbox` (the `SendQueue`) is a starvation bug:
    /// admission control may reject it and nothing will retry.
    fn check_must_land(&mut self, view: &FileView, occs: &[Occurrence]) {
        for occ in occs {
            if occ.kind != Kind::Send || !MUST_LAND_VARIANTS.contains(&occ.variant.as_str()) {
                continue;
            }
            let stmt = view.statement_text(occ.pos);
            let Some(send_at) = stmt.find(".send(").or_else(|| stmt.find(".send_traced(")) else {
                continue;
            };
            let receiver = idents(&stmt[..send_at]).last().copied().unwrap_or("");
            if receiver != "outbox" {
                self.push_flow(
                    view,
                    occ.pos.0,
                    "must-land",
                    format!(
                        "control-plane `Wire::{}` sent directly via `{}.send(..)`, bypassing the \
                         SendQueue: admission control can reject it and the protocol stalls \
                         (route it through `outbox.send`)",
                        occ.variant, receiver
                    ),
                );
            }
        }
    }

    fn push_flow(&mut self, view: &FileView, line: usize, rule: &'static str, message: String) {
        self.flow_diags.push(Diagnostic {
            rule,
            file: view.path.to_string(),
            line: line + 1,
            message,
            excerpt: view.s.raw[line].trim().to_string(),
            allowed: is_allowed(view.s, line, rule),
        });
    }

    /// Collects observability-name string literals from non-test code.
    /// Integration-test and bench files are not emission sites: names
    /// appearing there (assertions, snapshot probes) carry no doc duty.
    fn collect_obs_names(&mut self, path: &str, s: &Scanned) {
        if path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/") {
            return;
        }
        for line in 0..s.code.len() {
            if s.is_test[line] {
                continue;
            }
            for (_, lit) in s.line_strings(line) {
                if is_dynamic_obs_name(&lit) {
                    self.flow_diags.push(Diagnostic {
                        rule: "obs-drift",
                        file: path.to_string(),
                        line: line + 1,
                        message: format!(
                            "dynamic observability name `{lit}`: a format template defeats the \
                             doc-drift check; use one static name per case"
                        ),
                        excerpt: s.raw[line].trim().to_string(),
                        allowed: is_allowed(s, line, "obs-drift"),
                    });
                } else if is_obs_name(&lit) {
                    self.obs_uses.push(ObsUse {
                        file: path.to_string(),
                        line,
                        name: lit,
                        excerpt: s.raw[line].trim().to_string(),
                        allowed: is_allowed(s, line, "obs-drift"),
                    });
                }
            }
        }
    }

    /// obs-drift: both directions between code literals and the catalog.
    fn check_obs_drift(&mut self, doc: &str, diags: &mut Vec<Diagnostic>) {
        let documented = doc_names(doc);
        for u in &self.obs_uses {
            let covered = documented.iter().any(|d| name_matches(&d.pattern, &u.name));
            if !covered {
                diags.push(Diagnostic {
                    rule: "obs-drift",
                    file: u.file.clone(),
                    line: u.line + 1,
                    message: format!(
                        "observability name `{}` is not documented in docs/OBSERVABILITY.md",
                        u.name
                    ),
                    excerpt: u.excerpt.clone(),
                    allowed: u.allowed,
                });
            }
        }
        for d in &documented {
            let exists = self
                .obs_uses
                .iter()
                .any(|u| name_matches(&d.pattern, &u.name));
            if !exists {
                diags.push(Diagnostic {
                    rule: "obs-drift",
                    file: "docs/OBSERVABILITY.md".to_string(),
                    line: d.line + 1,
                    message: format!(
                        "documented observability name `{}` does not exist in code (stale \
                         catalog entry)",
                        d.pattern
                    ),
                    excerpt: d.excerpt.clone(),
                    allowed: false,
                });
            }
        }
    }
}

/// True when `lit` is a checkable observability name: a known namespace,
/// a dot, and a lowercase dotted tail that is not a file name.
fn is_obs_name(lit: &str) -> bool {
    let Some(dot) = lit.find('.') else {
        return false;
    };
    let (ns, rest) = (&lit[..dot], &lit[dot + 1..]);
    !rest.is_empty()
        && OBS_NAMESPACES.contains(&ns)
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        && !NON_NAME_SUFFIXES.iter().any(|s| lit.ends_with(s))
}

/// True when `lit` is an observability name *template* (`lh.{op}_seconds`).
fn is_dynamic_obs_name(lit: &str) -> bool {
    let Some(dot) = lit.find('.') else {
        return false;
    };
    OBS_NAMESPACES.contains(&&lit[..dot]) && (lit.contains('{') || lit.contains('}'))
}

/// Extracts every documented name from the catalog: inline-backtick spans
/// whose text is a (possibly brace-grouped or `*`-wildcarded) dotted
/// lowercase name in a known namespace. `lh.requests_hops_{0,1,2,gt2}`
/// expands to four names; `core.ingest_*_per_sec` stays a wildcard.
fn doc_names(doc: &str) -> Vec<DocName> {
    let mut out: Vec<DocName> = Vec::new();
    for (li, line) in doc.lines().enumerate() {
        let mut spans: Vec<&str> = Vec::new();
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            spans.push(&after[..close]);
            rest = &after[close + 1..];
        }
        for span in spans {
            if span.is_empty()
                || !span.chars().all(|c| {
                    c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || matches!(c, '_' | '.' | ',' | '{' | '}' | '*')
                })
            {
                continue;
            }
            for name in expand_braces(span) {
                if is_obs_name(&name.replace('*', "x")) && !out.iter().any(|d| d.pattern == name) {
                    out.push(DocName {
                        pattern: name,
                        line: li,
                        excerpt: line.trim().to_string(),
                    });
                }
            }
        }
    }
    out
}

/// Expands `{a,b,c}` alternation groups (possibly several per name).
fn expand_braces(s: &str) -> Vec<String> {
    let Some(open) = s.find('{') else {
        return vec![s.to_string()];
    };
    let Some(close) = s[open..].find('}').map(|c| open + c) else {
        return Vec::new(); // unbalanced — not a name
    };
    let (prefix, group, suffix) = (&s[..open], &s[open + 1..close], &s[close + 1..]);
    group
        .split(',')
        .flat_map(|alt| expand_braces(&format!("{prefix}{alt}{suffix}")))
        .collect()
}

/// Matches a code name against a documented pattern (`*` wildcards).
fn name_matches(pattern: &str, name: &str) -> bool {
    if !pattern.contains('*') {
        return pattern == name;
    }
    let parts: Vec<&str> = pattern.split('*').collect();
    let mut rest = name;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            let Some(r) = rest.strip_prefix(part) else {
                return false;
            };
            rest = r;
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else if let Some(found) = rest.find(part) {
            rest = &rest[found + part.len()..];
        } else {
            return false;
        }
    }
    true
}

/// Parses the `Wire` enum declaration out of the codec file: variant
/// names are the uppercase-initial first tokens of depth-1 lines.
fn parse_wire_enum(s: &Scanned) -> Vec<VariantDecl> {
    let mut out = Vec::new();
    let start = s
        .code
        .iter()
        .position(|l| {
            let t = idents(l);
            t.contains(&"enum") && t.contains(&"Wire")
        })
        .unwrap_or(s.code.len());
    let mut depth = 0i64;
    let mut entered = false;
    for li in start..s.code.len() {
        let line = &s.code[li];
        if entered && depth == 1 {
            let trimmed = line.trim_start();
            if trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                if let Some(name) = idents(trimmed).first() {
                    out.push(VariantDecl {
                        name: name.to_string(),
                        line: li,
                        excerpt: s.raw[li].trim().to_string(),
                        allowed: is_allowed(s, li, "protocol-coverage"),
                    });
                }
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// One `fn` item of a file.
#[derive(Debug)]
struct FnDecl {
    name: String,
    /// Header text from `fn` to the body brace, whitespace removed.
    header: String,
    /// The body region (`None` for trait-method declarations).
    body: Option<Region>,
}

impl FnDecl {
    /// True for protocol handler functions: they return the outgoing
    /// message batch `Vec<(SiteId, Wire)>`.
    fn is_wire_fn(&self) -> bool {
        self.header.contains("Vec<(SiteId,Wire)>")
    }
}

/// Per-file working view: char-indexed code plane plus the brace tree.
struct FileView<'a> {
    path: &'a str,
    s: &'a Scanned,
    code: Vec<Vec<char>>,
    tree: BraceTree,
}

impl<'a> FileView<'a> {
    fn new(path: &'a str, s: &'a Scanned) -> FileView<'a> {
        FileView {
            path,
            s,
            code: s.code.iter().map(|l| l.chars().collect()).collect(),
            tree: BraceTree::build(s),
        }
    }

    fn at(&self, pos: Pos) -> Option<char> {
        self.code.get(pos.0)?.get(pos.1).copied()
    }

    /// The position after `pos`, crossing line ends.
    fn advance(&self, pos: Pos) -> Pos {
        let (li, ci) = pos;
        if li >= self.code.len() {
            return pos;
        }
        if ci + 1 < self.code[li].len() {
            (li, ci + 1)
        } else {
            (li + 1, 0)
        }
    }

    /// First non-space position at or after `pos`.
    fn skip_ws(&self, mut pos: Pos) -> Option<Pos> {
        while pos.0 < self.code.len() {
            match self.at(pos) {
                Some(c) if c != ' ' && c != '\t' => return Some(pos),
                Some(_) => pos = self.advance(pos),
                None => pos = (pos.0 + 1, 0),
            }
        }
        None
    }

    /// Up to `n` characters starting at `pos`, line breaks as spaces.
    fn peek_text(&self, mut pos: Pos, n: usize) -> String {
        let mut out = String::new();
        while out.len() < n && pos.0 < self.code.len() {
            match self.at(pos) {
                Some(c) => {
                    out.push(c);
                    pos = self.advance(pos);
                }
                None => {
                    out.push(' ');
                    pos = (pos.0 + 1, 0);
                }
            }
        }
        out
    }

    /// Every classified `Wire::Variant` occurrence in non-test code.
    fn wire_occurrences(&self) -> Vec<Occurrence> {
        let mut out = Vec::new();
        let in_handler = HANDLER_FILES.contains(&self.path);
        for li in 0..self.code.len() {
            if self.s.is_test[li] {
                continue;
            }
            let line = &self.code[li];
            let mut ci = 0;
            while ci + 6 <= line.len() {
                if line[ci..ci + 6] != ['W', 'i', 'r', 'e', ':', ':'] {
                    ci += 1;
                    continue;
                }
                let prev_ok = ci == 0 || {
                    let p = line[ci - 1];
                    !(p.is_alphanumeric() || p == '_' || p == ':')
                };
                let mut end = ci + 6;
                while end < line.len() && (line[end].is_alphanumeric() || line[end] == '_') {
                    end += 1;
                }
                let name: String = line[ci + 6..end].iter().collect();
                if prev_ok && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    let (kind, arm_arrow) = self.classify((li, ci), (li, end));
                    out.push(Occurrence {
                        file: self.path.to_string(),
                        pos: (li, ci),
                        variant: name,
                        kind,
                        arm_arrow,
                        in_handler_file: in_handler,
                        excerpt: self.s.raw[li].trim().to_string(),
                        allowed_coverage: is_allowed(self.s, li, "protocol-coverage"),
                    });
                }
                ci = end;
            }
        }
        out
    }

    /// Pattern-vs-expression classification (see module docs).
    fn classify(&self, start: Pos, name_end: Pos) -> (Kind, Option<Pos>) {
        if self.inside_matches_bang(start) {
            return (Kind::Pattern, None);
        }
        // skip an attached braced body `{ .. }`
        let mut cur = name_end;
        if let Some(p) = self.skip_ws(cur) {
            if self.at(p) == Some('{') {
                if let Some(idx) = self.tree.span_opening_at(p) {
                    cur = self.advance(self.tree.spans[idx].close);
                }
            }
        }
        // skip whitespace and closing parens of enclosing tuple patterns
        let mut p = cur;
        loop {
            match self.skip_ws(p) {
                Some(q) if self.at(q) == Some(')') => p = self.advance(q),
                Some(q) => {
                    p = q;
                    break;
                }
                None => return (Kind::Send, None),
            }
        }
        let look = self.peek_text(p, 24);
        if look.starts_with("=>") {
            return (Kind::Pattern, Some(p));
        }
        if look.starts_with('|') && !look.starts_with("||") {
            return (Kind::Pattern, None);
        }
        if look.starts_with('=') && !look.starts_with("==") {
            return (Kind::Pattern, None); // refutable `let` binding
        }
        if idents(&look).first() == Some(&"if") {
            // match-arm guard: the arrow follows the guard expression
            return (Kind::Pattern, self.find_arrow(p));
        }
        (Kind::Send, None)
    }

    /// True when `start` sits inside the pattern argument of `matches!(..)`.
    fn inside_matches_bang(&self, start: Pos) -> bool {
        let (mut pdepth, mut bdepth, mut steps) = (0i64, 0i64, 0usize);
        let mut pos = start;
        loop {
            // step backward one char, crossing line starts
            pos = if pos.1 > 0 {
                (pos.0, pos.1 - 1)
            } else if pos.0 > 0 {
                let li = pos.0 - 1;
                (li, self.code[li].len().max(1) - 1)
            } else {
                return false;
            };
            steps += 1;
            if steps > 4000 {
                return false;
            }
            match self.at(pos) {
                Some(')') => pdepth += 1,
                Some('(') => {
                    if pdepth > 0 {
                        pdepth -= 1;
                    } else {
                        return self.text_ends_with(pos, "matches!");
                    }
                }
                Some('}') => bdepth += 1,
                Some('{') => {
                    if bdepth > 0 {
                        bdepth -= 1;
                    } else {
                        return false;
                    }
                }
                Some(';') if pdepth == 0 && bdepth == 0 => return false,
                _ => {}
            }
        }
    }

    /// True when the non-space text directly before `pos` ends in `needle`.
    fn text_ends_with(&self, pos: Pos, needle: &str) -> bool {
        let mut want: Vec<char> = needle.chars().collect();
        let mut cur = pos;
        loop {
            cur = if cur.1 > 0 {
                (cur.0, cur.1 - 1)
            } else if cur.0 > 0 {
                let li = cur.0 - 1;
                if self.code[li].is_empty() {
                    (li, 0)
                } else {
                    (li, self.code[li].len() - 1)
                }
            } else {
                return false;
            };
            match self.at(cur) {
                Some(' ') | Some('\t') | None => {
                    if want.len() == needle.chars().count() {
                        continue; // still skipping trailing whitespace
                    }
                    return false;
                }
                Some(c) => match want.pop() {
                    Some(w) if w == c => {
                        if want.is_empty() {
                            return true;
                        }
                    }
                    _ => return false,
                },
            }
        }
    }

    /// Forward-scans from `pos` for the arm's `=>` at delimiter depth 0.
    fn find_arrow(&self, pos: Pos) -> Option<Pos> {
        let mut depth = 0i64;
        let mut cur = pos;
        for _ in 0..4000 {
            match self.at(cur) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some('=') if depth == 0 && self.at(self.advance(cur)) == Some('>') => {
                    return Some(cur);
                }
                None if cur.0 >= self.code.len() => return None,
                _ => {}
            }
            cur = self.advance(cur);
            if cur.1 == 0 && self.code.get(cur.0).is_some_and(|l| l.is_empty()) {
                cur = (cur.0 + 1, 0);
            }
        }
        None
    }

    /// The match-arm body region after the `=>` at `arrow`: a braced
    /// block's interior, or the expression up to the arm-separating `,`.
    fn arm_body(&self, arrow: Pos) -> Option<Region> {
        let start = self.skip_ws(self.advance(self.advance(arrow)))?;
        if self.at(start) == Some('{') {
            let idx = self.tree.span_opening_at(start)?;
            return Some(Region {
                start: self.advance(start),
                end: self.tree.spans[idx].close,
            });
        }
        // expression arm: runs to the `,` (or the match's `}`) at depth 0
        let mut depth = 0i64;
        let mut cur = start;
        for _ in 0..8000 {
            match self.at(cur) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('}') => {
                    if depth == 0 {
                        return Some(Region { start, end: cur });
                    }
                    depth -= 1;
                }
                Some(',') if depth == 0 => return Some(Region { start, end: cur }),
                None if cur.0 >= self.code.len() => return Some(Region { start, end: cur }),
                _ => {}
            }
            cur = self.advance(cur);
        }
        Some(Region { start, end: cur })
    }

    /// All `fn` items of the file.
    fn find_fns(&self) -> Vec<FnDecl> {
        let mut out = Vec::new();
        for li in 0..self.code.len() {
            let line_str: String = self.code[li].iter().collect();
            if !idents(&line_str).contains(&"fn") {
                continue;
            }
            // column of the `fn` token
            let chars = &self.code[li];
            let mut col = None;
            for ci in 0..chars.len().saturating_sub(1) {
                if chars[ci] == 'f'
                    && chars[ci + 1] == 'n'
                    && (ci == 0 || !(chars[ci - 1].is_alphanumeric() || chars[ci - 1] == '_'))
                    && chars
                        .get(ci + 2)
                        .is_none_or(|c| !(c.is_alphanumeric() || *c == '_'))
                {
                    col = Some(ci);
                    break;
                }
            }
            let Some(col) = col else { continue };
            // name: the ident after `fn`
            let Some(name_start) = self.skip_ws((li, col + 2)) else {
                continue;
            };
            let mut name = String::new();
            let mut p = name_start;
            while let Some(c) = self.at(p) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    p = self.advance(p);
                } else {
                    break;
                }
            }
            if name.is_empty() {
                continue;
            }
            // header runs to the body `{` (or a declaration's `;`)
            let mut header = String::new();
            let mut cur = (li, col);
            let mut body = None;
            for _ in 0..4000 {
                match self.at(cur) {
                    Some('{') => {
                        if let Some(idx) = self.tree.span_opening_at(cur) {
                            body = Some(Region {
                                start: self.advance(cur),
                                end: self.tree.spans[idx].close,
                            });
                        }
                        break;
                    }
                    Some(';') => break,
                    Some(c) => {
                        if c != ' ' && c != '\t' {
                            header.push(c);
                        }
                        cur = self.advance(cur);
                    }
                    None => {
                        if cur.0 >= self.code.len() {
                            break;
                        }
                        cur = (cur.0 + 1, 0);
                    }
                }
            }
            out.push(FnDecl { name, header, body });
        }
        out
    }

    /// If `region` calls exactly one same-file wire-handler function,
    /// returns that function's body (the delegated reply obligation).
    fn delegate_body(&self, region: Region, wire_fns: &[&FnDecl]) -> Option<Region> {
        for li in region.start.0..=region.end.0.min(self.code.len().saturating_sub(1)) {
            let line: String = self.code[li].iter().collect();
            let toks = idents(&line);
            for f in wire_fns {
                if toks.contains(&f.name.as_str()) && line.contains(&format!("{}(", f.name)) {
                    if let Some(body) = f.body {
                        return Some(body);
                    }
                }
            }
        }
        None
    }

    /// Exit paths of a region: every `return` statement plus the final
    /// (fall-through) expression.
    fn exit_paths(&self, region: Region) -> Vec<Pos> {
        let mut out = Vec::new();
        for li in region.start.0..=region.end.0.min(self.code.len().saturating_sub(1)) {
            let line: String = self.code[li].iter().collect();
            if let Some(byte_col) = find_token(&line, "return") {
                let pos = (li, byte_col);
                if region.contains(pos) {
                    out.push(pos);
                }
            }
        }
        // final expression: the last non-space position in the region
        let mut last: Option<Pos> = None;
        for li in region.start.0..=region.end.0.min(self.code.len().saturating_sub(1)) {
            for ci in 0..self.code[li].len() {
                let pos = (li, ci);
                if region.contains(pos) && self.at(pos).is_some_and(|c| c != ' ' && c != '\t') {
                    last = Some(pos);
                }
            }
        }
        if let Some(pos) = last {
            if !out.iter().any(|e| e.0 == pos.0) {
                out.push(pos);
            }
        }
        out
    }

    /// Whether some emission discharges the reply obligation on `exit`:
    /// either it happens inside the exit's own statement (a `return`
    /// whose value constructs the reply), or it happened before the exit
    /// in a control scope the exit is also part of (pushed to the batch
    /// on every path that reaches this exit).
    fn exit_satisfied(&self, exit: Pos, emissions: &[Pos], region: Region) -> bool {
        let stmt_end = self.statement_end(exit, region);
        let exit_scopes = self.control_scopes_in(exit, region);
        emissions.iter().any(|&e| {
            if e >= exit && e <= stmt_end {
                return true;
            }
            e <= exit
                && self
                    .control_scopes_in(e, region)
                    .iter()
                    .all(|s| exit_scopes.contains(s))
        })
    }

    /// Control scopes containing `pos` that open inside `region`.
    fn control_scopes_in(&self, pos: Pos, region: Region) -> Vec<usize> {
        self.tree
            .control_scopes(pos)
            .into_iter()
            .filter(|&i| self.tree.spans[i].open >= region.start)
            .collect()
    }

    /// End of the statement starting at `pos`: the `;` at delimiter
    /// depth 0, bounded by the region end.
    fn statement_end(&self, pos: Pos, region: Region) -> Pos {
        let mut depth = 0i64;
        let mut cur = pos;
        for _ in 0..4000 {
            if !region.contains(cur) && cur > region.start {
                return cur;
            }
            match self.at(cur) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some(';') if depth <= 0 => return cur,
                None if cur.0 >= self.code.len() => return cur,
                _ => {}
            }
            cur = self.advance(cur);
        }
        cur
    }

    /// The full statement text around `pos` (backward to the statement
    /// start, forward to its `;`), for same-statement send detection.
    fn statement_text(&self, pos: Pos) -> String {
        let back = statement_before(self.s, pos, 20);
        let mut fwd = String::new();
        let mut depth = 0i64;
        let mut cur = pos;
        for _ in 0..2000 {
            match self.at(cur) {
                Some('{') => depth += 1,
                Some('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Some(';') if depth == 0 => break,
                None if cur.0 >= self.code.len() => break,
                _ => {}
            }
            fwd.push(self.at(cur).unwrap_or(' '));
            cur = self.advance(cur);
            if cur.1 == 0 {
                fwd.push(' ');
            }
        }
        format!("{back} {fwd}")
    }
}

/// Byte column of `token` in `line` as a whole word, if present.
fn find_token(line: &str, token: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(i) = line[from..].find(token).map(|i| i + from) {
        let before_ok = i == 0 || {
            let b = bytes[i - 1] as char;
            !(b.is_ascii_alphanumeric() || b == '_')
        };
        let after = i + token.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after] as char;
            !(b.is_ascii_alphanumeric() || b == '_')
        };
        if before_ok && after_ok {
            return Some(i);
        }
        from = i + token.len();
    }
    None
}
