//! Seeded panic-freedom violations. The rule test replays this file as
//! `crates/gf/src/fixture.rs`; never compiled.

pub fn parse_width(s: &str) -> u32 {
    s.parse().unwrap()
}

pub fn widen(w: u32) -> u32 {
    if w > 16 {
        panic!("field width {w} out of range");
    }
    w
}
