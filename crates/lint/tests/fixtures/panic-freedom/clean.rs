//! The clean counterpart: fallible APIs in library code, while `unwrap`
//! inside `#[cfg(test)]` stays exempt (tests are supposed to panic).

pub fn parse_width(s: &str) -> Option<u32> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::parse_width("8").unwrap(), 8);
    }
}
