//! Fixture: control-plane messages routed correctly — through the
//! `SendQueue` (`outbox`) or returned in the outgoing batch for the
//! event loop to queue. Replayed as `crates/lh/src/coordinator.rs`.

pub fn rebalance(outbox: &mut SendQueue, coord: SiteId, bucket: u64) {
    outbox.send(coord, Wire::Overflow { bucket });
}

fn plan(coord: SiteId, bucket: u64) -> Vec<(SiteId, Wire)> {
    vec![(coord, Wire::Underflow { bucket })]
}
