//! Fixture: a control-plane `Overflow` pushed straight onto the endpoint
//! from inside an event-loop file — admission control can reject it and
//! nothing retries. Replayed as `crates/lh/src/coordinator.rs`.

pub fn rebalance(endpoint: &Endpoint, coord: SiteId, bucket: u64) {
    endpoint.send(coord, Wire::Overflow { bucket });
}
