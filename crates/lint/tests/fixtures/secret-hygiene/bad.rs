//! Seeded secret-hygiene violations. The rule test replays this file as
//! `crates/cipher/src/fixture.rs`; it is never compiled.

#[derive(Debug, Clone)]
pub struct SessionKey {
    key: [u8; 16],
}

pub fn trace(sk: &SessionKey) {
    println!("session state: {:?}", sk);
}

pub fn label_of(key: &[u8; 16]) -> String {
    format!("round key bytes: {:?}", key)
}

pub fn leak_metric(key: &[u8; 16]) {
    sdds_obs::gauge("cipher.key_first_byte").set(key[0] as f64);
}
