//! The clean counterpart: redacting Debug impl, no stdio, and metrics
//! that carry no key-material identifiers.

pub struct SessionKey {
    key: [u8; 16],
}

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SessionKey { .. }")
    }
}

impl SessionKey {
    pub fn observe_use(&self) {
        sdds_obs::counter("cipher.block_ops").incr(1);
    }
}
