//! The clean counterpart: the same block, with its obligation discharged
//! in an adjacent `// SAFETY:` comment. Still lands in the inventory.

pub fn read_first(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    // SAFETY: the caller guarantees `bytes` is non-empty (checked above in
    // debug builds), so the pointer dereference stays in bounds.
    unsafe { *bytes.as_ptr() }
}
