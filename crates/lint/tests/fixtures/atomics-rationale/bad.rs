//! Seeded atomics-rationale violation. The rule test replays this file as
//! `crates/par/src/fixture.rs`; never compiled.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}
