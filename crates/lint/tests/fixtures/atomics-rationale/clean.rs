//! The clean counterpart: the same atomic, with its ordering choice
//! justified in an adjacent `// ordering:` comment.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    // ordering: Relaxed — standalone statistic; no other memory is
    // published through this counter
    counter.fetch_add(1, Ordering::Relaxed)
}
