//! Fixture: every metric name is static and documented in the fixture
//! `OBSERVABILITY.md` in this directory.

pub fn record() {
    sdds_obs::counter("lh.real_metric").inc();
}
