//! Fixture: an undocumented metric name and a dynamic (format-template)
//! name, both of which defeat the documented catalog. Linted against the
//! fixture `OBSERVABILITY.md` in this directory.

pub fn record(stage: &str) {
    sdds_obs::counter("lh.bogus_metric").inc();
    sdds_obs::gauge(&format!("core.{stage}_rate")).set(1);
}
