//! Seeded determinism violation. The rule test replays this file as
//! `crates/chunk/src/fixture.rs` (the Stage-1 index path); never compiled.

pub fn seal_index_chunk(aes: &Aes128, iv: &[u8; 16], chunk: &[u8]) -> Vec<u8> {
    modes::cbc_encrypt(aes, iv, chunk)
}

pub fn open_index_chunk(aes: &Aes128, iv: &[u8; 16], body: &[u8]) -> Vec<u8> {
    modes::cbc_decrypt(aes, iv, body).unwrap_or_default()
}
