//! The clean counterpart: the index path sticks to the deterministic
//! chunk PRP / ECB primitives, so equal chunks stay equal ciphertexts.

pub fn seal_index_chunk(prp: &ChunkPrp, chunk: u128) -> u128 {
    prp.forward(chunk)
}

pub fn open_index_chunk(prp: &ChunkPrp, sealed: u128) -> u128 {
    prp.backward(sealed)
}
