//! Fixture codec: a miniature `Wire` for protocol-coverage tests,
//! replayed as `crates/lh/src/messages.rs`.

/// Miniature wire protocol.
pub enum Wire {
    /// Sent and handled everywhere — always healthy.
    Ping { seq: u64 },
    /// Sent and handled — healthy.
    Pong { seq: u64 },
    /// Constructed by the bad fixture but handled by no event loop.
    Orphan { seq: u64 },
    /// Handled by the bad fixture but never constructed.
    Ghost { seq: u64 },
}
