//! Fixture: sends `Orphan` into the void (no handler anywhere) and keeps
//! a dead arm for `Ghost` (never constructed). Replayed as
//! `crates/lh/src/bucket.rs` alongside the fixture codec.

fn emit() -> Vec<Wire> {
    vec![
        Wire::Ping { seq: 1 },
        Wire::Pong { seq: 2 },
        Wire::Orphan { seq: 3 },
    ]
}

fn handle(msg: &Wire) -> u64 {
    match msg {
        Wire::Ping { seq } => *seq,
        Wire::Pong { seq } => *seq,
        Wire::Ghost { seq } => *seq,
    }
}
