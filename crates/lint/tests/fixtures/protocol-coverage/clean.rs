//! Fixture: every variant of the miniature `Wire` has both a send site
//! and a handler arm. Replayed as `crates/lh/src/bucket.rs` alongside
//! the fixture codec.

fn emit() -> Vec<Wire> {
    vec![
        Wire::Ping { seq: 1 },
        Wire::Pong { seq: 2 },
        Wire::Orphan { seq: 3 },
        Wire::Ghost { seq: 4 },
    ]
}

fn handle(msg: &Wire) -> u64 {
    match msg {
        Wire::Ping { seq } => *seq,
        Wire::Pong { seq } => *seq,
        Wire::Orphan { seq } => *seq,
        Wire::Ghost { seq } => *seq,
    }
}
