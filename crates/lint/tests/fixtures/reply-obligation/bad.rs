//! Fixture: a `Request` handler with a branch that returns without
//! replying — the client would hang until timeout. Replayed as
//! `crates/lh/src/bucket.rs`.

pub fn handle(msg: Wire, overloaded: bool) -> Vec<(SiteId, Wire)> {
    match msg {
        Wire::Request { req_id, client, op } => {
            if overloaded {
                // BUG: drops the request on the floor — no Response
                return Vec::new();
            }
            let _ = op;
            vec![(SiteId(client), Wire::Response { req_id, ok: true })]
        }
        _ => Vec::new(),
    }
}
