//! Fixture: the same handler shape as `bad.rs`, but every exit path
//! emits the paired `Response`. Replayed as `crates/lh/src/bucket.rs`.

pub fn handle(msg: Wire, overloaded: bool) -> Vec<(SiteId, Wire)> {
    match msg {
        Wire::Request { req_id, client, op } => {
            if overloaded {
                return vec![(SiteId(client), Wire::Response { req_id, ok: false })];
            }
            let _ = op;
            vec![(SiteId(client), Wire::Response { req_id, ok: true })]
        }
        _ => Vec::new(),
    }
}
