//! End-to-end rule tests: every rule fires on its seeded `bad.rs`
//! fixture, stays silent on its `clean.rs` counterpart, respects scope
//! and the `lint: allow` escape hatch — and the workspace itself lints
//! clean (the self-check CI relies on).

use sdds_lint::{find_workspace_root, lint_files, lint_workspace, Report};
use std::path::Path;

/// Reads `tests/fixtures/<rule>/<which>` from this crate.
fn fixture(rule: &str, which: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(which);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Lints one fixture as though it lived at `rel_path` in the workspace.
fn lint_as(rel_path: &str, content: &str) -> Report {
    let mut r = Report::default();
    r.lint_source(rel_path, content);
    r
}

fn count_rule(r: &Report, rule: &str) -> usize {
    r.violations.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn secret_hygiene_fires_on_bad_fixture() {
    let r = lint_as(
        "crates/cipher/src/fixture.rs",
        &fixture("secret-hygiene", "bad.rs"),
    );
    // derive(Debug) on a key-bearing struct, println!, format!(key),
    // and a key identifier in an sdds-obs call
    assert!(
        count_rule(&r, "secret-hygiene") >= 4,
        "expected >=4 secret-hygiene findings, got: {:?}",
        r.violations
    );
    assert!(r
        .violations
        .iter()
        .all(|d| d.rule == "secret-hygiene" && d.line > 0));
}

#[test]
fn secret_hygiene_clean_fixture_passes() {
    let r = lint_as(
        "crates/cipher/src/fixture.rs",
        &fixture("secret-hygiene", "clean.rs"),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn determinism_fires_on_bad_fixture() {
    let r = lint_as(
        "crates/chunk/src/fixture.rs",
        &fixture("determinism", "bad.rs"),
    );
    assert_eq!(
        count_rule(&r, "determinism"),
        2,
        "cbc_encrypt and cbc_decrypt should each fire: {:?}",
        r.violations
    );
}

#[test]
fn determinism_clean_fixture_passes() {
    let r = lint_as(
        "crates/chunk/src/fixture.rs",
        &fixture("determinism", "clean.rs"),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn determinism_is_scoped_to_the_index_path() {
    // the same CBC call outside the Stage-1 index path is fine
    let r = lint_as(
        "crates/net/src/fixture.rs",
        &fixture("determinism", "bad.rs"),
    );
    assert_eq!(count_rule(&r, "determinism"), 0, "{:?}", r.violations);
}

#[test]
fn unsafe_audit_fires_on_bad_fixture_and_inventories_both() {
    let bad = lint_as("src/fixture.rs", &fixture("unsafe-audit", "bad.rs"));
    assert_eq!(count_rule(&bad, "unsafe-audit"), 1, "{:?}", bad.violations);
    assert_eq!(bad.unsafe_inventory.len(), 1);
    assert!(!bad.unsafe_inventory[0].has_safety);

    let clean = lint_as("src/fixture.rs", &fixture("unsafe-audit", "clean.rs"));
    assert!(clean.is_clean(), "unexpected: {:?}", clean.violations);
    // discharged unsafe still shows up in the audit surface
    assert_eq!(clean.unsafe_inventory.len(), 1);
    assert!(clean.unsafe_inventory[0].has_safety);
}

#[test]
fn panic_freedom_fires_on_bad_fixture() {
    let r = lint_as(
        "crates/gf/src/fixture.rs",
        &fixture("panic-freedom", "bad.rs"),
    );
    // one unwrap() and one panic!
    assert_eq!(count_rule(&r, "panic-freedom"), 2, "{:?}", r.violations);
}

#[test]
fn panic_freedom_clean_fixture_passes_with_test_unwrap() {
    // clean.rs deliberately unwraps inside #[cfg(test)] — exempt
    let r = lint_as(
        "crates/gf/src/fixture.rs",
        &fixture("panic-freedom", "clean.rs"),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn panic_freedom_is_scoped_to_library_crates() {
    let r = lint_as(
        "crates/bench/src/main.rs",
        &fixture("panic-freedom", "bad.rs"),
    );
    assert_eq!(count_rule(&r, "panic-freedom"), 0, "{:?}", r.violations);
}

#[test]
fn atomics_rationale_fires_on_bad_fixture() {
    let r = lint_as(
        "crates/par/src/fixture.rs",
        &fixture("atomics-rationale", "bad.rs"),
    );
    assert_eq!(count_rule(&r, "atomics-rationale"), 1, "{:?}", r.violations);
}

#[test]
fn atomics_rationale_clean_fixture_passes() {
    let r = lint_as(
        "crates/par/src/fixture.rs",
        &fixture("atomics-rationale", "clean.rs"),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn allow_annotation_suppresses_but_stays_audited() {
    let src = "pub fn f(s: &str) -> u32 {\n    // lint: allow(panic-freedom) -- demo\n    s.parse().unwrap()\n}\n";
    let r = lint_as("crates/gf/src/fixture.rs", src);
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    assert_eq!(r.allowed.len(), 1);
    assert_eq!(r.allowed[0].rule, "panic-freedom");

    // the annotation only covers the named rule
    let wrong = src.replace("panic-freedom", "determinism");
    let r = lint_as("crates/gf/src/fixture.rs", &wrong);
    assert_eq!(count_rule(&r, "panic-freedom"), 1);
}

#[test]
fn json_report_is_machine_readable() {
    let r = lint_as(
        "crates/chunk/src/fixture.rs",
        &fixture("determinism", "bad.rs"),
    );
    let json = r.to_json();
    for key in [
        "\"version\"",
        "\"files_scanned\"",
        "\"violations\"",
        "\"allowed\"",
        "\"unsafe_inventory\"",
        "\"rule\": \"determinism\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn protocol_coverage_fires_on_bad_fixture() {
    let codec = fixture("protocol-coverage", "messages.rs");
    let bad = fixture("protocol-coverage", "bad.rs");
    let r = lint_files(
        &[
            ("crates/lh/src/messages.rs", codec.as_str()),
            ("crates/lh/src/bucket.rs", bad.as_str()),
        ],
        None,
    );
    assert_eq!(count_rule(&r, "protocol-coverage"), 2, "{:?}", r.violations);
    // the unhandled send anchors at the variant declaration in the codec
    assert!(r.violations.iter().any(|d| d.rule == "protocol-coverage"
        && d.file == "crates/lh/src/messages.rs"
        && d.message.contains("Orphan")));
    // the dead arm anchors at the handler site in the event loop
    assert!(r.violations.iter().any(|d| d.rule == "protocol-coverage"
        && d.file == "crates/lh/src/bucket.rs"
        && d.message.contains("Ghost")));
}

#[test]
fn protocol_coverage_clean_fixture_passes_and_matrix_is_total() {
    let codec = fixture("protocol-coverage", "messages.rs");
    let clean = fixture("protocol-coverage", "clean.rs");
    let r = lint_files(
        &[
            ("crates/lh/src/messages.rs", codec.as_str()),
            ("crates/lh/src/bucket.rs", clean.as_str()),
        ],
        None,
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
    let matrix = r.matrix.expect("codec present => matrix built");
    assert_eq!(matrix.variants.len(), 4);
    for v in &matrix.variants {
        assert!(!v.sends.is_empty(), "{} has no send site", v.name);
        assert!(!v.handles.is_empty(), "{} has no handler", v.name);
    }
}

#[test]
fn reply_obligation_fires_on_bad_fixture() {
    let r = lint_files(
        &[(
            "crates/lh/src/bucket.rs",
            &fixture("reply-obligation", "bad.rs"),
        )],
        None,
    );
    assert_eq!(count_rule(&r, "reply-obligation"), 1, "{:?}", r.violations);
    let d = r
        .violations
        .iter()
        .find(|d| d.rule == "reply-obligation")
        .unwrap();
    assert!(
        d.excerpt.contains("return"),
        "should anchor at the reply-less exit: {d:?}"
    );
}

#[test]
fn reply_obligation_clean_fixture_passes() {
    let r = lint_files(
        &[(
            "crates/lh/src/bucket.rs",
            &fixture("reply-obligation", "clean.rs"),
        )],
        None,
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn reply_obligation_is_scoped_to_event_loops() {
    // the same reply-less handler outside the event-loop files is fine
    let r = lint_files(
        &[(
            "crates/lh/src/cluster.rs",
            &fixture("reply-obligation", "bad.rs"),
        )],
        None,
    );
    assert_eq!(count_rule(&r, "reply-obligation"), 0, "{:?}", r.violations);
}

#[test]
fn must_land_fires_on_bad_fixture() {
    let r = lint_files(
        &[(
            "crates/lh/src/coordinator.rs",
            &fixture("must-land", "bad.rs"),
        )],
        None,
    );
    assert_eq!(count_rule(&r, "must-land"), 1, "{:?}", r.violations);
    let d = r.violations.iter().find(|d| d.rule == "must-land").unwrap();
    assert!(d.message.contains("endpoint"), "names the receiver: {d:?}");
}

#[test]
fn must_land_clean_fixture_passes() {
    let r = lint_files(
        &[(
            "crates/lh/src/coordinator.rs",
            &fixture("must-land", "clean.rs"),
        )],
        None,
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn obs_drift_fires_on_bad_fixture_in_both_directions() {
    let doc = fixture("obs-drift", "OBSERVABILITY.md");
    let r = lint_files(
        &[(
            "crates/core/src/metrics.rs",
            &fixture("obs-drift", "bad.rs"),
        )],
        Some(&doc),
    );
    assert_eq!(count_rule(&r, "obs-drift"), 3, "{:?}", r.violations);
    let msgs: Vec<&str> = r.violations.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("lh.bogus_metric")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("dynamic")), "{msgs:?}");
    // the stale doc entry anchors in the doc itself
    assert!(r.violations.iter().any(|d| d.rule == "obs-drift"
        && d.file == "docs/OBSERVABILITY.md"
        && d.message.contains("lh.real_metric")));
}

#[test]
fn obs_drift_clean_fixture_passes() {
    let doc = fixture("obs-drift", "OBSERVABILITY.md");
    let r = lint_files(
        &[(
            "crates/core/src/metrics.rs",
            &fixture("obs-drift", "clean.rs"),
        )],
        Some(&doc),
    );
    assert!(r.is_clean(), "unexpected: {:?}", r.violations);
}

#[test]
fn diagnostics_are_sorted_for_stable_json() {
    let codec = fixture("protocol-coverage", "messages.rs");
    let bad = fixture("protocol-coverage", "bad.rs");
    let doc = fixture("obs-drift", "OBSERVABILITY.md");
    let r = lint_files(
        &[
            ("crates/lh/src/messages.rs", codec.as_str()),
            ("crates/lh/src/bucket.rs", bad.as_str()),
            (
                "crates/core/src/metrics.rs",
                &fixture("obs-drift", "bad.rs"),
            ),
        ],
        Some(&doc),
    );
    let keys: Vec<(String, usize, &str)> = r
        .violations
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "violations must be (path, line, rule)-sorted");
}

#[test]
fn committed_protocol_matrix_is_current_and_total() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace scan");
    let matrix = report.matrix.expect("workspace run builds the matrix");
    // every Wire variant: >=1 send, >=1 handler, no unreplied request path
    assert!(matrix.variants.len() >= 20, "Wire shrank suspiciously");
    for v in &matrix.variants {
        assert!(!v.sends.is_empty(), "Wire::{} has no send site", v.name);
        assert!(!v.handles.is_empty(), "Wire::{} has no handler", v.name);
        assert_eq!(
            v.unreplied_paths, 0,
            "Wire::{} has a handler path without a reply",
            v.name
        );
    }
    // the committed artifact matches the regenerated one byte for byte
    let committed = std::fs::read_to_string(root.join("protocol-matrix.json"))
        .expect("committed protocol-matrix.json at the workspace root");
    assert_eq!(
        committed,
        matrix.to_json(),
        "protocol-matrix.json is stale; regenerate with:\n  cargo run -p sdds-lint -- \
         --workspace --protocol-matrix protocol-matrix.json"
    );
}

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(
        report.is_clean(),
        "workspace must lint clean; found:\n{}",
        report
            .violations
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // every unsafe site in the tree carries a SAFETY rationale
    assert!(report.unsafe_inventory.iter().all(|u| u.has_safety));
}
