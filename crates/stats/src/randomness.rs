//! NIST SP 800-22-style randomness tests.
//!
//! §6 of the paper: "Knuth's seminal work discusses a number of statistical
//! tests for randomness, and the work at NIST used similar statistical
//! tests …"; §8: "we are starting to use the work of Soto in order to
//! evaluate closeness to randomness in a better manner". This module
//! implements the eight SP 800-22 tests that apply to our stream sizes:
//! frequency (monobit), block frequency, runs, longest run of ones,
//! cumulative sums, spectral (DFT), serial, and approximate entropy — each
//! returning a p-value where p < 0.01 conventionally rejects randomness.

use crate::special::{erfc, igamc};
use serde::Serialize;

/// Outcome of a single randomness test.
#[derive(Debug, Clone, Serialize)]
pub struct TestResult {
    /// Test name.
    pub name: &'static str,
    /// Test statistic (test-specific scale).
    pub statistic: f64,
    /// Upper-tail p-value; small p rejects the randomness hypothesis.
    pub p_value: f64,
}

impl TestResult {
    /// True if the stream passed at significance level `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Extracts bits MSB-first from a byte stream.
fn bits_of(bytes: &[u8]) -> impl Iterator<Item = u8> + '_ {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1))
}

/// SP 800-22 §2.1 — frequency (monobit) test.
pub fn monobit(bytes: &[u8]) -> TestResult {
    let n = bytes.len() * 8;
    let ones: i64 = bits_of(bytes).map(|b| b as i64).sum();
    let s = 2 * ones - n as i64; // sum of +1/-1
    let s_obs = (s as f64).abs() / (n as f64).sqrt();
    let p = erfc(s_obs / std::f64::consts::SQRT_2);
    TestResult {
        name: "monobit",
        statistic: s_obs,
        p_value: p,
    }
}

/// SP 800-22 §2.2 — block frequency test with block length `m` bits.
pub fn block_frequency(bytes: &[u8], m: usize) -> TestResult {
    assert!(m >= 1, "block length must be positive");
    let bits: Vec<u8> = bits_of(bytes).collect();
    let nblocks = bits.len() / m;
    if nblocks == 0 {
        return TestResult {
            name: "block-frequency",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut chi2 = 0.0;
    for b in 0..nblocks {
        let ones: usize = bits[b * m..(b + 1) * m].iter().map(|&x| x as usize).sum();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    let p = igamc(nblocks as f64 / 2.0, chi2 / 2.0);
    TestResult {
        name: "block-frequency",
        statistic: chi2,
        p_value: p,
    }
}

/// SP 800-22 §2.3 — runs test (total number of runs of identical bits).
pub fn runs(bytes: &[u8]) -> TestResult {
    let bits: Vec<u8> = bits_of(bytes).collect();
    let n = bits.len();
    if n < 2 {
        return TestResult {
            name: "runs",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let ones: usize = bits.iter().map(|&b| b as usize).sum();
    let pi = ones as f64 / n as f64;
    // prerequisite monobit sanity per NIST: |pi - 0.5| < 2/sqrt(n)
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        return TestResult {
            name: "runs",
            statistic: f64::INFINITY,
            p_value: 0.0,
        };
    }
    let vn = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let num = (vn as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    let p = erfc(num / den);
    TestResult {
        name: "runs",
        statistic: vn as f64,
        p_value: p,
    }
}

/// ψ²_m helper for the serial test: over all overlapping m-bit patterns of
/// the *circularly extended* sequence.
fn psi_sq(bits: &[u8], m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    for i in 0..n {
        let mut v = 0usize;
        for j in 0..m {
            v = (v << 1) | bits[(i + j) % n] as usize;
        }
        counts[v] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1u64 << m) as f64 / n as f64 * sum_sq - n as f64
}

/// SP 800-22 §2.11 — serial test with pattern length `m`; returns the
/// first p-value (∇ψ²).
pub fn serial(bytes: &[u8], m: usize) -> TestResult {
    assert!(m >= 2, "serial test needs m >= 2");
    let bits: Vec<u8> = bits_of(bytes).collect();
    if bits.len() < (1 << m) {
        return TestResult {
            name: "serial",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let d1 = psi_sq(&bits, m) - psi_sq(&bits, m - 1);
    let p = igamc((1u64 << (m - 2)) as f64, d1 / 2.0);
    TestResult {
        name: "serial",
        statistic: d1,
        p_value: p,
    }
}

/// SP 800-22 §2.12 — approximate entropy test with block length `m`.
pub fn approximate_entropy(bytes: &[u8], m: usize) -> TestResult {
    let bits: Vec<u8> = bits_of(bytes).collect();
    let n = bits.len();
    if n < (1 << (m + 1)) {
        return TestResult {
            name: "approx-entropy",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let phi = |m: usize| -> f64 {
        if m == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; 1 << m];
        for i in 0..n {
            let mut v = 0usize;
            for j in 0..m {
                v = (v << 1) | bits[(i + j) % n] as usize;
            }
            counts[v] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    let p = igamc((1u64 << (m - 1)) as f64, chi2 / 2.0);
    TestResult {
        name: "approx-entropy",
        statistic: chi2,
        p_value: p,
    }
}

/// SP 800-22 §2.13 — cumulative sums (forward) test: the maximum partial
/// sum of the ±1 walk should stay near zero.
pub fn cumulative_sums(bytes: &[u8]) -> TestResult {
    let n = (bytes.len() * 8) as f64;
    if bytes.is_empty() {
        return TestResult {
            name: "cusum",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut sum: i64 = 0;
    let mut z: i64 = 0;
    for bit in bits_of(bytes) {
        sum += if bit == 1 { 1 } else { -1 };
        z = z.max(sum.abs());
    }
    let z = z as f64;
    if z == 0.0 {
        return TestResult {
            name: "cusum",
            statistic: 0.0,
            p_value: 0.0,
        };
    }
    let sqrt_n = n.sqrt();
    let phi = |x: f64| 0.5 * erfc(-x / std::f64::consts::SQRT_2);
    let mut p = 1.0;
    let k_lo = ((-n / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= phi((4.0 * k + 1.0) * z / sqrt_n) - phi((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-n / z - 3.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += phi((4.0 * k + 3.0) * z / sqrt_n) - phi((4.0 * k + 1.0) * z / sqrt_n);
    }
    TestResult {
        name: "cusum",
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// SP 800-22 §2.4 — longest run of ones in 8-bit blocks (the M = 8
/// parameterisation, valid for 128 ≤ n < 6272 bits; longer streams are
/// evaluated on their first 6272 bits as NIST's tables prescribe per M).
pub fn longest_run(bytes: &[u8]) -> TestResult {
    const M: usize = 8;
    const K: usize = 3; // categories: <=1, 2, 3, >=4
    const PI: [f64; K + 1] = [0.2148, 0.3672, 0.2305, 0.1875];
    let bits: Vec<u8> = bits_of(bytes).take(6272).collect();
    let nblocks = bits.len() / M;
    if nblocks < 16 {
        return TestResult {
            name: "longest-run",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut v = [0u64; K + 1];
    for b in 0..nblocks {
        let mut longest = 0usize;
        let mut run = 0usize;
        for &bit in &bits[b * M..(b + 1) * M] {
            if bit == 1 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let cat = match longest {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        };
        v[cat] += 1;
    }
    let n = nblocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(PI.iter())
        .map(|(&obs, &pi)| {
            let e = n * pi;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    let p = igamc(K as f64 / 2.0, chi2 / 2.0);
    TestResult {
        name: "longest-run",
        statistic: chi2,
        p_value: p,
    }
}

/// SP 800-22 §2.6 — discrete Fourier transform (spectral) test: periodic
/// features would concentrate spectral power above the 95% threshold.
/// Evaluates the largest power-of-two prefix of the stream.
pub fn spectral(bytes: &[u8]) -> TestResult {
    let bits: Vec<f64> = bits_of(bytes)
        .map(|b| if b == 1 { 1.0 } else { -1.0 })
        .collect();
    if bits.len() < 128 {
        return TestResult {
            name: "spectral",
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let n = 1usize << (usize::BITS - 1 - bits.len().leading_zeros());
    let mods = crate::fft::spectrum_moduli(&bits[..n]);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let n0 = 0.95 * n as f64 / 2.0;
    let n1 = mods.iter().filter(|&&m| m < threshold).count() as f64;
    let d = (n1 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    let p = erfc(d.abs() / std::f64::consts::SQRT_2);
    TestResult {
        name: "spectral",
        statistic: d,
        p_value: p,
    }
}

/// Bundled report over the standard battery.
///
/// ```
/// use sdds_stats::RandomnessReport;
///
/// let obviously_not_random = vec![0u8; 2048];
/// let report = RandomnessReport::run(&obviously_not_random);
/// assert!(report.passed(0.01) < report.tests.len());
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct RandomnessReport {
    /// Individual test outcomes.
    pub tests: Vec<TestResult>,
}

impl RandomnessReport {
    /// Runs the full battery with conventional parameters.
    pub fn run(bytes: &[u8]) -> RandomnessReport {
        RandomnessReport {
            tests: vec![
                monobit(bytes),
                block_frequency(bytes, 128),
                runs(bytes),
                longest_run(bytes),
                cumulative_sums(bytes),
                spectral(bytes),
                serial(bytes, 4),
                approximate_entropy(bytes, 3),
            ],
        }
    }

    /// Number of tests passed at level `alpha`.
    pub fn passed(&self, alpha: f64) -> usize {
        self.tests.iter().filter(|t| t.passes(alpha)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — statistically strong enough to pass the battery.
    fn pseudo_random_bytes(n: usize, mut seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            seed = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
        }
        out.truncate(n);
        out
    }

    #[test]
    fn monobit_closed_form_example() {
        // 16-bit sequence 1100100110000101 has 7 ones: S = -2,
        // s_obs = 2/sqrt(16) = 0.5, P = erfc(0.5/sqrt(2)) ≈ 0.617075.
        let r = monobit(&[0b1100_1001, 0b1000_0101]);
        let expect = erfc(0.5 / std::f64::consts::SQRT_2);
        assert!((r.p_value - expect).abs() < 1e-12, "p={}", r.p_value);
        assert!((r.p_value - 0.617075).abs() < 1e-5);
    }

    #[test]
    fn random_stream_passes_battery() {
        let data = pseudo_random_bytes(4096, 0x243F6A8885A308D3);
        let report = RandomnessReport::run(&data);
        assert_eq!(report.passed(0.01), report.tests.len(), "{report:?}");
    }

    #[test]
    fn constant_stream_fails_hard() {
        let data = vec![0u8; 1024];
        assert!(monobit(&data).p_value < 1e-10);
        assert!(block_frequency(&data, 128).p_value < 1e-10);
        assert!(runs(&data).p_value < 1e-10);
    }

    #[test]
    fn alternating_bits_fail_runs() {
        let data = vec![0b0101_0101u8; 512];
        // perfect bit balance → monobit passes…
        assert!(monobit(&data).p_value > 0.9);
        // …but far too many runs
        assert!(runs(&data).p_value < 1e-10);
        assert!(serial(&data, 4).p_value < 1e-10);
    }

    #[test]
    fn ascii_text_fails_serial() {
        let text: Vec<u8> = b"AAAA BBBB THE QUICK BROWN FOX JUMPS OVER THE LAZY DOG "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let s = serial(&text, 4);
        assert!(
            s.p_value < 0.01,
            "ASCII text should fail serial: p={}",
            s.p_value
        );
    }

    #[test]
    fn cusum_detects_drifting_walks() {
        // random: pass
        let data = pseudo_random_bytes(4096, 0xABCDEF);
        assert!(cumulative_sums(&data).p_value > 0.01);
        // a biased stream drifts and fails hard
        let biased: Vec<u8> = (0..2048)
            .map(|i| if i % 8 == 0 { 0x00 } else { 0xFF })
            .collect();
        assert!(cumulative_sums(&biased).p_value < 1e-10);
        // degenerate all-equal stream
        assert!(cumulative_sums(&[0xFFu8; 64]).p_value < 1e-10);
    }

    #[test]
    fn longest_run_separates_random_from_clumped() {
        let data = pseudo_random_bytes(784, 0x12345);
        assert!(
            longest_run(&data).p_value > 0.01,
            "{:?}",
            longest_run(&data)
        );
        // every byte 0x0F: every block's longest run is exactly 4
        let clumped = vec![0x0Fu8; 784];
        assert!(longest_run(&clumped).p_value < 1e-10);
        // too short: inconclusive
        assert_eq!(longest_run(&[0xAA; 8]).p_value, 1.0);
    }

    #[test]
    fn spectral_detects_periodicity() {
        let data = pseudo_random_bytes(2048, 0xFEED);
        assert!(spectral(&data).p_value > 0.01, "{:?}", spectral(&data));
        // strongly periodic stream: power concentrates above threshold
        let periodic: Vec<u8> = (0..2048)
            .map(|i| if i % 2 == 0 { 0xF0 } else { 0x0F })
            .collect();
        assert!(
            spectral(&periodic).p_value < 0.01,
            "{:?}",
            spectral(&periodic)
        );
        assert_eq!(
            spectral(&[0xAA; 4]).p_value,
            1.0,
            "short stream inconclusive"
        );
    }

    #[test]
    fn short_streams_are_inconclusive_not_crashing() {
        let r = block_frequency(&[0xAB], 128);
        assert_eq!(r.p_value, 1.0);
        let r = serial(&[0xAB], 4);
        assert_eq!(r.p_value, 1.0);
        let r = runs(&[]);
        assert_eq!(r.p_value, 1.0);
    }
}
