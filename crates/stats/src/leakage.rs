//! Empirical leakage auditor for stored encrypted index records.
//!
//! The paper's security argument (§6–§7) is statistical: after dispersion,
//! chunking and preprocessing, the stored index elements should be
//! indistinguishable from uniform random symbols, so an adversary holding a
//! server's bucket contents learns nothing about record content. This
//! module audits that claim *empirically against the bytes a server
//! actually stores*, per bucket — the adversary's real vantage point —
//! rather than against the pipeline's intermediate streams.
//!
//! [`LeakageAuditor`] streams encoded record bodies bucket by bucket,
//! splitting each into fixed-width elements (the scheme's symbol width,
//! `element_bytes`), and accumulates a sparse per-bucket histogram. The
//! [`report`](LeakageAuditor::report) computes, for each bucket and for the
//! pooled whole:
//!
//! * χ² against uniform over the full `256^element_bytes` alphabet
//!   ([`chi2_uniform_from_counts`]), plus χ²/df, which hovers near 1.0 for
//!   uniform data regardless of alphabet size;
//! * the upper-tail p-value ([`chi2_pvalue`]) — small values flag
//!   non-uniformity;
//! * the top-m frequency ratio: the fraction of all observations taken by
//!   the `m` most common element values. Uniform data gives ≈ `m/k` (or
//!   `m/distinct` when the sample is much smaller than the alphabet); a
//!   skewed ratio is the footprint frequency-analysis attacks exploit.

use crate::chi2::{chi2_pvalue, chi2_uniform_from_counts};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Streams stored record bodies and accumulates per-bucket element
/// histograms for uniformity auditing.
#[derive(Debug, Clone)]
pub struct LeakageAuditor {
    element_bytes: usize,
    alphabet: u64,
    buckets: BTreeMap<u64, Histogram>,
}

#[derive(Debug, Clone, Default)]
struct Histogram {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl Histogram {
    fn observe(&mut self, element: u64) {
        *self.counts.entry(element).or_insert(0) += 1;
        self.total += 1;
    }

    fn merge_into(&self, pooled: &mut Histogram) {
        for (&element, &count) in &self.counts {
            *pooled.counts.entry(element).or_insert(0) += count;
        }
        pooled.total += self.total;
    }

    fn summarize(&self, alphabet: u64, top_m: usize) -> LeakageSummary {
        let chi_square =
            chi2_uniform_from_counts(self.counts.values().copied(), self.total, alphabet);
        let df = alphabet.saturating_sub(1).max(1) as f64;
        // Top-m frequency ratio: sort counts descending and take the head.
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts.iter().take(top_m).sum();
        LeakageSummary {
            elements: self.total,
            distinct: self.counts.len() as u64,
            chi_square,
            chi_square_per_df: chi_square / df,
            p_value: if self.total == 0 {
                1.0
            } else {
                chi2_pvalue(chi_square, df)
            },
            top_ratio: if self.total == 0 {
                0.0
            } else {
                top as f64 / self.total as f64
            },
        }
    }
}

/// Uniformity statistics for one element stream (a bucket, or the pool).
#[derive(Debug, Clone, Serialize)]
pub struct LeakageSummary {
    /// Elements observed.
    pub elements: u64,
    /// Distinct element values observed.
    pub distinct: u64,
    /// χ² against uniform over the full alphabet.
    pub chi_square: f64,
    /// χ² divided by its degrees of freedom (`alphabet - 1`); ≈ 1.0 when
    /// the stream is uniform.
    pub chi_square_per_df: f64,
    /// Upper-tail p-value of the χ² statistic.
    pub p_value: f64,
    /// Fraction of observations taken by the `top_m` most common values.
    pub top_ratio: f64,
}

/// Per-bucket uniformity statistics.
#[derive(Debug, Clone, Serialize)]
pub struct BucketLeakage {
    /// Bucket address the elements were stored in.
    pub bucket: u64,
    /// The bucket's statistics.
    pub summary: LeakageSummary,
}

/// A full leakage audit: pooled statistics plus a per-bucket breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct LeakageReport {
    /// Element width in bytes the bodies were split into.
    pub element_bytes: usize,
    /// Alphabet size (`256^element_bytes`) the χ² ran against.
    pub alphabet: u64,
    /// `m` used for the top-m frequency ratio.
    pub top_m: usize,
    /// Statistics over all buckets pooled together.
    pub overall: LeakageSummary,
    /// Per-bucket statistics, ordered by bucket address.
    pub buckets: Vec<BucketLeakage>,
}

impl LeakageReport {
    /// Largest per-bucket χ²/df — the single most suspicious bucket.
    pub fn worst_chi_square_per_df(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.summary.chi_square_per_df)
            .fold(0.0, f64::max)
    }
}

impl LeakageAuditor {
    /// New auditor splitting bodies into `element_bytes`-wide elements.
    ///
    /// Widths are clamped to 1..=4 bytes so the alphabet (`256^w`) stays
    /// enumerable; the paper's configuration uses 2-byte elements.
    pub fn new(element_bytes: usize) -> LeakageAuditor {
        let element_bytes = element_bytes.clamp(1, 4);
        LeakageAuditor {
            element_bytes,
            alphabet: 256u64.pow(element_bytes as u32),
            buckets: BTreeMap::new(),
        }
    }

    /// Element width in bytes.
    pub fn element_bytes(&self) -> usize {
        self.element_bytes
    }

    /// Alphabet size the statistics run against.
    pub fn alphabet(&self) -> u64 {
        self.alphabet
    }

    /// Total elements observed across all buckets.
    pub fn observed_elements(&self) -> u64 {
        self.buckets.values().map(|h| h.total).sum()
    }

    /// Feeds one stored record body from `bucket` into the histogram.
    ///
    /// The body is split into consecutive big-endian `element_bytes`-wide
    /// elements; a trailing partial element (possible only when the store's
    /// record length is not a multiple of the element width) is ignored
    /// rather than zero-padded, which would fabricate skew.
    pub fn observe(&mut self, bucket: u64, body: &[u8]) {
        let hist = self.buckets.entry(bucket).or_default();
        for chunk in body.chunks_exact(self.element_bytes) {
            let mut element = 0u64;
            for &byte in chunk {
                element = (element << 8) | byte as u64;
            }
            hist.observe(element);
        }
    }

    /// Computes the report, with the top-m ratio taken over `top_m` values.
    pub fn report(&self, top_m: usize) -> LeakageReport {
        let mut pooled = Histogram::default();
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (&bucket, hist) in &self.buckets {
            hist.merge_into(&mut pooled);
            buckets.push(BucketLeakage {
                bucket,
                summary: hist.summarize(self.alphabet, top_m),
            });
        }
        LeakageReport {
            element_bytes: self.element_bytes,
            alphabet: self.alphabet,
            top_m,
            overall: pooled.summarize(self.alphabet, top_m),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_auditor_reports_cleanly() {
        let auditor = LeakageAuditor::new(2);
        let report = auditor.report(8);
        assert_eq!(report.alphabet, 65536);
        assert_eq!(report.buckets.len(), 0);
        assert_eq!(report.overall.elements, 0);
        assert_eq!(report.overall.chi_square, 0.0);
        assert_eq!(report.overall.p_value, 1.0);
        assert_eq!(report.overall.top_ratio, 0.0);
    }

    #[test]
    fn splits_bodies_into_big_endian_elements() {
        let mut auditor = LeakageAuditor::new(2);
        // 0x0102, 0x0304, trailing 0x05 ignored
        auditor.observe(0, &[1, 2, 3, 4, 5]);
        assert_eq!(auditor.observed_elements(), 2);
        let report = auditor.report(1);
        assert_eq!(report.buckets[0].summary.distinct, 2);
        assert!((report.buckets[0].summary.top_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_is_flagged_as_leaky() {
        let mut auditor = LeakageAuditor::new(1);
        for _ in 0..512 {
            auditor.observe(3, &[0xAA]);
        }
        let report = auditor.report(4);
        let b = &report.buckets[0];
        assert_eq!(b.bucket, 3);
        assert_eq!(b.summary.distinct, 1);
        // All mass on one of 256 categories: χ²/df far above 1, p ≈ 0.
        assert!(b.summary.chi_square_per_df > 100.0);
        assert!(b.summary.p_value < 1e-12);
        assert!((b.summary.top_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_stream_looks_uniform() {
        let mut auditor = LeakageAuditor::new(1);
        // Each byte value exactly 4 times: χ² is exactly 0.
        let mut body = Vec::new();
        for round in 0..4u16 {
            let _ = round;
            body.extend(0u8..=255);
        }
        auditor.observe(0, &body);
        let report = auditor.report(8);
        assert_eq!(report.overall.elements, 1024);
        assert_eq!(report.overall.chi_square, 0.0);
        assert_eq!(report.overall.p_value, 1.0);
        assert!((report.overall.top_ratio - 8.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_statistics_merge_buckets() {
        let mut auditor = LeakageAuditor::new(1);
        auditor.observe(0, &[0, 1, 2, 3]);
        auditor.observe(1, &[4, 5, 6, 7]);
        let report = auditor.report(2);
        assert_eq!(report.overall.elements, 8);
        assert_eq!(report.overall.distinct, 8);
        assert_eq!(report.buckets.len(), 2);
        assert_eq!(report.worst_chi_square_per_df(), {
            let per_bucket = report.buckets[0].summary.chi_square_per_df;
            assert!((per_bucket - report.buckets[1].summary.chi_square_per_df).abs() < 1e-12);
            per_bucket
        });
    }

    #[test]
    fn report_serializes_to_json() {
        let mut auditor = LeakageAuditor::new(2);
        auditor.observe(0, &[1, 2, 3, 4]);
        let json = serde_json::to_string(&auditor.report(4)).unwrap();
        assert!(json.contains("\"chi_square\""));
        assert!(json.contains("\"overall\""));
        assert!(json.contains("\"buckets\""));
    }
}
