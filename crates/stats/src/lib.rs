//! Statistical machinery for evaluating the encrypted index records.
//!
//! The paper's evaluation (§6–§7, Tables 1–5) rests on χ² statistics of
//! single symbols, doublets and triplets before and after each stage of the
//! scheme, plus the observation that "ideally, the contents of the
//! dispersed, chunked, and preprocessed index records are indistinguishable
//! from random bits". This crate supplies:
//!
//! * [`ngram`] — n-gram counting over symbol streams (records never bleed
//!   into each other);
//! * [`chi2`] — χ² against the uniform distribution, the paper's headline
//!   metric;
//! * [`entropy`] — Shannon entropy estimates;
//! * [`randomness`] — NIST SP 800-22-style tests (monobit, block frequency,
//!   runs, serial, approximate entropy) with real p-values, which the paper
//!   cites (\[R&al01\], \[S99\]) as the better way it intends to evaluate
//!   closeness to randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod entropy;
pub mod fft;
pub mod leakage;
pub mod ngram;
pub mod randomness;
mod special;

pub use chi2::{chi2_uniform, Chi2Report};
pub use entropy::shannon_entropy;
pub use leakage::{BucketLeakage, LeakageAuditor, LeakageReport, LeakageSummary};
pub use ngram::NgramCounter;
pub use randomness::{RandomnessReport, TestResult};
