//! Special functions needed for p-values: the complementary error function
//! and the regularised incomplete gamma functions, implemented per the
//! standard Numerical-Recipes-style series / continued-fraction split.

/// Complementary error function, |relative error| < 1.2e-7 (Numerical
/// Recipes rational Chebyshev approximation) — ample for test p-values.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// ln Γ(x) (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularised lower incomplete gamma P(a, x) by series expansion.
fn igam_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularised upper incomplete gamma Q(a, x) by continued fraction.
fn igamc_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularised upper incomplete gamma `Q(a, x) = Γ(a,x)/Γ(a)`.
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        (1.0 - igam_series(a, x)).clamp(0.0, 1.0)
    } else {
        igamc_cf(a, x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.1572992).abs() < 1e-6);
        assert!((erfc(2.0) - 0.00467773).abs() < 1e-7);
        assert!((erfc(-1.0) - 1.8427008).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: u64 = (1..=n).product();
            let expect = (fact as f64).ln();
            assert!((ln_gamma(n as f64 + 1.0) - expect).abs() < 1e-9, "n={n}");
        }
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn igamc_reference_values() {
        // Q(1, x) = e^-x
        for x in [0.1, 1.0, 2.5, 10.0] {
            assert!((igamc(1.0, x) - (-x_f(x)).exp()).abs() < 1e-9, "x={x}");
        }
        fn x_f(x: f64) -> f64 {
            x
        }
        // Q(0.5, x) = erfc(sqrt(x))
        for x in [0.2, 1.0, 4.0] {
            assert!((igamc(0.5, x) - erfc(x.sqrt())).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn igamc_monotone_decreasing_in_x() {
        let mut prev = 1.0;
        for i in 1..100 {
            let q = igamc(3.0, i as f64 * 0.2);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn igamc_edge_cases() {
        assert_eq!(igamc(2.0, 0.0), 1.0);
        assert_eq!(igamc(2.0, -1.0), 1.0);
        assert!(igamc(2.0, 1e4) < 1e-300 * 1e10 + 1e-12);
    }
}
