//! χ² goodness-of-fit against the uniform distribution.
//!
//! This is the paper's primary evaluation metric (Tables 1–5): for `N`
//! observations in `k` equiprobable categories with expected count
//! `E = N/k`, `χ² = Σ_i (O_i - E)² / E` summed over **all** k categories,
//! including the never-observed ones (each contributes `E`).

use crate::special::igamc;
use serde::Serialize;

/// χ² of observed counts against uniform over `k` categories.
///
/// `counts` enumerates only the non-zero categories; absent categories are
/// accounted for in closed form, so triplet alphabets of millions of
/// categories cost nothing extra.
pub fn chi2_uniform_from_counts<I: IntoIterator<Item = u64>>(counts: I, total: u64, k: u64) -> f64 {
    if total == 0 || k == 0 {
        return 0.0;
    }
    let expected = total as f64 / k as f64;
    // Sum in sorted order: callers often feed hash-map values, whose
    // iteration order varies per process; sorting keeps the floating-point
    // sum bit-for-bit reproducible for a given seed.
    let mut counts: Vec<u64> = counts.into_iter().collect();
    counts.sort_unstable();
    let nonzero_categories = counts.len() as u64;
    let mut stat = 0.0;
    for c in counts {
        let d = c as f64 - expected;
        stat += d * d / expected;
    }
    // each empty category contributes (0 - E)^2 / E = E
    let empty = k.saturating_sub(nonzero_categories);
    stat + empty as f64 * expected
}

/// χ² of a dense histogram against uniform.
pub fn chi2_uniform(histogram: &[u64]) -> f64 {
    let total: u64 = histogram.iter().sum();
    chi2_uniform_from_counts(
        histogram.iter().copied().filter(|&c| c > 0),
        total,
        histogram.len() as u64,
    )
}

/// Upper-tail p-value of a χ² statistic with `df` degrees of freedom,
/// `Q(df/2, x/2)` via the regularised incomplete gamma function.
pub fn chi2_pvalue(stat: f64, df: f64) -> f64 {
    if stat <= 0.0 {
        return 1.0;
    }
    igamc(df / 2.0, stat / 2.0)
}

/// A χ² report for one symbol stream: the single/doublet/triplet statistics
/// the paper tabulates, with their degrees of freedom.
#[derive(Debug, Clone, Serialize)]
pub struct Chi2Report {
    /// χ² over single symbols.
    pub single: f64,
    /// χ² over doublets.
    pub double: f64,
    /// χ² over triplets.
    pub triple: f64,
    /// Alphabet size the statistics were computed against.
    pub alphabet: usize,
    /// Total single-symbol observations.
    pub observations: u64,
}

impl Chi2Report {
    /// Computes the three statistics over a set of records.
    pub fn from_records<'a, I>(records: I, alphabet: usize) -> Chi2Report
    where
        I: IntoIterator<Item = &'a [u16]> + Clone,
    {
        use crate::ngram::NgramCounter;
        let mut c1 = NgramCounter::new(1, alphabet);
        let mut c2 = NgramCounter::new(2, alphabet);
        let mut c3 = NgramCounter::new(3, alphabet);
        for r in records {
            c1.add_record(r);
            c2.add_record(r);
            c3.add_record(r);
        }
        Chi2Report {
            single: c1.chi2_uniform(),
            double: c2.chi2_uniform(),
            triple: c3.chi2_uniform(),
            alphabet,
            observations: c1.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_scores_zero() {
        assert_eq!(chi2_uniform(&[10, 10, 10, 10]), 0.0);
    }

    #[test]
    fn known_small_example() {
        // counts [8, 12] over 2 categories: E = 10, chi2 = (4+4)/10 = 0.8
        assert!((chi2_uniform(&[8, 12]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let hist = [5u64, 0, 3, 0, 0, 12, 1, 0];
        let total: u64 = hist.iter().sum();
        let dense = chi2_uniform(&hist);
        let sparse = chi2_uniform_from_counts(
            hist.iter().copied().filter(|&c| c > 0),
            total,
            hist.len() as u64,
        );
        assert!((dense - sparse).abs() < 1e-9);
    }

    #[test]
    fn empty_input_scores_zero() {
        assert_eq!(chi2_uniform(&[]), 0.0);
        assert_eq!(chi2_uniform(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn huge_category_count_is_cheap_and_correct() {
        // 3 observations of one gram among 2^24 categories
        let k = 1u64 << 24;
        let stat = chi2_uniform_from_counts([3u64], 3, k);
        let e = 3.0 / k as f64;
        let expect = (3.0 - e) * (3.0 - e) / e + (k - 1) as f64 * e;
        assert!((stat - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn pvalue_sane_bounds() {
        // df=1: stat 3.84 ~ p 0.05
        let p = chi2_pvalue(3.841, 1.0);
        assert!((p - 0.05).abs() < 0.002, "p={p}");
        // df=10: stat 18.31 ~ p 0.05
        let p = chi2_pvalue(18.307, 10.0);
        assert!((p - 0.05).abs() < 0.002, "p={p}");
        assert_eq!(chi2_pvalue(0.0, 5.0), 1.0);
        assert!(chi2_pvalue(1e6, 5.0) < 1e-12);
    }

    #[test]
    fn report_over_records() {
        let r1: Vec<u16> = vec![0, 1, 2, 3];
        let r2: Vec<u16> = vec![3, 2, 1, 0];
        let rep = Chi2Report::from_records([r1.as_slice(), r2.as_slice()], 4);
        assert_eq!(rep.observations, 8);
        assert!(rep.single.abs() < 1e-9, "uniform singles");
        assert!(rep.double > 0.0, "doublets are not uniform here");
    }
}
