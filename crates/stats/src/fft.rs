//! A minimal radix-2 FFT — the numerical substrate for the SP 800-22
//! spectral test. Self-contained (no complex-number dependency): values
//! are `(re, im)` pairs.

/// In-place iterative Cooley–Tukey FFT. `data.len()` must be a power of
/// two (panics otherwise).
pub fn fft(data: &mut [(f64, f64)]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // butterflies
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
}

/// Moduli of the spectrum of a real sequence (first half, which carries
/// all the information for real input).
pub fn spectrum_moduli(real: &[f64]) -> Vec<f64> {
    let n = real.len().next_power_of_two() / if real.len().is_power_of_two() { 1 } else { 2 };
    let n = n.min(real.len());
    let mut data: Vec<(f64, f64)> = real[..n].iter().map(|&x| (x, 0.0)).collect();
    fft(&mut data);
    data[..n / 2]
        .iter()
        .map(|&(re, im)| (re * re + im * im).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT.
    fn naive_dft(x: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in x.iter().enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (c, s) = (angle.cos(), angle.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64] {
            let input: Vec<(f64, f64)> = (0..n)
                .map(|i| ((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut fast = input.clone();
            fft(&mut fast);
            let slow = naive_dft(&input);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a.0 - b.0).abs() < 1e-9, "re mismatch n={n}");
                assert!((a.1 - b.1).abs() < 1e-9, "im mismatch n={n}");
            }
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let real: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 4.0 * i as f64 / n as f64).cos())
            .collect();
        let mods = spectrum_moduli(&real);
        let peak = mods
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 4, "tone at bin 4");
    }

    #[test]
    fn constant_signal_is_dc_only() {
        let mods = spectrum_moduli(&[1.0; 32]);
        assert!(mods[0] > 31.0);
        assert!(mods[1..].iter().all(|&m| m < 1e-9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 6];
        fft(&mut d);
    }
}
