//! Shannon entropy estimates.
//!
//! The paper's §6 discusses how much information an index record may retain:
//! "a letter in an English text contains between 2 and 3 bits of
//! information \[S51\], thus storing only 2 bits for each byte should be
//! safe". These helpers quantify that for our streams.

use crate::ngram::NgramCounter;

/// Shannon entropy (bits/symbol) of an empirical distribution given as
/// counts. Zero counts contribute nothing.
pub fn shannon_entropy<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Per-symbol entropy of order `n`: `H(n-grams) / n`, an upper bound that
/// tightens as `n` grows (Shannon's block-entropy estimate).
pub fn block_entropy_rate(counter: &NgramCounter) -> f64 {
    let h = shannon_entropy(counter.iter().map(|(_, c)| c));
    h / counter.order() as f64
}

/// Conditional entropy estimate `H(X_n | X_1..X_{n-1}) = H_n - H_{n-1}`
/// from two counters of consecutive orders — the quantity that exposes the
/// inter-chunk predictability the paper worries about ("'SMIT' … chances
/// are that the next chunk will start with an 'H'").
pub fn conditional_entropy(counter_n: &NgramCounter, counter_prev: &NgramCounter) -> f64 {
    assert_eq!(
        counter_n.order(),
        counter_prev.order() + 1,
        "counters must have consecutive orders"
    );
    let hn = shannon_entropy(counter_n.iter().map(|(_, c)| c));
    let hp = shannon_entropy(counter_prev.iter().map(|(_, c)| c));
    (hn - hp).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_has_log2_k_bits() {
        assert!((shannon_entropy([1u64; 8]) - 3.0).abs() < 1e-12);
        assert!((shannon_entropy([5u64; 256]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_distribution_has_zero_entropy() {
        assert_eq!(shannon_entropy([42u64]), 0.0);
        assert_eq!(shannon_entropy([0u64, 0, 7]), 0.0);
        assert_eq!(shannon_entropy(std::iter::empty()), 0.0);
    }

    #[test]
    fn binary_biased_entropy() {
        // p = 0.25: H = 0.811278...
        let h = shannon_entropy([1u64, 3]);
        assert!((h - 0.8112781244591328).abs() < 1e-12);
    }

    #[test]
    fn block_entropy_rate_of_uniform_pairs() {
        let mut c = NgramCounter::new(2, 2);
        // all four bigrams equally often
        c.add_record(&[0, 0, 1, 1, 0, 1, 0, 0, 1]);
        let rate = block_entropy_rate(&c);
        assert!(rate > 0.9 && rate <= 1.0);
    }

    #[test]
    fn conditional_entropy_of_deterministic_successor_is_zero() {
        // alternating 0101..: knowing previous symbol determines the next
        let seq: Vec<u16> = (0..100).map(|i| (i % 2) as u16).collect();
        let mut c2 = NgramCounter::new(2, 2);
        let mut c1 = NgramCounter::new(1, 2);
        c2.add_record(&seq);
        c1.add_record(&seq);
        let ce = conditional_entropy(&c2, &c1);
        assert!(ce < 0.01, "ce={ce}");
    }
}
