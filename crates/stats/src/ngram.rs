//! n-gram counting over symbol streams.
//!
//! Symbols are `u16` so the same counter serves raw 8-bit ASCII, the 2-bit
//! dispersion shares of Table 2, and Stage-2 code alphabets of up to 2^16
//! codes. Counting is per record: an n-gram never spans two records, which
//! matches how the paper treats its phone-book entries.

use std::collections::HashMap;

/// Counts n-grams of a fixed order `n` over records of symbols.
///
/// ```
/// use sdds_stats::NgramCounter;
///
/// let mut doublets = NgramCounter::new(2, 256);
/// doublets.add_record(&"ANNA".bytes().map(u16::from).collect::<Vec<_>>());
/// assert_eq!(doublets.count(&[b'N'.into(), b'N'.into()]), 1);
/// assert!(doublets.chi2_uniform() > 0.0); // far from uniform
/// ```
#[derive(Debug, Clone)]
pub struct NgramCounter {
    n: usize,
    alphabet: usize,
    counts: HashMap<Vec<u16>, u64>,
    total: u64,
}

impl NgramCounter {
    /// Creates a counter for `n`-grams over an alphabet of `alphabet`
    /// symbols (`0..alphabet`). Panics if `n == 0` or `alphabet == 0`.
    pub fn new(n: usize, alphabet: usize) -> NgramCounter {
        assert!(n > 0, "n-gram order must be positive");
        assert!(alphabet > 0, "alphabet must be non-empty");
        NgramCounter {
            n,
            alphabet,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// n-gram order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Alphabet size used for the uniform-χ² category count.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Adds one record's symbols. Records shorter than `n` contribute no
    /// n-grams. Symbols outside the alphabet panic in debug builds.
    pub fn add_record(&mut self, symbols: &[u16]) {
        if symbols.len() < self.n {
            return;
        }
        for w in symbols.windows(self.n) {
            debug_assert!(
                w.iter().all(|&s| (s as usize) < self.alphabet),
                "symbol out of alphabet"
            );
            *self.counts.entry(w.to_vec()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Total number of n-grams counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* n-grams observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Number of possible n-grams, `alphabet^n`, saturating at `u64::MAX`.
    pub fn categories(&self) -> u64 {
        let mut c: u64 = 1;
        for _ in 0..self.n {
            c = c.saturating_mul(self.alphabet as u64);
        }
        c
    }

    /// Count of a specific n-gram.
    pub fn count(&self, gram: &[u16]) -> u64 {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// The `m` most frequent n-grams with their relative frequencies,
    /// descending, ties broken by n-gram value for determinism.
    pub fn top(&self, m: usize) -> Vec<(Vec<u16>, f64)> {
        let mut items: Vec<(&Vec<u16>, &u64)> = self.counts.iter().collect();
        items.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        items
            .into_iter()
            .take(m)
            .map(|(g, &c)| (g.clone(), c as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Iterator over `(gram, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u16], u64)> {
        self.counts.iter().map(|(g, &c)| (g.as_slice(), c))
    }

    /// χ² statistic of the observed counts against the uniform distribution
    /// over all `alphabet^n` categories (zero-count categories included —
    /// essential: the paper's huge χ² values come largely from the mass of
    /// never-seen n-grams).
    pub fn chi2_uniform(&self) -> f64 {
        let k = self.categories();
        crate::chi2::chi2_uniform_from_counts(self.counts.values().copied(), self.total, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unigrams() {
        let mut c = NgramCounter::new(1, 4);
        c.add_record(&[0, 1, 1, 2]);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(&[1]), 2);
        assert_eq!(c.count(&[3]), 0);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn bigrams_do_not_span_records() {
        let mut c = NgramCounter::new(2, 4);
        c.add_record(&[0, 1]);
        c.add_record(&[2, 3]);
        assert_eq!(c.count(&[1, 2]), 0, "cross-record bigram must not exist");
        assert_eq!(c.count(&[0, 1]), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn short_records_contribute_nothing() {
        let mut c = NgramCounter::new(3, 4);
        c.add_record(&[0, 1]);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn top_sorts_desc_with_deterministic_ties() {
        let mut c = NgramCounter::new(1, 8);
        c.add_record(&[5, 5, 5, 2, 2, 7]);
        let top = c.top(3);
        assert_eq!(top[0].0, vec![5]);
        assert!((top[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(top[1].0, vec![2]);
        assert_eq!(top[2].0, vec![7]);
    }

    #[test]
    fn categories_counts_alphabet_power() {
        let c = NgramCounter::new(3, 256);
        assert_eq!(c.categories(), 256u64.pow(3));
        // 65536^4 = 2^64 overflows u64: categories() saturates instead
        let c = NgramCounter::new(4, 65536);
        assert_eq!(c.categories(), u64::MAX);
    }

    #[test]
    fn chi2_zero_for_perfectly_uniform() {
        let mut c = NgramCounter::new(1, 4);
        c.add_record(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(c.chi2_uniform().abs() < 1e-9);
    }

    #[test]
    fn chi2_large_for_constant_stream() {
        let mut c = NgramCounter::new(1, 4);
        c.add_record(&[0; 100]);
        // all mass in one of four categories: chi2 = 100*(4-1) = 300
        assert!((c.chi2_uniform() - 300.0).abs() < 1e-9);
    }
}
