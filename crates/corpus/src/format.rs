//! The fixed-width directory file format of Figure 4.
//!
//! Each line is `NAME%%%…%PHONE$$`: the name padded with `%` to a fixed
//! field width, followed by the display phone number and the `$$` record
//! terminator, e.g.
//!
//! ```text
//! AKIMOTO YOSHIMI%%%%%%%%%%%415-409-0019$$
//! ```

use crate::record::Record;
use std::fmt;

/// Width of the padded name field (the paper's extract pads names to a
/// fixed column before the phone number).
pub const NAME_FIELD_WIDTH: usize = 26;

/// Errors from parsing the fixed-width format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Line does not end in the `$$` terminator.
    MissingTerminator(usize),
    /// Phone number field is malformed.
    BadPhone(usize, String),
    /// Name field is empty after stripping padding.
    EmptyName(usize),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::MissingTerminator(l) => write!(f, "line {l}: missing $$ terminator"),
            FormatError::BadPhone(l, p) => write!(f, "line {l}: bad phone number {p:?}"),
            FormatError::EmptyName(l) => write!(f, "line {l}: empty name field"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Renders records in the Figure-4 layout, one per line.
pub fn format_directory(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let pad = NAME_FIELD_WIDTH.saturating_sub(r.rc.len());
        out.push_str(&r.rc);
        for _ in 0..pad.max(1) {
            out.push('%');
        }
        out.push_str(&r.phone_display());
        out.push_str("$$\n");
    }
    out
}

/// Parses the Figure-4 layout back into records.
pub fn parse_directory(text: &str) -> Result<Vec<Record>, FormatError> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_suffix("$$")
            .ok_or(FormatError::MissingTerminator(lineno + 1))?;
        // phone is the trailing 12 characters XXX-XXX-XXXX
        if body.len() < 12 {
            return Err(FormatError::BadPhone(lineno + 1, body.to_string()));
        }
        let (name_part, phone) = body.split_at(body.len() - 12);
        let digits: String = phone.chars().filter(|c| c.is_ascii_digit()).collect();
        if digits.len() != 10 || phone.as_bytes()[3] != b'-' || phone.as_bytes()[7] != b'-' {
            return Err(FormatError::BadPhone(lineno + 1, phone.to_string()));
        }
        let rid: u64 = digits
            .parse()
            .map_err(|_| FormatError::BadPhone(lineno + 1, phone.to_string()))?;
        let name = name_part.trim_end_matches('%');
        if name.is_empty() {
            return Err(FormatError::EmptyName(lineno + 1));
        }
        records.push(Record::new(rid, name));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DirectoryGenerator;

    #[test]
    fn roundtrip_generated_directory() {
        let recs = DirectoryGenerator::new(11).generate(1000);
        let text = format_directory(&recs);
        let parsed = parse_directory(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn format_matches_figure_4_shape() {
        let recs = vec![Record::new(4154090019, "AKIMOTO YOSHIMI")];
        let text = format_directory(&recs);
        assert_eq!(text, "AKIMOTO YOSHIMI%%%%%%%%%%%415-409-0019$$\n");
    }

    #[test]
    fn long_names_still_get_one_percent_separator() {
        let recs = vec![Record::new(4154090000, "A".repeat(30))];
        let text = format_directory(&recs);
        assert!(text.contains(&format!("{}%415-409-0000$$", "A".repeat(30))));
        let parsed = parse_directory(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn rejects_missing_terminator() {
        let err = parse_directory("SMITH%%%%415-409-0000").unwrap_err();
        assert_eq!(err, FormatError::MissingTerminator(1));
    }

    #[test]
    fn rejects_bad_phone() {
        let err = parse_directory("SMITH%%%%415X409-0000$$").unwrap_err();
        assert!(matches!(err, FormatError::BadPhone(1, _)));
        let err = parse_directory("AB$$").unwrap_err();
        assert!(matches!(err, FormatError::BadPhone(1, _)));
    }

    #[test]
    fn rejects_empty_name() {
        let err = parse_directory("%%%%%%%%%%415-409-0000$$").unwrap_err();
        assert_eq!(err, FormatError::EmptyName(1));
    }

    #[test]
    fn skips_blank_lines() {
        let recs = vec![Record::new(4154090019, "YU")];
        let text = format!("\n{}\n\n", format_directory(&recs));
        assert_eq!(parse_directory(&text).unwrap(), recs);
    }
}
