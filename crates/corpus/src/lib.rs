//! Synthetic San-Francisco-style phone directory workload.
//!
//! The paper evaluates on "a telephone directory \[of\] San Francisco …
//! 282,965 entries", processed into flat records with the phone number as
//! the RID and the subscriber name as the RC (§7). That dataset is
//! proprietary, so this crate synthesises an equivalent corpus whose
//! *relevant statistics* match the published ones:
//!
//! * capitalised names over the Figure-5 alphabet (space, A–Z, `&.'‑XQ`);
//! * a "heavy presence of Asian names" (§7) including the short surnames —
//!   Yu, Ou, Ip, Ba, Wu, Li, Le, Lee, Kim, Woo, Kay, Mai, Lim, Mak, Lew,
//!   See — that the paper identifies as the dominant false-positive source;
//! * n-gram mass on the paper's reported top letters (A, E, N, R, I, O),
//!   doublets (AN, ER, AR, ON, IN) and triplets (CHA, MAR, SON, ONG, ANG);
//! * fake `415-409-XXXX` numbers and the `%`-padded, `$$`-terminated
//!   fixed-width layout of Figure 4.
//!
//! Generation is fully deterministic given a seed.
//!
//! ```
//! use sdds_corpus::DirectoryGenerator;
//!
//! let records = DirectoryGenerator::new(42).generate(100);
//! assert_eq!(records.len(), 100);
//! assert!(records.iter().all(|r| !r.rc.is_empty()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod generator;
mod names;
mod record;
pub mod workload;

pub use format::{format_directory, parse_directory, FormatError, NAME_FIELD_WIDTH};
pub use generator::DirectoryGenerator;
pub use record::Record;
