//! The flat SDDS record of the paper: a Record Identifier and a flat
//! Record Content string (Figure 1).

use serde::{Deserialize, Serialize};

/// A flat record: `RI` (an artificial, non-sensitive number — here the
/// phone number as digits) and `RC` (the subscriber name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Record identifier (the paper's RI/RID); assumed non-sensitive.
    pub rid: u64,
    /// Record content — a flat, printable string (the subscriber name).
    pub rc: String,
}

impl Record {
    /// Creates a record.
    pub fn new(rid: u64, rc: impl Into<String>) -> Record {
        Record { rid, rc: rc.into() }
    }

    /// RC as a symbol stream for the statistics crates: one `u16` per byte.
    pub fn symbols(&self) -> Vec<u16> {
        self.rc.bytes().map(u16::from).collect()
    }

    /// The phone number in the directory's display form `415-409-XXXX`
    /// (the RID stores just the digits).
    pub fn phone_display(&self) -> String {
        let digits = format!("{:010}", self.rid);
        format!("{}-{}-{}", &digits[0..3], &digits[3..6], &digits[6..10])
    }

    /// The last name — the directory lists names as `LAST FIRST…`, so this
    /// is the first whitespace-delimited token. Search experiments in the
    /// paper query these.
    pub fn last_name(&self) -> &str {
        self.rc.split(' ').next().unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_bytes() {
        let r = Record::new(1, "AB");
        assert_eq!(r.symbols(), vec![65u16, 66]);
    }

    #[test]
    fn phone_display_formats() {
        let r = Record::new(4154090271, "X");
        assert_eq!(r.phone_display(), "415-409-0271");
    }

    #[test]
    fn phone_display_pads_leading_zeros() {
        let r = Record::new(15550000, "X");
        assert_eq!(r.phone_display(), "001-555-0000");
    }

    #[test]
    fn last_name_is_first_token() {
        assert_eq!(Record::new(1, "SCHWARZ THOMAS").last_name(), "SCHWARZ");
        assert_eq!(Record::new(1, "YU").last_name(), "YU");
        assert_eq!(Record::new(1, "").last_name(), "");
    }
}
