//! Query workload generation for search experiments.
//!
//! The paper's false-positive experiments query "the 1000 last names" of
//! the sampled records (§7). Beyond that exact workload, benches need
//! substring queries with guaranteed hits and popularity-skewed query
//! streams; all are deterministic per seed.

use crate::record::Record;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// The paper's Table-4/5 workload: every record's last name, duplicates
/// preserved (repeated names repeat as queries, which is what makes the
/// short-name effect visible).
///
/// ```
/// use sdds_corpus::{workload, DirectoryGenerator};
///
/// let records = DirectoryGenerator::new(1).generate(50);
/// let queries = workload::last_name_queries(&records);
/// assert_eq!(queries.len(), records.len());
/// ```
pub fn last_name_queries(records: &[Record]) -> Vec<String> {
    records.iter().map(|r| r.last_name().to_string()).collect()
}

/// Random substrings of the records' contents, each of length
/// `min_len..=max_len` where the record allows — guaranteed true hits for
/// completeness and latency benches.
pub fn substring_queries(
    records: &[Record],
    count: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> Vec<String> {
    assert!(min_len >= 1 && max_len >= min_len, "bad length range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let eligible: Vec<&Record> = records.iter().filter(|r| r.rc.len() >= min_len).collect();
    assert!(!eligible.is_empty(), "no record long enough for the range");
    (0..count)
        .map(|_| {
            let r = eligible[rng.gen_range(0..eligible.len())];
            let len = rng.gen_range(min_len..=max_len.min(r.rc.len()));
            let start = rng.gen_range(0..=r.rc.len() - len);
            r.rc[start..start + len].to_string()
        })
        .collect()
}

/// A popularity-skewed query stream over the distinct last names: name
/// ranks follow a Zipf-like law with exponent `s` (s = 0 is uniform,
/// s = 1 classic Zipf) — models the hot-key skew real directory lookups
/// have.
pub fn zipf_name_queries(
    records: &[Record],
    count: usize,
    exponent: f64,
    seed: u64,
) -> Vec<String> {
    let mut by_freq: HashMap<&str, u64> = HashMap::new();
    for r in records {
        *by_freq.entry(r.last_name()).or_insert(0) += 1;
    }
    let mut names: Vec<(&str, u64)> = by_freq.into_iter().collect();
    // rank by corpus frequency, ties broken lexicographically
    names.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let weights: Vec<f64> = (1..=names.len())
        .map(|rank| 1.0 / (rank as f64).powf(exponent))
        .collect();
    let dist = WeightedIndex::new(&weights).expect("positive weights");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| names[dist.sample(&mut rng)].0.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DirectoryGenerator;

    fn records() -> Vec<Record> {
        DirectoryGenerator::new(77).generate(500)
    }

    #[test]
    fn last_names_preserve_duplicates() {
        let recs = records();
        let q = last_name_queries(&recs);
        assert_eq!(q.len(), recs.len());
        // a directory of 500 has repeated surnames
        let distinct: std::collections::HashSet<&String> = q.iter().collect();
        assert!(distinct.len() < q.len());
    }

    #[test]
    fn substrings_always_hit() {
        let recs = records();
        let qs = substring_queries(&recs, 100, 4, 8, 1);
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert!((4..=8).contains(&q.len()));
            assert!(
                recs.iter().any(|r| r.rc.contains(q.as_str())),
                "query {q:?} hits nothing"
            );
        }
    }

    #[test]
    fn substring_queries_deterministic_per_seed() {
        let recs = records();
        assert_eq!(
            substring_queries(&recs, 50, 4, 8, 9),
            substring_queries(&recs, 50, 4, 8, 9)
        );
        assert_ne!(
            substring_queries(&recs, 50, 4, 8, 9),
            substring_queries(&recs, 50, 4, 8, 10)
        );
    }

    #[test]
    fn zipf_skews_toward_popular_names() {
        let recs = records();
        let qs = zipf_name_queries(&recs, 2000, 1.2, 3);
        let mut counts: HashMap<&String, usize> = HashMap::new();
        for q in &qs {
            *counts.entry(q).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let distinct = counts.len();
        // hot head: the most popular query is much more frequent than the
        // uniform share
        assert!(max > 2000 / distinct * 3, "max {max}, distinct {distinct}");
        // uniform exponent spreads out
        let uq = zipf_name_queries(&recs, 2000, 0.0, 3);
        let mut ucounts: HashMap<&String, usize> = HashMap::new();
        for q in &uq {
            *ucounts.entry(q).or_insert(0) += 1;
        }
        let umax = ucounts.values().max().copied().unwrap();
        assert!(umax < max, "uniform should be flatter: {umax} vs {max}");
    }

    #[test]
    #[should_panic(expected = "bad length range")]
    fn bad_range_panics() {
        substring_queries(&records(), 1, 5, 4, 0);
    }
}
