//! Deterministic directory generation.

use crate::names::{GIVEN_NAMES, SURNAMES};
use crate::record::Record;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Multiplier for the RID permutation; odd and not divisible by 5, hence
/// coprime to 10^7, so `index -> (index * M) % 10^7` is a bijection and all
/// generated phone numbers are distinct.
const RID_MULTIPLIER: u64 = 7_654_321;
const RID_SPACE: u64 = 10_000_000;
/// All numbers live in the SF `415` area code like the paper's Figure 4.
const RID_BASE: u64 = 4_150_000_000;

/// A deterministic generator for SF-style phone directory records.
///
/// The paper's directory has entries like `AKIMOTO YOSHIMI … 415-409-0019`
/// (Figure 4): last name first, sometimes a bare initial, occasionally a
/// `& SPOUSE` co-subscriber, all capitals.
#[derive(Debug, Clone)]
pub struct DirectoryGenerator {
    seed: u64,
}

/// San Francisco street names for the address-extended corpus.
const STREETS: &[&str] = &[
    "MISSION ST",
    "MARKET ST",
    "FOLSOM ST",
    "HOWARD ST",
    "VALENCIA ST",
    "GEARY BLVD",
    "CALIFORNIA ST",
    "SACRAMENTO ST",
    "CLEMENT ST",
    "IRVING ST",
    "JUDAH ST",
    "NORIEGA ST",
    "TARAVAL ST",
    "OCEAN AVE",
    "SILVER AVE",
    "SAN BRUNO AVE",
    "POTRERO AVE",
    "DOLORES ST",
    "GUERRERO ST",
    "CASTRO ST",
    "DIVISADERO ST",
    "FILLMORE ST",
    "VAN NESS AVE",
    "POLK ST",
    "LARKIN ST",
    "HYDE ST",
    "LEAVENWORTH ST",
    "JONES ST",
    "TAYLOR ST",
    "MASON ST",
    "POWELL ST",
    "STOCKTON ST",
    "GRANT AVE",
    "KEARNY ST",
    "MONTGOMERY ST",
    "SANSOME ST",
    "BATTERY ST",
    "FRONT ST",
    "BALBOA ST",
    "CABRILLO ST",
    "FULTON ST",
    "HAIGHT ST",
    "PAGE ST",
    "OAK ST",
    "FELL ST",
    "HAYES ST",
    "GROVE ST",
    "EDDY ST",
    "TURK ST",
    "COLUMBUS AVE",
    "LOMBARD ST",
    "CHESTNUT ST",
    "UNION ST",
    "GREEN ST",
    "VALLEJO ST",
];

impl DirectoryGenerator {
    /// Creates a generator with the given seed; equal seeds give equal
    /// directories, record by record.
    pub fn new(seed: u64) -> DirectoryGenerator {
        DirectoryGenerator { seed }
    }

    /// Generates `n` records whose RC carries a street address after the
    /// name — the richer records the paper wanted but could not extract
    /// ("we were as yet not able to break the encoding to include address
    /// information", §7). Longer contents mean more chunks per index
    /// record and a richer chunk population for Stage 2 to equalise.
    pub fn generate_with_addresses(&self, n: usize) -> Vec<Record> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(0xADD2E55));
        self.generate(n)
            .into_iter()
            .map(|r| {
                let number = rng.gen_range(1..3000u32);
                let street = STREETS[rng.gen_range(0..STREETS.len())];
                Record::new(r.rid, format!("{} {number} {street}", r.rc))
            })
            .collect()
    }

    /// Generates `n` records with unique RIDs.
    pub fn generate(&self, n: usize) -> Vec<Record> {
        assert!(
            n as u64 <= RID_SPACE,
            "cannot generate more than {RID_SPACE} unique numbers"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let surname_dist =
            WeightedIndex::new(SURNAMES.iter().map(|&(_, w)| w)).expect("weights positive");
        let given_dist =
            WeightedIndex::new(GIVEN_NAMES.iter().map(|&(_, w)| w)).expect("weights positive");
        (0..n as u64)
            .map(|i| {
                let rid = RID_BASE + (i * RID_MULTIPLIER) % RID_SPACE;
                let rc = self.make_name(&mut rng, &surname_dist, &given_dist);
                Record::new(rid, rc)
            })
            .collect()
    }

    fn make_name(
        &self,
        rng: &mut ChaCha8Rng,
        surname_dist: &WeightedIndex<u32>,
        given_dist: &WeightedIndex<u32>,
    ) -> String {
        let last = SURNAMES[surname_dist.sample(rng)].0;
        let first = GIVEN_NAMES[given_dist.sample(rng)].0;
        // Name-shape mix modelled on the Figure 4 extract.
        match rng.gen_range(0..100u32) {
            // LAST FIRST
            0..=59 => format!("{last} {first}"),
            // LAST I   ("AFDAHL E")
            60..=71 => format!("{last} {}", (b'A' + rng.gen_range(0..26u8)) as char),
            // LAST FIRST M   ("ARMENANTE MARK A")
            72..=81 => format!("{last} {first} {}", (b'A' + rng.gen_range(0..26u8)) as char),
            // LAST FIRST & SPOUSE  ("ABOGADO ALEJANDRO & CATHERINE")
            82..=89 => {
                let spouse = GIVEN_NAMES[given_dist.sample(rng)].0;
                format!("{last} {first} & {spouse}")
            }
            // LAST FIRST SECOND  ("ARBELAEZ LIBIA MARIA")
            90..=94 => {
                let second = GIVEN_NAMES[given_dist.sample(rng)].0;
                format!("{last} {first} {second}")
            }
            // bare LAST
            _ => last.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let a = DirectoryGenerator::new(7).generate(500);
        let b = DirectoryGenerator::new(7).generate(500);
        let c = DirectoryGenerator::new(8).generate(500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rids_are_unique_and_in_area_415() {
        let recs = DirectoryGenerator::new(1).generate(10_000);
        let rids: HashSet<u64> = recs.iter().map(|r| r.rid).collect();
        assert_eq!(rids.len(), recs.len());
        assert!(recs.iter().all(|r| r.phone_display().starts_with("415-")));
    }

    #[test]
    fn names_use_directory_alphabet() {
        let recs = DirectoryGenerator::new(2).generate(5_000);
        for r in &recs {
            assert!(
                r.rc.bytes()
                    .all(|b| b.is_ascii_uppercase() || b == b' ' || b == b'&'),
                "unexpected byte in {:?}",
                r.rc
            );
            assert!(!r.rc.is_empty());
            assert!(!r.rc.starts_with(' ') && !r.rc.ends_with(' '));
        }
    }

    #[test]
    fn short_asian_surnames_are_heavily_present() {
        // The paper's false-positive analysis depends on these names being
        // common; verify they collectively exceed ~8% of records.
        let recs = DirectoryGenerator::new(3).generate(20_000);
        let shorts: HashSet<&str> = [
            "YU", "OU", "IP", "BA", "WU", "LI", "LE", "WOO", "KAY", "KIM", "LEE", "SEE", "MAI",
            "LIM", "MAK", "LEW",
        ]
        .into_iter()
        .collect();
        let hits = recs
            .iter()
            .filter(|r| shorts.contains(r.last_name()))
            .count();
        assert!(
            hits as f64 / recs.len() as f64 > 0.08,
            "short-surname rate too low: {hits} / {}",
            recs.len()
        );
    }

    #[test]
    fn letter_frequency_ranking_resembles_table_1() {
        // Top letters in the paper: A 11.1%, E 9.89%, N 8.55%, R, I, O.
        // Require A and E to rank in our top four letters (excluding space).
        let recs = DirectoryGenerator::new(4).generate(20_000);
        let mut counts = [0u64; 26];
        let mut total = 0u64;
        for r in &recs {
            for b in r.rc.bytes().filter(|b| b.is_ascii_uppercase()) {
                counts[(b - b'A') as usize] += 1;
                total += 1;
            }
        }
        let mut ranked: Vec<(usize, u64)> = counts.iter().copied().enumerate().collect();
        ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let top4: Vec<char> = ranked[..4]
            .iter()
            .map(|&(i, _)| (b'A' + i as u8) as char)
            .collect();
        assert!(top4.contains(&'A'), "top4={top4:?}");
        assert!(top4.contains(&'E') || top4.contains(&'N'), "top4={top4:?}");
        // A should be around 8-14% like the paper's 11.1%
        let a_freq = counts[0] as f64 / total as f64;
        assert!((0.06..0.16).contains(&a_freq), "A frequency {a_freq}");
    }

    #[test]
    fn addresses_extend_the_same_records() {
        let gen = DirectoryGenerator::new(7);
        let plain = gen.generate(200);
        let extended = gen.generate_with_addresses(200);
        assert_eq!(plain.len(), extended.len());
        for (p, e) in plain.iter().zip(extended.iter()) {
            assert_eq!(p.rid, e.rid);
            assert!(e.rc.starts_with(&p.rc), "{:?} !prefix of {:?}", p.rc, e.rc);
            assert!(e.rc.len() > p.rc.len() + 5, "address missing: {:?}", e.rc);
            assert!(e.rc.ends_with("ST") || e.rc.ends_with("AVE") || e.rc.ends_with("BLVD"));
        }
        // deterministic
        assert_eq!(extended, gen.generate_with_addresses(200));
    }

    #[test]
    fn generation_scales_to_paper_size() {
        // The paper's directory is 282,965 entries; make sure full-scale
        // generation is feasible (used by the table benches).
        let recs = DirectoryGenerator::new(5).generate(282_965);
        assert_eq!(recs.len(), 282_965);
    }
}
