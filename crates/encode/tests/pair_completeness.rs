//! Property test of the searchable-compression invariant: for ANY trained
//! compressor, ANY text and ANY true substring, the compressed search
//! finds the occurrence (completeness is structural, not probabilistic).

use proptest::prelude::*;
use sdds_encode::PairCompressor;

fn text_strategy(max_len: usize) -> impl Strategy<Value = Vec<u16>> {
    // small alphabet to provoke heavy pairing
    proptest::collection::vec(0u16..6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_true_substring_is_found(
        corpus in proptest::collection::vec(text_strategy(40), 1..8),
        text in text_strategy(60),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        max_pairs in 0usize..12,
    ) {
        let c = PairCompressor::train(
            corpus.iter().map(|v| v.as_slice()),
            6,
            max_pairs,
        );
        // pick a random true substring of the text
        let start = ((text.len() - 1) as f64 * start_frac) as usize;
        let maxlen = text.len() - start;
        let len = 1 + ((maxlen - 1) as f64 * len_frac) as usize;
        let query = &text[start..start + len];
        let compressed = c.compress(&text);
        prop_assert!(
            c.search(&compressed, query),
            "missed {:?} at {} in {:?} (compressed {:?}, pairs {:?})",
            query, start, text, compressed, c.num_pairs()
        );
    }

    #[test]
    fn decompress_inverts_compress(
        corpus in proptest::collection::vec(text_strategy(40), 1..6),
        text in text_strategy(80),
        max_pairs in 0usize..12,
    ) {
        let c = PairCompressor::train(corpus.iter().map(|v| v.as_slice()), 6, max_pairs);
        prop_assert_eq!(c.decompress(&c.compress(&text)), text);
    }

    #[test]
    fn compression_is_position_independent(
        corpus in proptest::collection::vec(text_strategy(40), 1..6),
        prefix in text_strategy(20),
        body in text_strategy(30),
        max_pairs in 0usize..12,
    ) {
        // the body's compressed image (modulo its edge symbols) appears in
        // the compression of prefix+body — i.e. search always succeeds
        let c = PairCompressor::train(corpus.iter().map(|v| v.as_slice()), 6, max_pairs);
        let mut text = prefix.clone();
        text.extend_from_slice(&body);
        prop_assert!(c.search(&c.compress(&text), &body));
    }
}
