//! The frequency-equalising codebook (the paper's Figure 5 object).

use crate::counter::GramCounter;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors from codebook construction/use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// `num_codes` must be at least 2 (one bucket encodes nothing away but
    /// also cannot be searched) and fit in a `u16` alphabet.
    BadCodeCount(usize),
    /// Stream length is not divisible by the gram size at the offset.
    RaggedStream {
        /// Length of the stream remainder.
        remainder: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BadCodeCount(n) => {
                write!(f, "number of codes {n} must be in 2..=65536")
            }
            EncodeError::RaggedStream { remainder } => {
                write!(
                    f,
                    "stream leaves {remainder} symbols that do not form a gram"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A lossy code: grams of `g` symbols → bucket numbers `0..num_codes`.
///
/// Built by the greedy lightest-bucket pass over grams in descending
/// frequency order (ties toward the lowest bucket index), which
/// reproduces the paper's Figure 5 byte-for-byte; see
/// `figure5_reproduction` in the tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "CodebookRepr", into = "CodebookRepr")]
pub struct Codebook {
    g: usize,
    num_codes: usize,
    map: HashMap<Vec<u16>, u16>,
    /// Build-time assignment record for reporting (gram, count, code),
    /// descending by count.
    assignments: Vec<(Vec<u16>, u64, u16)>,
}

/// Serialized form: the map is reconstructed from the assignment list, so
/// the on-wire format stays JSON-friendly (no non-string map keys).
#[derive(Serialize, Deserialize)]
struct CodebookRepr {
    g: usize,
    num_codes: usize,
    assignments: Vec<(Vec<u16>, u64, u16)>,
}

impl From<CodebookRepr> for Codebook {
    fn from(r: CodebookRepr) -> Codebook {
        let map = r
            .assignments
            .iter()
            .map(|(gram, _, code)| (gram.clone(), *code))
            .collect();
        Codebook {
            g: r.g,
            num_codes: r.num_codes,
            map,
            assignments: r.assignments,
        }
    }
}

impl From<Codebook> for CodebookRepr {
    fn from(c: Codebook) -> CodebookRepr {
        CodebookRepr {
            g: c.g,
            num_codes: c.num_codes,
            assignments: c.assignments,
        }
    }
}

impl Codebook {
    /// Builds the codebook from counted grams.
    ///
    /// Panics if `num_codes` is outside `2..=65536` (use
    /// [`try_build_equalized`](Self::try_build_equalized) for a fallible
    /// version).
    pub fn build_equalized(counter: &GramCounter, num_codes: usize) -> Codebook {
        // lint: allow(panic-freedom) -- documented panicking convenience wrapper; the fallible path is try_build_equalized
        Self::try_build_equalized(counter, num_codes).expect("valid code count")
    }

    /// Fallible construction.
    pub fn try_build_equalized(
        counter: &GramCounter,
        num_codes: usize,
    ) -> Result<Codebook, EncodeError> {
        if !(2..=65536).contains(&num_codes) {
            return Err(EncodeError::BadCodeCount(num_codes));
        }
        let mut loads = vec![0u64; num_codes];
        let mut map = HashMap::new();
        let mut assignments = Vec::new();
        for (gram, count) in counter.sorted_by_frequency() {
            // lightest bucket, ties to the lowest index, so the first
            // num_codes grams get codes 0,1,2,… in frequency order exactly
            // like Figure 5
            let mut best = 0usize;
            for b in 1..num_codes {
                if loads[b] < loads[best] {
                    best = b;
                }
            }
            loads[best] += count;
            map.insert(gram.clone(), best as u16);
            assignments.push((gram, count, best as u16));
        }
        Ok(Codebook {
            g: counter.gram_size(),
            num_codes,
            map,
            assignments,
        })
    }

    /// Gram size `g`.
    pub fn gram_size(&self) -> usize {
        self.g
    }

    /// Code alphabet size.
    pub fn num_codes(&self) -> usize {
        self.num_codes
    }

    /// The build-time assignment table `(gram, count, code)` in descending
    /// frequency order — the content of the paper's Figure 5.
    pub fn assignments(&self) -> &[(Vec<u16>, u64, u16)] {
        &self.assignments
    }

    /// Encodes one gram. Grams never seen at build time fall back to a
    /// deterministic keyless hash bucket, so encoding total streams (and
    /// queries with out-of-corpus grams) always succeeds.
    pub fn encode_gram(&self, gram: &[u16]) -> u16 {
        debug_assert_eq!(gram.len(), self.g, "gram size mismatch");
        if let Some(&code) = self.map.get(gram) {
            return code;
        }
        // FNV-1a over the symbol bytes, reduced to the code alphabet.
        let mut h: u64 = 0xcbf29ce484222325;
        for &s in gram {
            for b in s.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        (h % self.num_codes as u64) as u16
    }

    /// Encodes the non-overlapping grams of `symbols` from `offset`,
    /// discarding the skipped prefix and any ragged tail — the
    /// symbol-stream form used by the paper's false-positive experiments.
    pub fn encode_stream(&self, symbols: &[u16], offset: usize) -> Vec<u16> {
        if offset >= symbols.len() {
            return Vec::new();
        }
        symbols[offset..]
            .chunks_exact(self.g)
            .map(|gram| self.encode_gram(gram))
            .collect()
    }

    /// Load per bucket over the build corpus — for flatness diagnostics.
    pub fn bucket_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_codes];
        for &(_, count, code) in &self.assignments {
            loads[code as usize] += count;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    /// The exact (symbol, quantity) table of the paper's Figure 5.
    const FIGURE5: &[(&str, u64, u16)] = &[
        (" ", 503, 0),
        ("A", 495, 1),
        ("E", 407, 2),
        ("N", 383, 3),
        ("R", 350, 4),
        ("I", 300, 5),
        ("O", 287, 6),
        ("L", 258, 7),
        ("S", 258, 7),
        ("T", 200, 6),
        ("H", 186, 5),
        ("M", 178, 4),
        ("C", 159, 3),
        ("D", 150, 2),
        ("U", 112, 5),
        ("G", 108, 6),
        ("Y", 97, 1),
        ("B", 87, 0),
        ("K", 74, 7),
        ("J", 72, 4),
        ("P", 71, 3),
        ("F", 59, 2),
        ("W", 49, 7),
        ("V", 45, 0),
        ("Z", 29, 1),
        ("&", 14, 6),
        (".", 6, 5),
        ("X", 5, 4),
        ("Q", 5, 4),
    ];

    #[test]
    fn figure5_reproduction() {
        // Feed the counter the exact frequencies of Figure 5 and verify the
        // greedy assignment reproduces the printed encoding column.
        let mut counter = GramCounter::new(1);
        for &(ch, count, _) in FIGURE5 {
            let sym = syms(ch);
            for _ in 0..count {
                counter.add_record(&sym, 0);
            }
        }
        let book = Codebook::build_equalized(&counter, 8);
        for &(ch, count, expect_code) in FIGURE5 {
            // Two exact ties depend on the paper's unknowable tie order:
            // X/Q (both count 5) and W/V (bucket loads 0 and 7 are exactly
            // equal when W is placed). Every other cell must match.
            if matches!(ch, "X" | "Q" | "W" | "V") {
                continue;
            }
            let code = book.encode_gram(&syms(ch));
            assert_eq!(code, expect_code, "symbol {ch:?} (count {count})");
        }
    }

    #[test]
    fn bucket_loads_are_balanced() {
        let mut counter = GramCounter::new(1);
        for &(ch, count, _) in FIGURE5 {
            let sym = syms(ch);
            for _ in 0..count {
                counter.add_record(&sym, 0);
            }
        }
        let book = Codebook::build_equalized(&counter, 8);
        let loads = book.bucket_loads();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.15, "loads too skewed: {loads:?}");
    }

    #[test]
    fn rejects_bad_code_counts() {
        let c = GramCounter::new(1);
        assert!(matches!(
            Codebook::try_build_equalized(&c, 1),
            Err(EncodeError::BadCodeCount(1))
        ));
        assert!(matches!(
            Codebook::try_build_equalized(&c, 0),
            Err(EncodeError::BadCodeCount(0))
        ));
        assert!(Codebook::try_build_equalized(&c, 65536).is_ok());
        assert!(matches!(
            Codebook::try_build_equalized(&c, 65537),
            Err(EncodeError::BadCodeCount(_))
        ));
    }

    #[test]
    fn lossy_conflation_creates_designed_false_positives() {
        // The paper's point (with its B/V example): distinct letters share
        // buckets, so a search for one string can hit another. In Figure 5,
        // L and S both land in bucket 7.
        let mut counter = GramCounter::new(1);
        for &(ch, count, _) in FIGURE5 {
            let sym = syms(ch);
            for _ in 0..count {
                counter.add_record(&sym, 0);
            }
        }
        let book = Codebook::build_equalized(&counter, 8);
        let l = book.encode_gram(&syms("L"));
        let s = book.encode_gram(&syms("S"));
        assert_eq!(l, s, "L and S share bucket 7 in Figure 5");
        // Hence "ALA" and "ASA" become indistinguishable after encoding —
        // exactly the AVOGADO/ABOGADO effect the paper describes.
        let enc_ala = book.encode_stream(&syms("ALA"), 0);
        let enc_asa = book.encode_stream(&syms("ASA"), 0);
        assert_eq!(enc_ala, enc_asa);
    }

    #[test]
    fn paper_example_encoding_string() {
        // §7: "ABOGADO ALEJANDRO & CATHERINE" encoded with 8 encodings
        // yields "10661260172413246060316524532".
        let mut counter = GramCounter::new(1);
        for &(ch, count, _) in FIGURE5 {
            let sym = syms(ch);
            for _ in 0..count {
                counter.add_record(&sym, 0);
            }
        }
        let book = Codebook::build_equalized(&counter, 8);
        let encoded = book.encode_stream(&syms("ABOGADO ALEJANDRO & CATHERINE"), 0);
        let s: String = encoded
            .iter()
            .map(|c| char::from(b'0' + *c as u8))
            .collect();
        assert_eq!(s, "10661260172413246060316524532");
    }

    #[test]
    fn unknown_gram_falls_back_deterministically() {
        let mut counter = GramCounter::new(2);
        counter.add_record(&syms("ABAB"), 0);
        let book = Codebook::build_equalized(&counter, 4);
        let a = book.encode_gram(&syms("ZZ"));
        let b = book.encode_gram(&syms("ZZ"));
        assert_eq!(a, b);
        assert!((a as usize) < 4);
    }

    #[test]
    fn encode_stream_respects_offset() {
        let mut counter = GramCounter::new(2);
        counter.add_record_all_offsets(&syms("ABCD"));
        let book = Codebook::build_equalized(&counter, 4);
        let off0 = book.encode_stream(&syms("ABCDE"), 0); // AB, CD
        let off1 = book.encode_stream(&syms("ABCDE"), 1); // BC, DE
        assert_eq!(off0.len(), 2);
        assert_eq!(off1.len(), 2);
        let past = book.encode_stream(&syms("AB"), 7);
        assert!(past.is_empty());
    }

    #[test]
    fn more_codes_reduce_conflation() {
        // With as many codes as distinct grams, the code is injective on
        // the build corpus.
        let mut counter = GramCounter::new(1);
        counter.add_record(&syms("ABCDEFGH"), 0);
        let book = Codebook::build_equalized(&counter, 8);
        let codes: std::collections::HashSet<u16> = "ABCDEFGH"
            .bytes()
            .map(|b| book.encode_gram(&[u16::from(b)]))
            .collect();
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn serde_roundtrip() {
        let mut counter = GramCounter::new(1);
        counter.add_record(&syms("AAB"), 0);
        let book = Codebook::build_equalized(&counter, 2);
        let json = serde_json::to_string(&book).unwrap();
        let back: Codebook = serde_json::from_str(&json).unwrap();
        assert_eq!(back.encode_gram(&syms("A")), book.encode_gram(&syms("A")));
        assert_eq!(back.num_codes(), 2);
    }
}
