//! Searchable pair compression — the paper's §8 research direction,
//! implemented: "we are pursuing searchable compression as a main mean of
//! redundancy removal" (citing Manber's compression scheme that allows
//! searching the compressed file directly \[M97\]).
//!
//! The compressor replaces frequent symbol *pairs* by single codes, chosen
//! under a discipline that makes compression **context-free**: the set of
//! pair-starting symbols and the set of pair-ending symbols are disjoint.
//! Then a pair `(a, b)` compresses to its code at *every* adjacent
//! occurrence — no left context can steal `a` (it would have to end a pair,
//! but `a` starts pairs and the sets are disjoint) — so a substring's
//! compressed image inside a record equals the compression of the
//! substring itself, up to its two edge symbols. Searching the compressed
//! stream therefore needs at most four query variants (first symbol
//! possibly absorbed by a text pair on the left, last symbol on the
//! right), and completeness is exact, not probabilistic.
//!
//! Combined with the scheme, this is an alternative Stage 2: it removes
//! redundancy (pair frequencies are the redundancy) while keeping search,
//! and unlike the bucket codebook it is lossless — precision comes back
//! for free, at a weaker flattening of the frequency profile.

use crate::counter::GramCounter;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A searchable pair compressor over a base alphabet `0..base`.
///
/// Codes `0..base` are literals; codes `base..base+pairs.len()` stand for
/// symbol pairs.
///
/// ```
/// use sdds_encode::PairCompressor;
///
/// let text: Vec<u16> = "ANANAS BANANA".bytes().map(u16::from).collect();
/// let c = PairCompressor::train([text.as_slice()], 256, 8);
/// let compressed = c.compress(&text);
/// assert!(compressed.len() < text.len());
/// assert_eq!(c.decompress(&compressed), text);       // lossless
/// let query: Vec<u16> = "NANA".bytes().map(u16::from).collect();
/// assert!(c.search(&compressed, &query));            // searchable
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "PairRepr", into = "PairRepr")]
pub struct PairCompressor {
    base: usize,
    /// pair -> code
    pairs: HashMap<(u16, u16), u16>,
    /// code -> pair (decompression)
    codes: Vec<(u16, u16)>,
    starters: HashSet<u16>,
    enders: HashSet<u16>,
}

#[derive(Serialize, Deserialize)]
struct PairRepr {
    base: usize,
    codes: Vec<(u16, u16)>,
}

impl From<PairRepr> for PairCompressor {
    fn from(r: PairRepr) -> PairCompressor {
        let mut c = PairCompressor {
            base: r.base,
            pairs: HashMap::new(),
            codes: Vec::new(),
            starters: HashSet::new(),
            enders: HashSet::new(),
        };
        for &(a, b) in &r.codes {
            c.add_pair(a, b);
        }
        c
    }
}

impl From<PairCompressor> for PairRepr {
    fn from(c: PairCompressor) -> PairRepr {
        PairRepr {
            base: c.base,
            codes: c.codes,
        }
    }
}

impl PairCompressor {
    fn add_pair(&mut self, a: u16, b: u16) {
        let code = (self.base + self.codes.len()) as u16;
        self.pairs.insert((a, b), code);
        self.codes.push((a, b));
        self.starters.insert(a);
        self.enders.insert(b);
    }

    /// Trains on a sample: counts adjacent pairs and greedily admits the
    /// most frequent ones subject to the context-free discipline
    /// (starter and ender sets stay disjoint; a symbol never plays both
    /// roles). At most `max_pairs` codes are allocated.
    pub fn train<'a, I>(sample: I, base: usize, max_pairs: usize) -> PairCompressor
    where
        I: IntoIterator<Item = &'a [u16]>,
    {
        assert!(base >= 2, "base alphabet too small");
        let mut counter = GramCounter::new(2);
        for record in sample {
            // overlapping pair counts (offset 0 and 1)
            counter.add_record_all_offsets(record);
        }
        let mut comp = PairCompressor {
            base,
            pairs: HashMap::new(),
            codes: Vec::new(),
            starters: HashSet::new(),
            enders: HashSet::new(),
        };
        for (gram, _count) in counter.sorted_by_frequency() {
            if comp.codes.len() >= max_pairs {
                break;
            }
            let (a, b) = (gram[0], gram[1]);
            // discipline: a may only be (or become) a starter, b an ender
            if comp.enders.contains(&a) || comp.starters.contains(&b) || a == b {
                continue;
            }
            comp.add_pair(a, b);
        }
        comp
    }

    /// Number of pair codes in use.
    pub fn num_pairs(&self) -> usize {
        self.codes.len()
    }

    /// Total output alphabet (`base` literals + pair codes).
    pub fn alphabet(&self) -> usize {
        self.base + self.codes.len()
    }

    /// Compresses a symbol stream. Greedy left-to-right; by the
    /// context-free discipline the output is position-independent.
    pub fn compress(&self, symbols: &[u16]) -> Vec<u16> {
        let mut out = Vec::with_capacity(symbols.len());
        let mut i = 0;
        while i < symbols.len() {
            if i + 1 < symbols.len() {
                if let Some(&code) = self.pairs.get(&(symbols[i], symbols[i + 1])) {
                    out.push(code);
                    i += 2;
                    continue;
                }
            }
            out.push(symbols[i]);
            i += 1;
        }
        out
    }

    /// Decompresses (the code is lossless).
    pub fn decompress(&self, codes: &[u16]) -> Vec<u16> {
        let mut out = Vec::with_capacity(codes.len() * 2);
        for &c in codes {
            if (c as usize) < self.base {
                out.push(c);
            } else {
                let (a, b) = self.codes[c as usize - self.base];
                out.push(a);
                out.push(b);
            }
        }
        out
    }

    /// Pair codes whose second symbol is `s` (text may absorb a query's
    /// first symbol into one of these).
    fn codes_ending(&self, s: u16) -> Vec<u16> {
        self.codes
            .iter()
            .enumerate()
            .filter(|(_, &(_, b))| b == s)
            .map(|(i, _)| (self.base + i) as u16)
            .collect()
    }

    /// Pair codes whose first symbol is `s`.
    fn codes_starting(&self, s: u16) -> Vec<u16> {
        self.codes
            .iter()
            .enumerate()
            .filter(|(_, &(a, _))| a == s)
            .map(|(i, _)| (self.base + i) as u16)
            .collect()
    }

    /// The compressed query variants to search for. A text occurrence of
    /// `query` compresses exactly like `compress(query)` except at the two
    /// edges: the text may pair the query's first symbol with its left
    /// neighbour (only possible if it is an ender) or its last symbol with
    /// its right neighbour (only if a starter). For queries of three or
    /// more symbols, dropping the absorbed edge symbol leaves a non-empty
    /// core that still occurs verbatim; for one- and two-symbol queries the
    /// drop could empty the variant, so the absorbing pair codes are
    /// enumerated explicitly instead. Matching any variant as a
    /// consecutive code run implies a hit; completeness is exact.
    pub fn search_variants(&self, query: &[u16]) -> Vec<Vec<u16>> {
        let n = query.len();
        let mut variants: Vec<Vec<u16>> = Vec::new();
        variants.push(self.compress(query));
        if n == 1 {
            // the symbol may live inside any pair code containing it
            let s = query[0];
            for c in self
                .codes_ending(s)
                .into_iter()
                .chain(self.codes_starting(s))
            {
                variants.push(vec![c]);
            }
        } else {
            let absorb_first = self.enders.contains(&query[0]);
            let absorb_last = self.starters.contains(&query[n - 1]);
            if absorb_first {
                variants.push(self.compress(&query[1..]));
            }
            if absorb_last {
                variants.push(self.compress(&query[..n - 1]));
            }
            if absorb_first && absorb_last {
                if n > 2 {
                    variants.push(self.compress(&query[1..n - 1]));
                } else {
                    // both symbols absorbed into adjacent codes
                    for c1 in self.codes_ending(query[0]) {
                        for &c2 in &self.codes_starting(query[1]) {
                            variants.push(vec![c1, c2]);
                        }
                    }
                }
            }
        }
        variants.retain(|v| !v.is_empty());
        variants.sort_unstable();
        variants.dedup();
        variants
    }

    /// True if `query` occurs in the record whose compressed stream is
    /// `compressed` (complete: never misses; may over-report only when a
    /// dropped edge symbol differs — the lossy edge the paper accepts).
    pub fn search(&self, compressed: &[u16], query: &[u16]) -> bool {
        self.search_variants(query).iter().any(|v| {
            v.len() <= compressed.len() && compressed.windows(v.len()).any(|w| w == v.as_slice())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    fn trained() -> PairCompressor {
        let sample: Vec<Vec<u16>> = [
            "MARTINEZ JOSE",
            "MARTIN MARIA",
            "ANDERSON AN",
            "CHAN ANTONIO",
            "SANTANA ANA",
        ]
        .iter()
        .map(|s| syms(s))
        .collect();
        PairCompressor::train(sample.iter().map(|v| v.as_slice()), 256, 16)
    }

    #[test]
    fn discipline_keeps_sets_disjoint() {
        let c = trained();
        assert!(c.num_pairs() > 0);
        assert!(
            c.starters.is_disjoint(&c.enders),
            "context-free discipline violated"
        );
    }

    #[test]
    fn compression_roundtrips() {
        let c = trained();
        for text in ["MARTINEZ JOSE", "AN AN AN", "XYZ", ""] {
            let s = syms(text);
            assert_eq!(c.decompress(&c.compress(&s)), s, "{text}");
        }
    }

    #[test]
    fn compression_shrinks_redundant_text() {
        let c = trained();
        let s = syms("MARTINEZ MARTINEZ MARTINEZ");
        assert!(c.compress(&s).len() < s.len());
    }

    #[test]
    fn compression_is_context_free() {
        // the image of a substring inside a larger text equals its own
        // compression, up to edge symbols
        let c = trained();
        let text = syms("XXMARTINEZ JOSEXX");
        let sub = syms("MARTINEZ JOSE");
        let ctext = c.compress(&text);
        let csub = c.compress(&sub);
        assert!(
            ctext.windows(csub.len()).any(|w| w == csub.as_slice()) || c.search(&ctext, &sub),
            "substring image must appear"
        );
    }

    #[test]
    fn search_finds_all_true_occurrences() {
        let c = trained();
        let records = [
            "MARTINEZ JOSE",
            "SANTANA ANA MARIA",
            "NOTHING HERE",
            "XXANDERSON",
        ];
        for query in ["MARTINEZ", "ANA", "ANDERSON", "AN"] {
            for rec in records {
                let compressed = c.compress(&syms(rec));
                if rec.contains(query) {
                    assert!(
                        c.search(&compressed, &syms(query)),
                        "missed {query:?} in {rec:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn search_misses_are_honest_modulo_edges() {
        let c = trained();
        let compressed = c.compress(&syms("MARTINEZ JOSE"));
        assert!(!c.search(&compressed, &syms("QQQQ")));
        assert!(!c.search(&compressed, &syms("JOSEF")));
    }

    #[test]
    fn serde_roundtrip() {
        let c = trained();
        let json = serde_json::to_string(&c).unwrap();
        let back: PairCompressor = serde_json::from_str(&json).unwrap();
        let s = syms("MARTINEZ");
        assert_eq!(back.compress(&s), c.compress(&s));
        assert_eq!(back.alphabet(), c.alphabet());
    }

    #[test]
    fn empty_and_single_symbol_inputs() {
        let c = trained();
        assert!(c.compress(&[]).is_empty());
        assert_eq!(c.compress(&[65]), vec![65]);
        // a symbol inside no pair has exactly the literal variant…
        assert_eq!(c.search_variants(&[0xF0]).len(), 1);
        // …while one inside pairs also gets the absorbing pair codes
        assert!(!c.search_variants(&[65]).is_empty());
    }
}
