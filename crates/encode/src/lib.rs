//! Stage 2 of the ICDE'06 scheme: redundancy removal by lossy,
//! frequency-equalising compression.
//!
//! §3: "we preprocess the symbols by placing them into a smaller number of
//! buckets and encode them by bucket number. … we can preprocess a
//! representative part of the database and count the occurrence of each
//! chunk. We then place these characters into buckets, one for each encoded
//! symbol, in order of frequency of occurrence."
//!
//! [`GramCounter`] counts fixed-size grams; [`Codebook::build_equalized`]
//! performs the greedy lightest-bucket assignment (which reproduces the
//! paper's Figure 5 exactly — see the tests); encoding a stream maps each
//! gram to its bucket number, deliberately conflating grams (that is the
//! *lossy* part that flattens frequencies and creates false positives).
//!
//! ```
//! use sdds_encode::{Codebook, GramCounter};
//!
//! let mut counter = GramCounter::new(1);
//! counter.add_record(&"AABAC".bytes().map(u16::from).collect::<Vec<_>>(), 0);
//! let book = Codebook::build_equalized(&counter, 2);
//! // 'A' (most frequent) gets code 0; B and C share the other bucket.
//! let code_a = book.encode_gram(&[u16::from(b'A')]);
//! let code_b = book.encode_gram(&[u16::from(b'B')]);
//! let code_c = book.encode_gram(&[u16::from(b'C')]);
//! assert_ne!(code_a, code_b);
//! assert_eq!(code_b, code_c); // lossy conflation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codebook;
mod counter;
pub mod pairs;

pub use codebook::{Codebook, EncodeError};
pub use counter::GramCounter;
pub use pairs::PairCompressor;
