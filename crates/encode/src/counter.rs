//! Counting fixed-size grams over record streams.

use std::collections::HashMap;

/// Counts non-overlapping grams of a fixed size `g` taken from records at a
/// given offset. Partial grams at record boundaries are discarded, exactly
/// as the paper's experiments do ("in the first chunking, we deleted the
/// last, incomplete chunk, in the second one, we deleted the first
/// incomplete chunk", §7).
#[derive(Debug, Clone)]
pub struct GramCounter {
    g: usize,
    counts: HashMap<Vec<u16>, u64>,
    total: u64,
}

impl GramCounter {
    /// Creates a counter for grams of `g` symbols. Panics if `g == 0`.
    pub fn new(g: usize) -> GramCounter {
        assert!(g > 0, "gram size must be positive");
        GramCounter {
            g,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Gram size.
    pub fn gram_size(&self) -> usize {
        self.g
    }

    /// Counts the non-overlapping grams of `symbols` starting at `offset`
    /// (symbols before the offset and any ragged tail are skipped).
    pub fn add_record(&mut self, symbols: &[u16], offset: usize) {
        if offset >= symbols.len() {
            return;
        }
        for gram in symbols[offset..].chunks_exact(self.g) {
            *self.counts.entry(gram.to_vec()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Counts grams at every offset in `0..g` — "we then collect all these
    /// chunks" across chunkings (§7, Table 5 experiment).
    pub fn add_record_all_offsets(&mut self, symbols: &[u16]) {
        for offset in 0..self.g {
            self.add_record(symbols, offset);
        }
    }

    /// Total grams counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of one gram.
    pub fn count(&self, gram: &[u16]) -> u64 {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Grams sorted by descending count; ties broken by gram value so the
    /// build is deterministic.
    pub fn sorted_by_frequency(&self) -> Vec<(Vec<u16>, u64)> {
        let mut items: Vec<(Vec<u16>, u64)> =
            self.counts.iter().map(|(g, &c)| (g.clone(), c)).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    #[test]
    fn counts_single_symbols() {
        let mut c = GramCounter::new(1);
        c.add_record(&syms("AABA"), 0);
        assert_eq!(c.count(&syms("A")), 3);
        assert_eq!(c.count(&syms("B")), 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn offset_skips_prefix_and_ragged_tail() {
        let mut c = GramCounter::new(2);
        c.add_record(&syms("ABCDE"), 1);
        // grams: BC, DE (A skipped, no tail)
        assert_eq!(c.count(&syms("BC")), 1);
        assert_eq!(c.count(&syms("DE")), 1);
        assert_eq!(c.count(&syms("AB")), 0);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn tail_discarded() {
        let mut c = GramCounter::new(2);
        c.add_record(&syms("ABC"), 0);
        assert_eq!(c.count(&syms("AB")), 1);
        assert_eq!(c.total(), 1, "partial gram C dropped");
    }

    #[test]
    fn all_offsets_matches_paper_table5_example() {
        // "ABOGADO…" creates chunks [AB],[OG],… and [BO],[GA],…
        let mut c = GramCounter::new(2);
        c.add_record_all_offsets(&syms("ABOG"));
        assert_eq!(c.count(&syms("AB")), 1);
        assert_eq!(c.count(&syms("OG")), 1);
        assert_eq!(c.count(&syms("BO")), 1);
        assert_eq!(c.total(), 3); // AB, OG, BO (GA ragged in offset-1)
    }

    #[test]
    fn offset_beyond_record_is_noop() {
        let mut c = GramCounter::new(2);
        c.add_record(&syms("AB"), 5);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn sorted_by_frequency_is_deterministic() {
        let mut c = GramCounter::new(1);
        c.add_record(&syms("BBAACD"), 0);
        let sorted = c.sorted_by_frequency();
        // A and B tie at 2 → lexicographic; C and D tie at 1 → lexicographic
        assert_eq!(sorted[0].0, syms("A"));
        assert_eq!(sorted[1].0, syms("B"));
        assert_eq!(sorted[2].0, syms("C"));
        assert_eq!(sorted[3].0, syms("D"));
    }
}
