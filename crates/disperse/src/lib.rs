//! Stage 3 of the ICDE'06 scheme: dispersion of index records over `k`
//! sites.
//!
//! §4: a chunk of `c` bits is viewed as a row vector
//! `c = (c_1, …, c_k)` over `Φ = GF(2^g)` with `g = c/k`; the scheme
//! computes `d = c · E` for an invertible k×k matrix **E** and stores
//! component `d_i` at dispersion site `i`. Each share then depends on the
//! *whole* chunk ("this makes a frequency analysis on the contents of one
//! of the dispersion sites more difficult"), yet equality of chunks is
//! preserved share-wise, so sites can match search chunks locally: all `k`
//! sites must report the same position for a hit, and any single site only
//! holds `1/k` of the information.
//!
//! ```
//! use sdds_disperse::{DispersalConfig, Disperser};
//!
//! // the paper's Table-2 setup: 8-bit chunks dispersed 1:4 into 2-bit shares
//! let cfg = DispersalConfig::new(8, 4).unwrap();
//! let disperser = Disperser::from_seed(cfg, 42);
//! let shares = disperser.disperse(0xAB);
//! assert_eq!(shares.len(), 4);
//! assert_eq!(disperser.reassemble(&shares).unwrap(), 0xAB);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdds_gf::{Field, Matrix, RowTables};
use std::fmt;

/// Maximum dispersion degree: `k · g = chunk_bits ≤ 128` with `g ≥ 1`
/// bounds `k` at 128, so per-chunk component vectors fit on the stack.
const MAX_K: usize = 128;

/// Errors from dispersal configuration and reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisperseError {
    /// `k` must divide the chunk bit width.
    KDoesNotDivide {
        /// Chunk width in bits.
        chunk_bits: usize,
        /// Requested number of dispersion sites.
        k: usize,
    },
    /// The per-share width `g = chunk_bits / k` must be `1..=16`.
    BadShareWidth(usize),
    /// Wrong number of shares passed to reassembly.
    ShareCount {
        /// Shares expected (`k`).
        expected: usize,
        /// Shares supplied.
        got: usize,
    },
}

impl fmt::Display for DisperseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisperseError::KDoesNotDivide { chunk_bits, k } => {
                write!(f, "k = {k} must divide the chunk width {chunk_bits} bits")
            }
            DisperseError::BadShareWidth(g) => {
                write!(f, "share width g = {g} outside supported 1..=16 bits")
            }
            DisperseError::ShareCount { expected, got } => {
                write!(f, "expected {expected} shares, got {got}")
            }
        }
    }
}

impl std::error::Error for DisperseError {}

/// Validated dispersal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispersalConfig {
    chunk_bits: usize,
    k: usize,
}

impl DispersalConfig {
    /// Creates a config for `chunk_bits`-bit chunks over `k` sites.
    ///
    /// The paper: "A good value for k needs to divide the chunk size in
    /// bits and be small enough to limit the number of false hits … a good
    /// value for k would be 2 or 4."
    pub fn new(chunk_bits: usize, k: usize) -> Result<DispersalConfig, DisperseError> {
        if k == 0 || chunk_bits == 0 || !chunk_bits.is_multiple_of(k) {
            return Err(DisperseError::KDoesNotDivide { chunk_bits, k });
        }
        let g = chunk_bits / k;
        if !(1..=16).contains(&g) {
            return Err(DisperseError::BadShareWidth(g));
        }
        if chunk_bits > 128 {
            return Err(DisperseError::BadShareWidth(g));
        }
        Ok(DispersalConfig { chunk_bits, k })
    }

    /// Chunk width in bits.
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Number of dispersion sites.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-share width `g` in bits.
    pub fn share_bits(&self) -> usize {
        self.chunk_bits / self.k
    }
}

/// The dispersion transform: splits chunks into GF(2^g) vectors, multiplies
/// by **E**, and hands out per-site shares.
#[derive(Clone)]
pub struct Disperser {
    config: DispersalConfig,
    field: Field,
    matrix: Matrix,
    /// Per-row scalar tables of **E** — the forward hot path does one
    /// 2^g-entry lookup per matrix row instead of log/antilog arithmetic.
    tables: RowTables,
    /// Same for **E**⁻¹ (reassembly).
    inv_tables: RowTables,
}

impl fmt::Debug for Disperser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Disperser")
            .field("config", &self.config)
            .finish()
    }
}

impl Disperser {
    /// Builds a disperser with a seed-derived random non-singular matrix
    /// with all coefficients non-zero (the paper's "good **E**"). The seed
    /// comes from the key hierarchy, so storage nodes cannot reconstruct
    /// the dispersion scheme.
    ///
    /// Exception: over GF(2) (1-bit shares) an all-non-zero matrix is the
    /// all-ones matrix, singular for `k >= 2`, so there the requirement is
    /// dropped — the paper's "good E" heuristic simply has no solution in
    /// that degenerate field.
    pub fn from_seed(config: DispersalConfig, seed: u64) -> Disperser {
        // lint: allow(panic-freedom) -- DispersalConfig::new already constrains share_bits to Field's 1..=16 range
        let field = Field::new(config.share_bits() as u32).expect("validated width");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let require_all_nonzero = field.order() > 2 || config.k() == 1;
        let matrix = Matrix::random_nonsingular(&field, config.k(), require_all_nonzero, &mut rng);
        let inverse = matrix
            .clone()
            .inverse(&field)
            // lint: allow(panic-freedom) -- random_nonsingular only returns invertible matrices
            .expect("non-singular by construction");
        let tables = matrix.row_tables(&field);
        let inv_tables = inverse.row_tables(&field);
        Disperser {
            config,
            field,
            matrix,
            tables,
            inv_tables,
        }
    }

    /// Builds a disperser from an explicit matrix (must be k×k and
    /// invertible over GF(2^g)).
    pub fn from_matrix(
        config: DispersalConfig,
        matrix: Matrix,
    ) -> Result<Disperser, DisperseError> {
        // lint: allow(panic-freedom) -- DispersalConfig::new already constrains share_bits to Field's 1..=16 range
        let field = Field::new(config.share_bits() as u32).expect("validated width");
        if matrix.rows() != config.k() || matrix.cols() != config.k() {
            return Err(DisperseError::ShareCount {
                expected: config.k(),
                got: matrix.rows(),
            });
        }
        let inverse = matrix
            .clone()
            .inverse(&field)
            .map_err(|_| DisperseError::ShareCount {
                expected: config.k(),
                got: config.k(),
            })?;
        let tables = matrix.row_tables(&field);
        let inv_tables = inverse.row_tables(&field);
        Ok(Disperser {
            config,
            field,
            matrix,
            tables,
            inv_tables,
        })
    }

    /// The configuration.
    pub fn config(&self) -> DispersalConfig {
        self.config
    }

    /// The field GF(2^g) the shares live in.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// The dispersion matrix **E**.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Splits a chunk value into its `k` g-bit components, writing them
    /// into `out[..k]`, most significant component first. No allocation.
    ///
    /// # Panics
    ///
    /// If `out` is shorter than `k`.
    pub fn split_into(&self, chunk: u128, out: &mut [u16]) {
        let g = self.config.share_bits();
        let k = self.config.k();
        let mask = if g == 128 {
            u128::MAX
        } else {
            (1u128 << g) - 1
        };
        for (i, slot) in out[..k].iter_mut().enumerate() {
            *slot = ((chunk >> ((k - 1 - i) * g)) & mask) as u16;
        }
    }

    /// Splits a chunk value into its `k` g-bit components `(c_1, …, c_k)`,
    /// most significant component first.
    pub fn split(&self, chunk: u128) -> Vec<u16> {
        let mut out = vec![0u16; self.config.k()];
        self.split_into(chunk, &mut out);
        out
    }

    /// Packs components back into a chunk value.
    pub fn pack(&self, components: &[u16]) -> u128 {
        let g = self.config.share_bits();
        components
            .iter()
            .fold(0u128, |acc, &c| (acc << g) | u128::from(c))
    }

    /// Computes the `k` shares `d = c · E` of a chunk into `out[..k]`.
    ///
    /// This is the allocation-free hot path: the component vector lives on
    /// the stack and each matrix row contributes one precomputed-table
    /// lookup plus a contiguous XOR (see [`RowTables`]).
    ///
    /// # Panics
    ///
    /// If `out` is shorter than `k`.
    pub fn disperse_into(&self, chunk: u128, out: &mut [u16]) {
        debug_assert!(
            self.config.chunk_bits() == 128 || chunk < (1u128 << self.config.chunk_bits()),
            "chunk wider than configured"
        );
        let k = self.config.k();
        let mut components = [0u16; MAX_K];
        self.split_into(chunk, &mut components);
        self.tables
            .vec_mul_into(&components[..k], &mut out[..k])
            // lint: allow(panic-freedom) -- both slices are length k, matching the k×k row tables by construction
            .expect("dimension checked");
    }

    /// Computes the `k` shares `d = c · E` of a chunk.
    pub fn disperse(&self, chunk: u128) -> Vec<u16> {
        let mut out = vec![0u16; self.config.k()];
        self.disperse_into(chunk, &mut out);
        out
    }

    /// Inverts [`disperse`](Self::disperse): recovers the chunk from all
    /// `k` shares.
    pub fn reassemble(&self, shares: &[u16]) -> Result<u128, DisperseError> {
        let k = self.config.k();
        if shares.len() != k {
            return Err(DisperseError::ShareCount {
                expected: k,
                got: shares.len(),
            });
        }
        let mut components = [0u16; MAX_K];
        self.inv_tables
            .vec_mul_into(shares, &mut components[..k])
            // lint: allow(panic-freedom) -- shares.len() == k was checked above, matching the k×k inverse tables
            .expect("dimension checked");
        Ok(self.pack(&components[..k]))
    }

    /// Disperses every chunk of an index record into a flat site-major
    /// plane buffer: after the call `planes[site * chunks.len() + m]` is
    /// site `site`'s share of chunk `m`. The buffer is resized (never
    /// shrunk below capacity), so a caller looping over records reuses one
    /// allocation for the whole batch.
    pub fn disperse_record_into(&self, chunks: &[u128], planes: &mut Vec<u16>) {
        let k = self.config.k();
        let n = chunks.len();
        planes.clear();
        planes.resize(k * n, 0);
        let mut shares = [0u16; MAX_K];
        for (m, &chunk) in chunks.iter().enumerate() {
            self.disperse_into(chunk, &mut shares);
            for (site, &share) in shares[..k].iter().enumerate() {
                planes[site * n + m] = share;
            }
        }
    }

    /// Disperses every chunk of an index record, returning one share
    /// stream per dispersion site: output `[i][m]` is site `i`'s share of
    /// chunk `m`. Sites match their share streams positionally; a hit is
    /// claimed only where **all** sites match (§4).
    pub fn disperse_record(&self, chunks: &[u128]) -> Vec<Vec<u16>> {
        let mut planes = Vec::new();
        self.disperse_record_into(chunks, &mut planes);
        let n = chunks.len();
        (0..self.config.k())
            .map(|site| planes[site * n..(site + 1) * n].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_disperser() -> Disperser {
        Disperser::from_seed(DispersalConfig::new(8, 4).unwrap(), 7)
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            DispersalConfig::new(8, 3),
            Err(DisperseError::KDoesNotDivide { .. })
        ));
        assert!(matches!(
            DispersalConfig::new(8, 0),
            Err(DisperseError::KDoesNotDivide { .. })
        ));
        assert!(matches!(
            DispersalConfig::new(0, 1),
            Err(DisperseError::KDoesNotDivide { .. })
        ));
        // g = 32 unsupported
        assert!(matches!(
            DispersalConfig::new(64, 2),
            Err(DisperseError::BadShareWidth(32))
        ));
        let cfg = DispersalConfig::new(48, 4).unwrap(); // paper's s=6 chunks
        assert_eq!(cfg.share_bits(), 12);
    }

    #[test]
    fn split_pack_roundtrip() {
        let d = table2_disperser();
        for v in 0..=255u128 {
            assert_eq!(d.pack(&d.split(v)), v);
        }
        assert_eq!(d.split(0b10_01_11_00), vec![0b10, 0b01, 0b11, 0b00]);
    }

    #[test]
    fn disperse_reassemble_roundtrip_all_bytes() {
        let d = table2_disperser();
        for v in 0..=255u128 {
            let shares = d.disperse(v);
            assert_eq!(shares.len(), 4);
            assert!(shares.iter().all(|&s| s < 4), "2-bit shares");
            assert_eq!(d.reassemble(&shares).unwrap(), v);
        }
    }

    #[test]
    fn dispersion_is_injective_per_full_share_vector() {
        // equality of all k shares ⇔ equality of chunks (E invertible)
        let d = table2_disperser();
        let mut seen = std::collections::HashSet::new();
        for v in 0..=255u128 {
            assert!(seen.insert(d.disperse(v)), "collision at {v}");
        }
    }

    #[test]
    fn single_share_is_lossy() {
        // any one site conflates many chunks: 256 chunks into 4 share values
        let d = table2_disperser();
        for site in 0..4 {
            let mut values = std::collections::HashSet::new();
            for v in 0..=255u128 {
                values.insert(d.disperse(v)[site]);
            }
            assert!(values.len() <= 4, "site {site} leaks more than g bits");
        }
    }

    #[test]
    fn share_depends_on_whole_chunk() {
        // the paper's rationale for using E dense: changing ANY component
        // of the chunk changes every share with high probability
        let d = table2_disperser();
        let base = d.disperse(0b00_00_00_11);
        let flipped_high = d.disperse(0b01_00_00_11); // change top component
                                                      // all-nonzero E ⇒ every share sees top-component changes
        for site in 0..4 {
            assert_ne!(base[site], flipped_high[site], "site {site} blind to c_1");
        }
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let cfg = DispersalConfig::new(16, 2).unwrap();
        let a = Disperser::from_seed(cfg, 99);
        let b = Disperser::from_seed(cfg, 99);
        let c = Disperser::from_seed(cfg, 100);
        for v in [0u128, 1, 0xFFFF, 0xABCD] {
            assert_eq!(a.disperse(v), b.disperse(v));
        }
        assert!((0..100u128).any(|v| a.disperse(v) != c.disperse(v)));
    }

    #[test]
    fn reassemble_rejects_wrong_share_count() {
        let d = table2_disperser();
        assert!(matches!(
            d.reassemble(&[1, 2]),
            Err(DisperseError::ShareCount {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn disperse_record_is_positional() {
        let d = table2_disperser();
        let chunks = vec![10u128, 20, 30];
        let per_site = d.disperse_record(&chunks);
        assert_eq!(per_site.len(), 4);
        for (site, streams) in per_site.iter().enumerate() {
            assert_eq!(streams.len(), 3);
            for (m, &share) in streams.iter().enumerate() {
                assert_eq!(share, d.disperse(chunks[m])[site]);
            }
        }
    }

    #[test]
    fn from_matrix_rejects_singular() {
        let cfg = DispersalConfig::new(8, 2).unwrap();
        let singular = Matrix::from_rows(2, 2, vec![1, 2, 1, 2]);
        assert!(Disperser::from_matrix(cfg, singular).is_err());
        let id = Matrix::from_rows(2, 2, vec![1, 0, 0, 1]);
        let d = Disperser::from_matrix(cfg, id).unwrap();
        // identity matrix: shares are the raw components
        assert_eq!(d.disperse(0xAB), vec![0xA, 0xB]);
    }

    #[test]
    fn disperse_record_into_is_site_major_flat() {
        let d = table2_disperser();
        let chunks = vec![10u128, 20, 30, 200];
        let mut planes = Vec::new();
        d.disperse_record_into(&chunks, &mut planes);
        assert_eq!(planes.len(), 4 * chunks.len());
        let per_site = d.disperse_record(&chunks);
        for site in 0..4 {
            for (m, &chunk) in chunks.iter().enumerate() {
                assert_eq!(planes[site * chunks.len() + m], d.disperse(chunk)[site]);
                assert_eq!(planes[site * chunks.len() + m], per_site[site][m]);
            }
        }
    }

    #[test]
    fn disperse_record_into_reuses_buffer() {
        let d = table2_disperser();
        let mut planes = Vec::new();
        d.disperse_record_into(&[1, 2, 3, 4, 5], &mut planes);
        let cap = planes.capacity();
        d.disperse_record_into(&[9, 8], &mut planes);
        assert_eq!(planes.len(), 4 * 2);
        assert!(planes.capacity() >= cap, "buffer must not shrink");
    }

    #[test]
    fn disperse_record_empty_keeps_k_streams() {
        let d = table2_disperser();
        let per_site = d.disperse_record(&[]);
        assert_eq!(per_site.len(), 4);
        assert!(per_site.iter().all(Vec::is_empty));
    }

    #[test]
    fn table_path_matches_direct_matrix_multiplication() {
        // the RowTables fast path must agree with E · c computed the
        // slow way, across share widths
        for (bits, k, seed) in [(8usize, 4usize, 7u64), (16, 2, 3), (48, 3, 11), (12, 4, 1)] {
            let cfg = DispersalConfig::new(bits, k).unwrap();
            let d = Disperser::from_seed(cfg, seed);
            for v in (0..200u128).map(|i| i * 31 % (1 << bits.min(100))) {
                let expected = d
                    .matrix
                    .vec_mul(&d.field, &d.split(v))
                    .expect("dimension checked");
                assert_eq!(d.disperse(v), expected, "bits={bits} k={k} v={v}");
                assert_eq!(d.reassemble(&expected).unwrap(), v);
            }
        }
    }

    #[test]
    fn wide_chunk_48_bits() {
        // the conclusion's recommendation: 6 ASCII chars dispersed over 3
        let cfg = DispersalConfig::new(48, 3).unwrap();
        let d = Disperser::from_seed(cfg, 5);
        let v = 0x0000_A1B2_C3D4u128;
        assert_eq!(d.reassemble(&d.disperse(v)).unwrap(), v);
    }
}
