//! Parameter sweep over every (chunk width, k) the scheme can configure:
//! dispersal must round-trip, preserve equality share-wise, and leak at
//! most `g` bits per site.

use proptest::prelude::*;
use sdds_disperse::{DispersalConfig, Disperser};

/// All valid (chunk_bits, k) pairs with share width 1..=16.
fn valid_configs() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for chunk_bits in 1..=128usize {
        for k in 1..=8usize {
            if chunk_bits % k == 0 && (1..=16).contains(&(chunk_bits / k)) {
                v.push((chunk_bits, k));
            }
        }
    }
    v
}

#[test]
fn every_valid_config_constructs_and_roundtrips() {
    for (chunk_bits, k) in valid_configs() {
        let cfg = DispersalConfig::new(chunk_bits, k).unwrap();
        let d = Disperser::from_seed(cfg, 42);
        let mask = if chunk_bits == 128 {
            u128::MAX
        } else {
            (1u128 << chunk_bits) - 1
        };
        for i in 0..40u128 {
            let v = i.wrapping_mul(0x9E3779B97F4A7C15) & mask;
            let shares = d.disperse(v);
            assert_eq!(shares.len(), k, "({chunk_bits},{k})");
            let g = cfg.share_bits();
            assert!(
                shares.iter().all(|&s| (s as u32) < (1u32 << g)),
                "share out of range ({chunk_bits},{k})"
            );
            assert_eq!(d.reassemble(&shares).unwrap(), v, "({chunk_bits},{k})");
        }
    }
}

proptest! {
    #[test]
    fn equality_preserved_sharewise(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        // sites match shares positionally: equal chunks must give equal
        // shares at every site, unequal chunks must differ at some site
        let cfg = DispersalConfig::new(48, 4).unwrap();
        let d = Disperser::from_seed(cfg, seed);
        let m = (1u128 << 48) - 1;
        let (a, b) = (u128::from(a) & m, u128::from(b) & m);
        let sa = d.disperse(a);
        let sb = d.disperse(b);
        if a == b {
            prop_assert_eq!(sa, sb);
        } else {
            prop_assert_ne!(sa, sb, "E is invertible: full share vectors must differ");
        }
    }

    #[test]
    fn single_site_view_is_g_bits(seed in any::<u64>()) {
        // any single site's share takes at most 2^g distinct values over
        // the whole chunk space — the "1/k of the information" bound
        let cfg = DispersalConfig::new(12, 3).unwrap(); // 4-bit shares
        let d = Disperser::from_seed(cfg, seed);
        for site in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for v in 0..(1u128 << 12) {
                seen.insert(d.disperse(v)[site]);
            }
            prop_assert!(seen.len() <= 16, "site {} leaked {} values", site, seen.len());
        }
    }
}
