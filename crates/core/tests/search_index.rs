//! Posting-index consistency at the store level: searches over an
//! index-enabled store must be byte-identical to the linear-scan oracle
//! (the same store built with `scan_index(false)`), through splits,
//! merges, overwrites and deletes, for every search API.

use proptest::prelude::*;
use sdds_core::{EncryptedSearchStore, IngestOptions, SchemeConfig, SearchOutcome};
use sdds_corpus::DirectoryGenerator;

fn directory(n: usize) -> Vec<sdds_corpus::Record> {
    DirectoryGenerator::new(2024).generate(n)
}

/// Two stores over the same configuration and key material: one answering
/// scans from the per-bucket posting index, one sweeping linearly.
fn store_pair(capacity: usize) -> (EncryptedSearchStore, EncryptedSearchStore) {
    let indexed = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("oracle")
        .bucket_capacity(capacity)
        .scan_index(true)
        .start();
    let linear = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("oracle")
        .bucket_capacity(capacity)
        .scan_index(false)
        .start();
    (indexed, linear)
}

/// Every observable piece of a search answer must agree.
fn assert_same_outcome(a: &SearchOutcome, b: &SearchOutcome, pattern: &str) {
    assert_eq!(a.rids, b.rids, "rids differ for {pattern:?}");
    assert_eq!(
        a.candidate_rids, b.candidate_rids,
        "candidates differ for {pattern:?}"
    );
    assert_eq!(
        a.matched_index_records, b.matched_index_records,
        "matched index records differ for {pattern:?}"
    );
    assert_eq!(a.positions, b.positions, "positions differ for {pattern:?}");
}

fn assert_searches_agree(
    indexed: &EncryptedSearchStore,
    linear: &EncryptedSearchStore,
    patterns: &[&str],
) {
    for pattern in patterns {
        let a = indexed.search_detailed(pattern).unwrap();
        let b = linear.search_detailed(pattern).unwrap();
        assert_same_outcome(&a, &b, pattern);
    }
}

#[test]
fn indexed_search_equals_linear_oracle_through_splits() {
    let probes0 = sdds_obs::counter("lh.scan_index_probes").get();
    let candidates0 = sdds_obs::counter("lh.scan_index_candidates").get();
    let (indexed, linear) = store_pair(16);
    let records = directory(150);
    for r in &records {
        indexed.insert(r.rid, &r.rc).unwrap();
        linear.insert(r.rid, &r.rc).unwrap();
    }
    assert!(
        indexed.cluster().num_buckets() > 4,
        "the load must force splits"
    );
    let patterns = ["SCHWARZ", "MART", "SMITH", "6993", "ZZZZNOBODY"];
    assert_searches_agree(&indexed, &linear, &patterns);
    assert!(
        sdds_obs::counter("lh.scan_index_probes").get() > probes0,
        "indexed searches must probe the posting index"
    );
    assert!(
        sdds_obs::counter("lh.scan_index_candidates").get() > candidates0,
        "probes must surface candidates"
    );
    indexed.shutdown();
    linear.shutdown();
}

#[test]
fn delete_and_overwrite_leave_no_stale_postings() {
    let (indexed, linear) = store_pair(16);
    let records = directory(120);
    for r in &records {
        indexed.insert(r.rid, &r.rc).unwrap();
        linear.insert(r.rid, &r.rc).unwrap();
    }
    // overwrite a third of the records with different content
    for r in records.iter().filter(|r| r.rid % 3 == 0) {
        let rc = format!("OVERWRITTEN PERSON {}", r.rid);
        indexed.insert(r.rid, &rc).unwrap();
        linear.insert(r.rid, &rc).unwrap();
    }
    // delete another third (forces merges at this capacity)
    let doomed: Vec<u64> = records
        .iter()
        .map(|r| r.rid)
        .filter(|rid| rid % 3 == 1)
        .collect();
    for &rid in &doomed {
        assert!(indexed.delete(rid).unwrap());
    }
    assert_eq!(
        linear.delete_many(doomed.iter().copied()).unwrap(),
        doomed.len() as u64
    );
    let patterns = ["OVERWRITTEN", "SCHWARZ", "MART", "SMITH"];
    assert_searches_agree(&indexed, &linear, &patterns);
    // deleted records must be gone from both views
    for &rid in &doomed {
        assert_eq!(indexed.get(rid).unwrap(), None);
        assert_eq!(linear.get(rid).unwrap(), None);
    }
    indexed.shutdown();
    linear.shutdown();
}

#[test]
fn delete_many_counts_only_existing_records() {
    let (indexed, _linear) = store_pair(32);
    for rid in 0..20u64 {
        indexed.insert(rid, "SOME RECORD CONTENT").unwrap();
    }
    let n = indexed.delete_many([3, 4, 100, 5, 200]).unwrap();
    assert_eq!(n, 3, "only the records that existed count");
    assert_eq!(indexed.get(3).unwrap(), None);
    assert_eq!(indexed.get(6).unwrap(), Some("SOME RECORD CONTENT".into()));
    indexed.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workloads at every ingest thread count: whatever mix of
    /// bulk inserts, overwrites and deletes ran, indexed and linear
    /// stores answer every search identically.
    #[test]
    fn random_workloads_agree_across_thread_counts(
        seed in 0u64..1000,
        threads in 1usize..=4,
        n in 40usize..100,
        drop_mod in 2u64..5,
    ) {
        let records = DirectoryGenerator::new(seed).generate(n);
        let (indexed, linear) = store_pair(16);
        let batch: Vec<(u64, &str)> =
            records.iter().map(|r| (r.rid, r.rc.as_str())).collect();
        let opts = IngestOptions::with_threads(threads);
        indexed.insert_many_with(batch.clone(), opts).unwrap();
        linear.insert_many_with(batch, opts).unwrap();
        // overwrite some, delete some
        for r in records.iter().filter(|r| r.rid % drop_mod == 0) {
            let rc = format!("REWRITTEN {}", r.rc);
            indexed.insert(r.rid, &rc).unwrap();
            linear.insert(r.rid, &rc).unwrap();
        }
        let doomed: Vec<u64> = records
            .iter()
            .map(|r| r.rid)
            .filter(|rid| rid % drop_mod == 1)
            .collect();
        indexed.delete_many(doomed.iter().copied()).unwrap();
        linear.delete_many(doomed.iter().copied()).unwrap();
        let patterns = ["REWRITTEN", "SCHWARZ", "MART", "5555", "NOSUCHNAME"];
        for pattern in patterns {
            let a = indexed.search_detailed(pattern).unwrap();
            let b = linear.search_detailed(pattern).unwrap();
            prop_assert_eq!(&a.rids, &b.rids, "rids differ for {:?}", pattern);
            prop_assert_eq!(
                &a.candidate_rids, &b.candidate_rids,
                "candidates differ for {:?}", pattern
            );
            prop_assert_eq!(
                a.matched_index_records, b.matched_index_records,
                "matched index records differ for {:?}", pattern
            );
            prop_assert_eq!(&a.positions, &b.positions, "positions differ for {:?}", pattern);
        }
        indexed.shutdown();
        linear.shutdown();
    }
}
