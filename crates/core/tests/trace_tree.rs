//! The acceptance shape of the tentpole: one traced search emits one
//! connected span tree rooted at the client operation, whose children
//! cover the scan fan-out to every bucket, each bucket's scan work, and
//! the client-side combination (dispersion gather) leg.

use sdds_core::{EncryptedSearchStore, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use sdds_obs::trace::{self, SpanRecord};
use std::collections::{HashMap, HashSet};

#[test]
fn search_emits_a_single_connected_span_tree() {
    // Neutralize the `trace` feature's on-by-default gate during the load
    // so the drained set holds exactly the one search trace.
    trace::set_tracing(false);
    let records = DirectoryGenerator::new(99).generate(400);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("trace-tree")
        .bucket_capacity(64)
        .start();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap();
    assert!(
        store.cluster().num_buckets() > 1,
        "need a multi-bucket file to trace the fan-out"
    );

    let _ = trace::drain_spans();
    trace::set_tracing(true);
    let outcome = store.search_detailed("MARTINEZ").unwrap();
    trace::set_tracing(false);
    // Shutdown joins the site threads, so spans the sites were still
    // closing when the reply raced back are recorded before the drain.
    store.shutdown();
    let spans = trace::drain_spans();
    assert!(!outcome.rids.is_empty(), "the pattern should match");

    // Exactly one root, and it is the client operation.
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent_span_id == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "one traced operation → one root: {:?}",
        roots.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    let root = roots[0];
    assert_eq!(root.name, "client.search");

    // Every drained span belongs to that trace and parent-links to the
    // root without cycles.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    for span in &spans {
        assert_eq!(span.trace_id, root.trace_id, "stray trace: {:?}", span.name);
        let mut cursor = span;
        let mut steps = 0;
        while cursor.parent_span_id != 0 {
            cursor = by_id
                .get(&cursor.parent_span_id)
                .unwrap_or_else(|| panic!("span {:?} has a dangling parent", span.name));
            steps += 1;
            assert!(steps <= spans.len(), "parent cycle at {:?}", span.name);
        }
        assert_eq!(cursor.span_id, root.span_id);
    }

    // The fan-out covers every bucket the scan addressed: a scan span per
    // site, each holding its per-bucket scan work (index probe or linear
    // fallback) as a direct child. The oracle is the client's own
    // recorded fan-out (the `lh.scan` span's detail) rather than
    // `num_buckets()`, which keeps moving while queued splits drain in
    // the background; counts are per-site, not exact — a scan retried
    // under load legitimately re-scans a bucket and duplicates its spans.
    let fanout = spans
        .iter()
        .find(|s| s.name == "lh.scan")
        .expect("scan fan-out span")
        .detail;
    assert!(fanout > 1, "multi-bucket fan-out");
    let scan_spans: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "bucket.scan").collect();
    let scan_sites: HashSet<i64> = scan_spans.iter().map(|s| s.site).collect();
    assert_eq!(
        scan_sites.len() as u64,
        fanout,
        "every scanned bucket appears in the tree"
    );
    let scan_ids: HashSet<u64> = scan_spans.iter().map(|s| s.span_id).collect();
    let work: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "bucket.scan_index" || s.name == "bucket.scan_linear")
        .collect();
    let work_sites: HashSet<i64> = work.iter().map(|s| s.site).collect();
    assert_eq!(work_sites, scan_sites, "scan work on every bucket");
    for w in &work {
        assert!(
            scan_ids.contains(&w.parent_span_id),
            "{:?} must nest under its bucket's scan span",
            w.name
        );
    }

    // The dispersion gather / combination leg is a child of the client op.
    let combine = spans
        .iter()
        .find(|s| s.name == "search.combine")
        .expect("combination span");
    assert_eq!(combine.parent_span_id, root.span_id);
    assert!(combine.detail > 0, "candidates flowed into the gather");
}
