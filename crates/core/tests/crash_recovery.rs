//! Crash-recovery tests for the durable storage backend: a child process
//! ingests into an on-disk store and dies — either by SIGKILL at an
//! arbitrary moment or by `SDDS_CRASH_POINT` abort at a chosen step of
//! the split protocol — then the parent reopens the directory and checks
//! that every acknowledged record is still found by encrypted search.
//!
//! The child is this same test binary re-executed with `--exact` on one
//! of the `child_*` "tests" below (they no-op unless the `SDDS_CRASH_*`
//! environment is set). The child prints `ACK <rid>` after each
//! *returned* insert, so the parent knows exactly which records the
//! store promised to keep.

use sdds_core::{
    DiskOptions, EncryptedSearchStore, FsyncPolicy, SchemeConfig, StorageConfig, StoreBuilder,
};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const PASSPHRASE: &str = "crash-recovery-test";
const CAPACITY: usize = 48; // small: forces splits within a few dozen records

/// Record text for `rid` — deterministic, with a unique searchable token.
fn record_text(rid: u64) -> String {
    format!("USER{rid:06} SMITH JOHN 415-555-{:04}", rid % 10_000)
}

fn builder(data_dir: &Path) -> StoreBuilder {
    EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase(PASSPHRASE)
        .bucket_capacity(CAPACITY)
        .storage(StorageConfig::disk_with(
            data_dir,
            DiskOptions {
                fsync: FsyncPolicy::Always,
                ..DiskOptions::default()
            },
        ))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdds-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns this test binary running `child_name` against `data_dir`.
fn spawn_child(child_name: &str, data_dir: &Path, crash_point: Option<&str>) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args([child_name, "--exact", "--nocapture"])
        .env("SDDS_CRASH_CHILD", "1")
        .env("SDDS_CRASH_DIR", data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(point) = crash_point {
        cmd.env("SDDS_CRASH_POINT", point);
    }
    cmd.spawn().expect("spawn crash child")
}

/// Reads `ACK <rid>` lines until the child exits or `kill_after` acks
/// arrive (at which point the child is SIGKILLed). Returns the acked rids.
fn collect_acks(child: &mut Child, kill_after: Option<usize>) -> Vec<u64> {
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut acked = Vec::new();
    for line in BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        if let Some(rid) = line.strip_prefix("ACK ") {
            if let Ok(rid) = rid.trim().parse::<u64>() {
                acked.push(rid);
            }
        }
        if Some(acked.len()) == kill_after {
            child.kill().expect("kill child"); // SIGKILL on unix
            break;
        }
    }
    let _ = child.wait();
    acked
}

/// Reopens the store and asserts every acked rid is still searchable by
/// its unique token, and that record-store reads return the exact text.
fn assert_acked_survive(data_dir: &Path, acked: &[u64]) {
    let store = builder(data_dir).open().expect("reopen after crash");
    for &rid in acked {
        let hits = store.search(&format!("USER{rid:06}")).unwrap();
        assert!(
            hits.contains(&rid),
            "acked rid {rid} lost after crash recovery (hits: {hits:?})"
        );
        assert_eq!(
            store.get(rid).unwrap().as_deref(),
            Some(record_text(rid).as_str()),
            "acked rid {rid} record-store copy lost after crash recovery"
        );
    }
    store.shutdown();
}

/// Child body: ingest one record at a time, printing `ACK <rid>` only
/// after the insert returned (i.e. every index record was durably
/// acknowledged by its bucket).
fn child_ingest(total: u64) {
    let data_dir: PathBuf = std::env::var_os("SDDS_CRASH_DIR")
        .expect("child dir")
        .into();
    let store = builder(&data_dir).open().expect("child open");
    let mut out = std::io::stdout();
    for rid in 0..total {
        store.insert(rid, &record_text(rid)).expect("child insert");
        writeln!(out, "ACK {rid}").unwrap();
        out.flush().unwrap();
    }
    writeln!(out, "DONE").unwrap();
    out.flush().unwrap();
    store.shutdown();
}

// ---- child entry points (inert unless SDDS_CRASH_CHILD is set) ----

#[test]
fn child_ingest_300() {
    if std::env::var_os("SDDS_CRASH_CHILD").is_some() {
        child_ingest(300);
    }
}

// ---- the actual tests ----

#[test]
fn kill9_mid_ingest_preserves_acked_records() {
    let data_dir = fresh_dir("kill9");
    let mut child = spawn_child("child_ingest_300", &data_dir, None);
    let acked = collect_acks(&mut child, Some(80));
    assert!(
        acked.len() >= 40,
        "child died before enough acks: {}",
        acked.len()
    );
    assert_acked_survive(&data_dir, &acked);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn crash_after_split_transfer_applied_recovers() {
    // The split target durably applied the shipped records but the whole
    // process died before the source heard the ack: both copies are on
    // disk. The reopen re-address pass must dedupe in the home's favor.
    let data_dir = fresh_dir("transfer-applied");
    let mut child = spawn_child("child_ingest_300", &data_dir, Some("transfer-applied"));
    let acked = collect_acks(&mut child, None);
    assert!(
        !acked.is_empty(),
        "child aborted before any insert was acked"
    );
    assert!(
        acked.len() < 300,
        "crash point never fired: no split happened before DONE"
    );
    assert_acked_survive(&data_dir, &acked);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn crash_before_split_transfer_recovers() {
    // The new bucket's directory exists (the spawner created it) but no
    // records were shipped: the reopen-derived file state counts the
    // empty bucket, so re-addressing must move the victim's half over.
    let data_dir = fresh_dir("before-transfer");
    let mut child = spawn_child("child_ingest_300", &data_dir, Some("split-before-transfer"));
    let acked = collect_acks(&mut child, None);
    assert!(
        !acked.is_empty(),
        "child aborted before any insert was acked"
    );
    assert!(
        acked.len() < 300,
        "crash point never fired: no split happened before DONE"
    );
    assert_acked_survive(&data_dir, &acked);
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn graceful_reopen_preserves_all_records() {
    // No crash at all: shutdown, reopen, and the two backends' search
    // results must agree record for record.
    let data_dir = fresh_dir("graceful");
    let records: Vec<(u64, String)> = (0..120).map(|rid| (rid, record_text(rid))).collect();

    let mem = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase(PASSPHRASE)
        .bucket_capacity(CAPACITY)
        .start();
    let disk = builder(&data_dir).open().expect("fresh disk store");
    for (rid, rc) in &records {
        mem.insert(*rid, rc).unwrap();
        disk.insert(*rid, rc).unwrap();
    }
    let mem_hits = |s: &EncryptedSearchStore, p: &str| {
        let mut v = s.search(p).unwrap();
        v.sort_unstable();
        v
    };
    let patterns = ["USER000007", "SMITH", "415-555"];
    let expected: Vec<Vec<u64>> = patterns.iter().map(|p| mem_hits(&mem, p)).collect();
    for (p, e) in patterns.iter().zip(&expected) {
        assert_eq!(&mem_hits(&disk, p), e, "backends disagree on {p:?}");
    }
    mem.shutdown();
    disk.shutdown();

    // reopen and compare again
    let disk = builder(&data_dir).open().expect("reopen disk store");
    for (p, e) in patterns.iter().zip(&expected) {
        assert_eq!(&mem_hits(&disk, p), e, "reopen changed results for {p:?}");
    }
    disk.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
