//! End-to-end tests of the §8 extension: SWP-encrypted chunk indexes.

use sdds_core::{ConfigError, EncryptedSearchStore, IndexKind, SchemeConfig};
use sdds_corpus::DirectoryGenerator;

#[test]
fn swp_config_validates_and_rejects_dispersion() {
    let cfg = SchemeConfig::swp_chunks(4, 4).unwrap();
    assert_eq!(cfg.index_kind, IndexKind::SwpChunks);
    assert_eq!(cfg.element_bytes(), 16, "cipherwords are 16 bytes");
    let mut bad = cfg;
    bad.dispersion = Some(4);
    assert_eq!(bad.validated().unwrap_err(), ConfigError::SwpWithDispersion);
}

#[test]
fn swp_store_search_is_complete() {
    let records = DirectoryGenerator::new(31).generate(250);
    let store = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 4).unwrap())
        .passphrase("swp")
        .bucket_capacity(32)
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    for pattern in ["MARTINEZ", "NGUYEN", "WILLIAMS"] {
        let hits = store.search(pattern).unwrap();
        for r in records.iter().filter(|r| r.rc.contains(pattern)) {
            assert!(hits.contains(&r.rid), "missed {pattern} in rid {}", r.rid);
        }
    }
    assert!(store.search("QQQQQQQQ").unwrap().is_empty());
    store.shutdown();
}

#[test]
fn swp_hides_equal_chunk_structure_at_rest() {
    // the headline improvement over ECB: a repeated-chunk record stores no
    // repeated bytes, in contrast to the ECB index
    let swp_store = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 1).unwrap())
        .passphrase("x")
        .start();
    let ecb_store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 1).unwrap())
        .passphrase("x")
        .start();
    let rc = "ABCDABCDABCD"; // three identical chunks in chunking 0

    let swp_body = &swp_store.pipeline().index_records_for(1, rc)[0].body;
    let (a, rest) = swp_body.split_at(16);
    let (b, c) = rest.split_at(16);
    assert_ne!(a, b, "SWP cipherwords must differ across positions");
    assert_ne!(b, c);

    let ecb_body = &ecb_store.pipeline().index_records_for(1, rc)[0].body;
    assert_eq!(&ecb_body[0..4], &ecb_body[4..8], "ECB keeps equal images");

    // and across records: same RC, different RID → unlinkable under SWP
    let swp_other = &swp_store.pipeline().index_records_for(2, rc)[0].body;
    assert_ne!(swp_body, swp_other);
    let ecb_other = &ecb_store.pipeline().index_records_for(2, rc)[0].body;
    assert_eq!(
        ecb_body, ecb_other,
        "ECB bodies are linkable across records"
    );

    swp_store.shutdown();
    ecb_store.shutdown();
}

#[test]
fn swp_mode_has_no_encoding_false_positives() {
    // without Stage-2 conflation, SWP chunk search has the same accuracy
    // as plaintext chunk matching: only chunk-alignment FPs remain
    let store = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 4).unwrap())
        .passphrase("acc")
        .start();
    store.insert(1, "ABCDEFGHIJKLMNOP").unwrap();
    store.insert(2, "ZYXWVUTSRQPONMLK").unwrap();
    assert_eq!(store.search("CDEFGHIJ").unwrap(), vec![1]);
    assert_eq!(store.search("XWVUTSRQ").unwrap(), vec![2]);
    store.shutdown();
}

#[test]
fn swp_mode_interoperates_with_updates_and_deletes() {
    let store = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 2).unwrap())
        .passphrase("mut")
        .start();
    store.insert(5, "SCHWARZ THOMAS").unwrap();
    assert_eq!(store.search("THOMAS").unwrap(), vec![5]);
    // overwrite changes the index
    store.insert(5, "LITWIN WITOLD").unwrap();
    assert!(store.search("WITOLD").unwrap().contains(&5));
    store.delete(5).unwrap();
    assert!(store.search("WITOLD").unwrap().is_empty());
    assert_eq!(store.get(5).unwrap(), None);
    store.shutdown();
}

#[test]
fn swp_query_is_larger_but_index_leaks_less() {
    // quantify the §8 trade-off: trapdoors double the per-chunk query
    // bytes and the body is wider
    let swp = EncryptedSearchStore::builder(SchemeConfig::swp_chunks(4, 2).unwrap())
        .passphrase("q")
        .start();
    let ecb = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("q")
        .start();
    let swp_q = swp.pipeline().build_query("ABCDEFGH").unwrap();
    let ecb_q = ecb.pipeline().build_query("ABCDEFGH").unwrap();
    let qsize = |q: &sdds_core::EncryptedQuery| -> usize {
        q.per_tag
            .iter()
            .map(|(_, s)| s.iter().map(Vec::len).sum::<usize>())
            .sum()
    };
    assert!(qsize(&swp_q) > qsize(&ecb_q), "trapdoors cost query bytes");
    swp.shutdown();
    ecb.shutdown();
}
