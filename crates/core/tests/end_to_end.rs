//! End-to-end tests of the complete scheme over a live LH\* cluster:
//! every Stage-1/2/3 combination, searching the phone-directory workload.

use sdds_chunk::{PartialChunkPolicy, SearchMode};
use sdds_core::{EncodingConfig, EncryptedSearchStore, SchemeConfig, StoreError};
use sdds_corpus::DirectoryGenerator;

fn directory(n: usize) -> Vec<sdds_corpus::Record> {
    DirectoryGenerator::new(2024).generate(n)
}

/// Ground truth: rids whose RC contains the pattern.
fn truth(records: &[sdds_corpus::Record], pattern: &str) -> Vec<u64> {
    let mut v: Vec<u64> = records
        .iter()
        .filter(|r| r.rc.contains(pattern))
        .map(|r| r.rid)
        .collect();
    v.sort_unstable();
    v
}

fn assert_complete(store: &EncryptedSearchStore, records: &[sdds_corpus::Record], pattern: &str) {
    let hits = store.search(pattern).unwrap();
    for rid in truth(records, pattern) {
        assert!(
            hits.contains(&rid),
            "missed true occurrence of {pattern:?} in rid {rid}"
        );
    }
}

#[test]
fn basic_store_insert_search_get_delete() {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("test")
        .start();
    store.insert(7, "SCHWARZ THOMAS").unwrap();
    store.insert(8, "LITWIN WITOLD").unwrap();
    store.insert(9, "TSUI PETER").unwrap();

    assert_eq!(store.search("THOMAS").unwrap(), vec![7]);
    assert_eq!(store.search("WITOLD").unwrap(), vec![8]);
    assert!(store.search("NOBODY HERE").unwrap().is_empty());

    assert_eq!(store.get(7).unwrap(), Some("SCHWARZ THOMAS".into()));
    assert!(store.delete(7).unwrap());
    assert_eq!(store.get(7).unwrap(), None);
    assert!(
        store.search("THOMAS").unwrap().is_empty(),
        "index cleaned up"
    );
    store.shutdown();
}

#[test]
fn no_plaintext_leaks_into_cluster_traffic() {
    // Serialize a record through the pipeline and check that neither the
    // record store copy nor any index body contains the plaintext bytes.
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("secrecy")
        .start();
    let rc = "ABABABABABAB";
    store.insert(1, rc).unwrap();
    let pipeline = store.pipeline();
    let ct = pipeline.encrypt_record(1, rc);
    assert!(!contains(&ct, rc.as_bytes()));
    for rec in pipeline.index_records(rc) {
        assert!(
            !contains(&rec.body, rc.as_bytes()) && !contains(&rec.body, b"ABAB"),
            "index body leaks plaintext"
        );
    }
    store.shutdown();
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[test]
fn phonebook_search_is_complete_basic_scheme() {
    let records = directory(300);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("pb")
        .bucket_capacity(32)
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    for pattern in ["MARTINEZ", "JOHNSON", "NGUYEN", "GARCIA"] {
        assert_complete(&store, &records, pattern);
    }
    store.shutdown();
}

#[test]
fn encoded_scheme_is_complete_and_lossy() {
    let records = directory(300);
    let mut cfg = SchemeConfig::basic(2, 2).unwrap();
    cfg.encoding = Some(EncodingConfig::whole_chunk(64));
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg)
        .passphrase("pb")
        .bucket_capacity(32)
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    // completeness must survive the lossy encoding
    for pattern in ["MARTINEZ", "WILLIAMS", "ANDERSON"] {
        assert_complete(&store, &records, pattern);
    }
    store.shutdown();
}

#[test]
fn dispersed_scheme_is_complete() {
    let records = directory(200);
    let mut cfg = SchemeConfig::basic(4, 2).unwrap(); // 32-bit chunks
    cfg.dispersion = Some(4); // 8-bit shares on 4 sites
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg)
        .passphrase("pb")
        .bucket_capacity(32)
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    for pattern in ["MARTINEZ", "JOHNSON"] {
        assert_complete(&store, &records, pattern);
    }
    store.shutdown();
}

#[test]
fn paper_recommended_configuration_end_to_end() {
    let records = directory(200);
    let store = EncryptedSearchStore::builder(SchemeConfig::paper_recommended())
        .passphrase("icde06")
        .bucket_capacity(32)
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    // paper scheme: chunk 6, two chunkings → min query length 6+3-1 = 8
    assert_complete(&store, &records, "MARTINEZ");
    // fetch_matching removes the designed false positives
    let fetched = store.fetch_matching("MARTINEZ").unwrap();
    let expect = truth(&records, "MARTINEZ");
    let got: Vec<u64> = fetched.iter().map(|(rid, _)| *rid).collect();
    assert_eq!(got, expect);
    for (_, rc) in fetched {
        assert!(rc.contains("MARTINEZ"));
    }
    store.shutdown();
}

#[test]
fn exhaustive_mode_reduces_candidates() {
    // §2.4's false-positive example, end to end: the AND rule rejects
    // candidates that a single index record would admit.
    let mut cfg = SchemeConfig::basic(4, 4).unwrap();
    cfg.search_mode = SearchMode::Exhaustive;
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg).passphrase("x").start();
    store.insert(1, "ABCDEFGHIJKLMNOPQRSTUVWXYZ").unwrap();
    // true substring (min length 2s-1 = 7)
    let out = store.search_detailed("BCDEFGHIJK").unwrap();
    assert_eq!(out.rids, vec![1]);
    // phantom string sharing one aligned series ("ACDEFGHI" from §2.4,
    // padded to meet the exhaustive minimum length)
    let out = store.search_detailed("ACDEFGHIJK").unwrap();
    assert!(out.rids.is_empty(), "AND rule must reject: {out:?}");
    store.shutdown();
}

#[test]
fn concurrent_handles_search_and_write_in_parallel() {
    let records = directory(200);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("mt")
        .bucket_capacity(64)
        .start();
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap();
    std::thread::scope(|scope| {
        // four searcher threads, each with its own handle
        for pattern in ["MARTINEZ", "WILLIAMS", "NGUYEN", "ANDERSON"] {
            let handle = store.handle();
            let records = &records;
            scope.spawn(move || {
                for _ in 0..5 {
                    let hits = handle.search(pattern).unwrap();
                    for r in records.iter().filter(|r| r.rc.contains(pattern)) {
                        assert!(hits.contains(&r.rid), "missed {pattern}");
                    }
                }
            });
        }
        // one writer thread inserting fresh records concurrently
        let writer = store.handle();
        scope.spawn(move || {
            for i in 0..50u64 {
                writer.insert(9_000_000 + i, "CONCURRENT WRITER").unwrap();
            }
        });
    });
    // writes landed
    assert_eq!(
        store.get(9_000_000).unwrap(),
        Some("CONCURRENT WRITER".into())
    );
    store.shutdown();
}

#[test]
fn storage_report_quantifies_the_ablation_axes() {
    let records = directory(100);
    let items = || records.iter().map(|r| (r.rid, r.rc.as_str()));
    // full scheme (4 chunkings) vs reduced (2): index bytes halve
    let full = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("x")
        .start();
    let reduced = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("x")
        .start();
    let rf = full.pipeline().storage_report(items());
    let rr = reduced.pipeline().storage_report(items());
    assert_eq!(rf.records, 100);
    assert!(rf.index_records > rr.index_records);
    let ratio = rf.index_bytes as f64 / rr.index_bytes as f64;
    assert!(
        (1.8..2.2).contains(&ratio),
        "chunkings halved should ~halve bytes: {ratio}"
    );
    // Stage-2 compression shrinks the index below the plaintext
    let mut cfg = SchemeConfig::basic(4, 2).unwrap();
    cfg.encoding = Some(EncodingConfig::whole_chunk(256));
    let compressed = EncryptedSearchStore::builder(cfg.validated().unwrap())
        .passphrase("x")
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    let rc = compressed.pipeline().storage_report(items());
    assert!(
        rc.expansion() < rr.expansion(),
        "Stage 2 should shrink the index: {} !< {}",
        rc.expansion(),
        rr.expansion()
    );
    full.shutdown();
    reduced.shutdown();
    compressed.shutdown();
}

#[test]
fn positions_locate_the_occurrence() {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("pos")
        .start();
    store.insert(1, "XXXXSCHWARZXXXX").unwrap();
    store.insert(2, "SCHWARZ THOMAS").unwrap();
    let positions = store.search_positions("SCHWARZ").unwrap();
    assert!(
        positions[&1].contains(&4),
        "rid 1 positions: {:?}",
        positions[&1]
    );
    assert!(
        positions[&2].contains(&0),
        "rid 2 positions: {:?}",
        positions[&2]
    );
    store.shutdown();
}

#[test]
fn prefix_search_filters_by_offset_zero() {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("prefix")
        .start();
    store.insert(1, "SCHWARZ THOMAS").unwrap();
    store.insert(2, "VON SCHWARZ K").unwrap();
    store.insert(3, "SCHWARZENEGGER A").unwrap();
    let mut hits = store.search_starting_with("SCHWARZ").unwrap();
    hits.sort_unstable();
    assert_eq!(hits, vec![1, 3], "only records *starting* with the pattern");
    // the plain search still finds the interior occurrence
    assert_eq!(store.search("SCHWARZ").unwrap(), vec![1, 2, 3]);
    store.shutdown();
}

#[test]
fn short_query_rejected_with_proper_error() {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("x")
        .start();
    let err = store.search("ABC").unwrap_err();
    assert!(matches!(err, StoreError::Pipeline(_)), "{err:?}");
    store.shutdown();
}

#[test]
fn rid_capacity_is_enforced() {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("x")
        .start();
    let too_big = 1u64 << 62; // tag_bits for 5 variants = 3 → max rid 2^61
    assert!(matches!(
        store.insert(too_big, "X"),
        Err(StoreError::RidTooLarge(_))
    ));
    store.shutdown();
}

#[test]
fn store_scales_across_buckets_with_index_fan_out() {
    let records = directory(150);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("scale")
        .bucket_capacity(16)
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    // 150 records × (1 + 2 index) = 450 LH* records at capacity 16
    assert!(
        store.cluster().num_buckets() > 8,
        "expected many buckets, got {}",
        store.cluster().num_buckets()
    );
    // records still retrievable and searchable after all the splits
    assert_eq!(
        store.get(records[0].rid).unwrap(),
        Some(records[0].rc.clone())
    );
    assert_complete(&store, &records, "MARTINEZ");
    store.shutdown();
}

#[test]
fn partial_chunk_drop_policy_still_finds_interior_patterns() {
    let mut cfg = SchemeConfig::basic(4, 4).unwrap();
    cfg.partial_chunks = PartialChunkPolicy::Drop;
    let cfg = cfg.validated().unwrap();
    let store = EncryptedSearchStore::builder(cfg).passphrase("x").start();
    store.insert(1, "ABCDEFGHIJKLMNOPQRSTUVWX").unwrap();
    // interior pattern: found
    assert_eq!(store.search("EFGHIJKLMNOP").unwrap(), vec![1]);
    store.shutdown();
}
