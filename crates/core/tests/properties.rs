//! Property tests of the core pipeline, exercised without a cluster:
//! the completeness invariant (a true substring is always found by the
//! encrypted matcher) must hold for every stage combination, and the
//! key layout must round-trip.

use proptest::prelude::*;
use sdds_chunk::CombinationRule;
use sdds_cipher::{KeyMaterial, MasterKey};
use sdds_core::{EncodingConfig, IndexPipeline, SchemeConfig};
use std::collections::HashMap;

/// The client-side combination logic, re-implemented over raw pipeline
/// output (mirrors `EncryptedSearchStore::search_detailed` without LH\*).
fn local_search(pipeline: &IndexPipeline, rid: u64, rc: &str, pattern: &str) -> Option<bool> {
    let query = pipeline.build_query(pattern).ok()?;
    let records = pipeline.index_records_for(rid, rc);
    let mut bodies: HashMap<(usize, usize), Vec<u8>> = HashMap::new();
    for r in records {
        bodies.insert((r.chunking, r.site), r.body);
    }
    let cfg = pipeline.config();
    let c = cfg.chunking.num_chunkings();
    let k = cfg.k();
    let mut hits = Vec::with_capacity(c);
    for j in 0..c {
        let tag0 = pipeline.tag(j, 0);
        let nseries = query.series_for(tag0).map(|s| s.len()).unwrap_or(0);
        let mut chunking_hit = false;
        'series: for d in 0..nseries {
            let mut common: Option<Vec<usize>> = None;
            for site in 0..k {
                let tag = pipeline.tag(j, site);
                let series = &query.series_for(tag).unwrap()[d];
                let body = &bodies[&(j, site)];
                let positions = query.match_positions(body, series);
                common = Some(match common {
                    None => positions,
                    Some(prev) => prev.into_iter().filter(|p| positions.contains(p)).collect(),
                });
                if common.as_ref().is_some_and(|c| c.is_empty()) {
                    continue 'series;
                }
            }
            if common.is_some_and(|c| !c.is_empty()) {
                chunking_hit = true;
                break;
            }
        }
        hits.push(chunking_hit);
    }
    Some(match cfg.search_mode.combination() {
        CombinationRule::All => hits.iter().all(|&h| h),
        CombinationRule::Any => hits.iter().any(|&h| h),
    })
}

fn configs() -> Vec<SchemeConfig> {
    let mut v = vec![
        SchemeConfig::basic(4, 4).unwrap(),
        SchemeConfig::basic(4, 2).unwrap(),
        SchemeConfig::basic(2, 2).unwrap(),
        SchemeConfig::basic(8, 4).unwrap(),
        SchemeConfig::swp_chunks(4, 4).unwrap(),
        SchemeConfig::swp_chunks(4, 2).unwrap(),
    ];
    let mut dispersed = SchemeConfig::basic(4, 2).unwrap();
    dispersed.dispersion = Some(4);
    v.push(dispersed.validated().unwrap());
    let mut encoded = SchemeConfig::basic(2, 2).unwrap();
    encoded.encoding = Some(EncodingConfig::whole_chunk(256));
    v.push(encoded.validated().unwrap());
    let mut per_symbol = SchemeConfig::basic(4, 2).unwrap();
    per_symbol.encoding = Some(EncodingConfig::per_symbol(32));
    v.push(per_symbol.validated().unwrap());
    v.push(SchemeConfig::paper_recommended());
    v
}

fn pipeline_for(cfg: SchemeConfig, training: &[String]) -> IndexPipeline {
    let keys = KeyMaterial::new(MasterKey::new([42; 16]));
    let book = cfg
        .encoding
        .map(|_| IndexPipeline::train_codebook(&cfg, training.iter().map(|s| s.as_str())));
    IndexPipeline::new(cfg, keys, book).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn completeness_across_all_configurations(
        seed in any::<u64>(),
        cfg_idx in 0usize..10,
        start_frac in 0.0f64..1.0,
        rid in 1u64..1000,
    ) {
        let cfg = configs()[cfg_idx];
        // random capital-letter record of 24..40 symbols
        let len = 24 + (seed % 17) as usize;
        let rc: String = (0..len)
            .map(|i| {
                let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 97);
                char::from(b'A' + ((x >> 33) % 26) as u8)
            })
            .collect();
        let training = vec![rc.clone()];
        let pipeline = pipeline_for(cfg, &training);
        let min = cfg.chunking.min_search_len(cfg.search_mode);
        prop_assume!(rc.len() >= min + 2);
        let start = ((rc.len() - min - 1) as f64 * start_frac) as usize;
        let qlen = min + (seed % 3) as usize;
        prop_assume!(start + qlen <= rc.len());
        let pattern = &rc[start..start + qlen];
        prop_assert_eq!(
            local_search(&pipeline, rid, &rc, pattern),
            Some(true),
            "missed {} in {} (cfg {:?})", pattern, rc, cfg
        );
    }

    #[test]
    fn key_layout_roundtrip(rid in 0u64..(1 << 50), cfg_idx in 0usize..10) {
        let cfg = configs()[cfg_idx];
        let training = vec!["ABCDEFAB".to_string()];
        let pipeline = pipeline_for(cfg, &training);
        for tag in 0..=(cfg.index_records_per_record() as u32) {
            let key = pipeline.lh_key(rid, tag);
            prop_assert_eq!(pipeline.parse_key(key), (rid, tag));
        }
    }

    #[test]
    fn record_encryption_roundtrip_any_content(
        rid in any::<u64>(),
        rc in "[A-Z &.']{0,60}",
    ) {
        let pipeline = pipeline_for(SchemeConfig::basic(4, 2).unwrap(), &[]);
        let ct = pipeline.encrypt_record(rid, &rc);
        prop_assert_eq!(pipeline.decrypt_record(rid, &ct).unwrap(), rc);
    }

    #[test]
    fn index_bodies_have_config_width(
        seed in any::<u64>(),
        cfg_idx in 0usize..10,
    ) {
        let cfg = configs()[cfg_idx];
        let rc: String = (0..30)
            .map(|i| char::from(b'A' + ((seed.wrapping_add(i * 13)) % 26) as u8))
            .collect();
        let pipeline = pipeline_for(cfg, std::slice::from_ref(&rc));
        for rec in pipeline.index_records_for(7, &rc) {
            prop_assert_eq!(
                rec.body.len() % cfg.element_bytes(),
                0,
                "ragged body for {:?}",
                cfg
            );
        }
    }
}
