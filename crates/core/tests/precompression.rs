//! End-to-end tests of Stage-0 searchable pre-compression (§8's
//! "searchable compression as a main mean of redundancy removal")
//! composed with the full scheme.

use sdds_core::{EncryptedSearchStore, PrecompressionConfig, SchemeConfig, StoreError};
use sdds_corpus::DirectoryGenerator;

fn config() -> SchemeConfig {
    let mut cfg = SchemeConfig::basic(4, 4).unwrap();
    cfg.precompression = Some(PrecompressionConfig { max_pairs: 64 });
    cfg.validated().unwrap()
}

#[test]
fn config_validates_and_widens_symbols() {
    let cfg = config();
    assert_eq!(cfg.effective_symbol_bits(), 9);
    assert_eq!(cfg.chunk_bits(), 36); // 4 symbols x 9 bits
                                      // pair budget over the alphabet is rejected
    let mut bad = SchemeConfig::basic(4, 4).unwrap();
    bad.precompression = Some(PrecompressionConfig { max_pairs: 1 << 20 });
    assert!(bad.validated().is_err());
}

#[test]
fn compressed_store_is_complete_on_the_phonebook() {
    let records = DirectoryGenerator::new(51).generate(250);
    let store = EncryptedSearchStore::builder(config())
        .passphrase("stage0")
        .bucket_capacity(64)
        .train(records.iter().take(200).map(|r| r.rc.clone()))
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    for pattern in ["MARTINEZ", "WILLIAMS", "ANDERSON", "RODRIGUEZ"] {
        let hits = store.search(pattern).unwrap();
        for r in records.iter().filter(|r| r.rc.contains(pattern)) {
            assert!(hits.contains(&r.rid), "missed {pattern} in rid {}", r.rid);
        }
    }
    assert!(store.search("ZZZZZZZZZZZZ").unwrap().is_empty());
    store.shutdown();
}

#[test]
fn compression_shrinks_the_index() {
    let records = DirectoryGenerator::new(52).generate(300);
    let plain_store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("x")
        .start();
    let comp_store = EncryptedSearchStore::builder(config())
        .passphrase("x")
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    let body_bytes = |store: &EncryptedSearchStore| -> usize {
        records
            .iter()
            .map(|r| {
                store
                    .pipeline()
                    .index_records_for(r.rid, &r.rc)
                    .iter()
                    .map(|rec| rec.body.len())
                    .sum::<usize>()
            })
            .sum()
    };
    let plain = body_bytes(&plain_store);
    let compressed = body_bytes(&comp_store);
    // 9-bit symbols cost more per chunk (5-byte elements vs 4), but pair
    // compression removes enough chunks to come out ahead per symbol:
    // compare chunk *counts*
    let chunks = |store: &EncryptedSearchStore| -> usize {
        let eb = store.pipeline().config().element_bytes();
        records
            .iter()
            .map(|r| {
                store
                    .pipeline()
                    .index_records_for(r.rid, &r.rc)
                    .iter()
                    .map(|rec| rec.body.len() / eb)
                    .sum::<usize>()
            })
            .sum()
    };
    assert!(
        chunks(&comp_store) < chunks(&plain_store),
        "pair compression should reduce the chunk count: {} vs {}",
        chunks(&comp_store),
        chunks(&plain_store)
    );
    // and the byte totals stay in the same ballpark
    assert!(compressed < plain * 2, "{compressed} vs {plain}");
    plain_store.shutdown();
    comp_store.shutdown();
}

#[test]
fn short_patterns_error_rather_than_miss() {
    let records = DirectoryGenerator::new(53).generate(100);
    let store = EncryptedSearchStore::builder(config())
        .passphrase("strict")
        .train(records.iter().map(|r| r.rc.clone()))
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    // a 4-symbol pattern compresses below the 4-code minimum
    match store.search("MART") {
        Err(StoreError::Pipeline(_)) => {}
        Ok(hits) => {
            // acceptable only if no variant was shortened below min — then
            // completeness still holds; verify it
            for r in records.iter().filter(|r| r.rc.contains("MART")) {
                assert!(hits.contains(&r.rid));
            }
        }
        Err(e) => panic!("unexpected error {e}"),
    }
    store.shutdown();
}
