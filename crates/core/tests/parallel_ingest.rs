//! The parallel ingest paths must be *byte-identical* to the sequential
//! ones: `index_records_batch` per record, and a store loaded with
//! `insert_many_with` at any thread count must answer searches exactly
//! like a sequentially loaded one.

use proptest::prelude::*;
use sdds_cipher::{KeyMaterial, MasterKey};
use sdds_core::{EncodingConfig, EncryptedSearchStore, IndexPipeline, IngestOptions, SchemeConfig};
use sdds_par::Pool;

fn configs() -> Vec<SchemeConfig> {
    let mut v = vec![
        SchemeConfig::basic(4, 4).unwrap(),
        SchemeConfig::basic(8, 4).unwrap(),
        SchemeConfig::swp_chunks(4, 4).unwrap(),
    ];
    let mut dispersed = SchemeConfig::basic(4, 2).unwrap();
    dispersed.dispersion = Some(4);
    v.push(dispersed.validated().unwrap());
    let mut encoded = SchemeConfig::basic(2, 2).unwrap();
    encoded.encoding = Some(EncodingConfig::whole_chunk(256));
    v.push(encoded.validated().unwrap());
    v.push(SchemeConfig::paper_recommended());
    v
}

fn pipeline_for(cfg: SchemeConfig, training: &[String]) -> IndexPipeline {
    let keys = KeyMaterial::new(MasterKey::new([42; 16]));
    let book = cfg
        .encoding
        .map(|_| IndexPipeline::train_codebook(&cfg, training.iter().map(|s| s.as_str())));
    IndexPipeline::new(cfg, keys, book).unwrap()
}

/// A deterministic corpus of records with mixed lengths (including empty
/// and shorter-than-a-chunk records).
fn corpus(seed: u64, n: usize) -> Vec<(u64, String)> {
    (0..n)
        .map(|i| {
            let mut x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
            let len = (x % 41) as usize; // 0..=40 symbols
            let rc: String = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
                    char::from(b'A' + ((x >> 33) % 26) as u8)
                })
                .collect();
            (1 + i as u64, rc)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_transform_is_byte_identical_to_sequential(
        seed in any::<u64>(),
        cfg_idx in 0usize..6,
        threads in 1usize..=8,
        n in 1usize..40,
    ) {
        let cfg = configs()[cfg_idx];
        let records = corpus(seed, n);
        let training: Vec<String> = records.iter().map(|(_, rc)| rc.clone()).collect();
        let pipeline = pipeline_for(cfg, &training);
        let pairs: Vec<(u64, &str)> = records.iter().map(|(rid, rc)| (*rid, rc.as_str())).collect();
        let pool = Pool::new(threads);
        let parallel = pipeline.index_records_batch(&pairs, &pool);
        prop_assert_eq!(parallel.len(), records.len());
        for ((rid, rc), batch) in records.iter().zip(&parallel) {
            let sequential = pipeline.index_records_for(*rid, rc);
            prop_assert_eq!(batch, &sequential, "rid {} under {} threads", rid, threads);
        }
    }
}

/// Two live stores — one loaded sequentially, one with a 4-thread pool —
/// must agree on every search, hit or miss, and on record fetches.
#[test]
fn parallel_loaded_store_searches_identically() {
    let records = corpus(20060403, 120);
    let pairs: Vec<(u64, &str)> = records
        .iter()
        .map(|(rid, rc)| (*rid, rc.as_str()))
        .collect();
    let cfg = SchemeConfig::basic(4, 4).unwrap();

    let sequential = EncryptedSearchStore::builder(cfg).passphrase("par").start();
    sequential.insert_many(pairs.iter().copied()).unwrap();

    let parallel = EncryptedSearchStore::builder(cfg).passphrase("par").start();
    let stats = parallel
        .insert_many_with(
            pairs.iter().copied(),
            IngestOptions {
                threads: 4,
                flush_index_records: 64,
            },
        )
        .unwrap();
    assert_eq!(stats.records, records.len() as u64);
    assert!(stats.index_records > 0 && stats.index_bytes > 0);

    // patterns cut from real records (guaranteed hits) plus guaranteed misses
    let mut patterns: Vec<String> = records
        .iter()
        .filter(|(_, rc)| rc.len() >= 8)
        .take(12)
        .map(|(_, rc)| rc[1..7].to_string())
        .collect();
    patterns.push("QQQQQQQQ".into());
    patterns.push("ZZZZYYYY".into());
    for pattern in &patterns {
        assert_eq!(
            sequential.search(pattern).unwrap(),
            parallel.search(pattern).unwrap(),
            "divergent results for {pattern:?}"
        );
    }
    for (rid, rc) in records.iter().take(20) {
        assert_eq!(parallel.get(*rid).unwrap().as_deref(), Some(rc.as_str()));
    }
    sequential.shutdown();
    parallel.shutdown();
}
