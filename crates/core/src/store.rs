//! The client-facing store: the complete scheme over a live LH\* cluster.

use crate::config::{ConfigError, SchemeConfig};
use crate::pipeline::{IndexPipeline, IngestScratch, PipelineError};
use crate::query::EncryptedIndexFilter;
use sdds_chunk::CombinationRule;
use sdds_cipher::{KeyMaterial, MasterKey};
use sdds_lh::{ClusterConfig, LhClient, LhCluster, LhError, ParityConfig, StorageConfig};
use sdds_net::NetConfig;
use sdds_obs::trace;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Store-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// LH\* layer failure.
    Lh(LhError),
    /// Pipeline failure (query too short, decryption, …).
    Pipeline(PipelineError),
    /// Configuration failure.
    Config(ConfigError),
    /// The RID does not fit the key layout (`rid < 2^(64 - tag_bits)`).
    RidTooLarge(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Lh(e) => write!(f, "lh*: {e}"),
            StoreError::Pipeline(e) => write!(f, "pipeline: {e}"),
            StoreError::Config(e) => write!(f, "config: {e}"),
            StoreError::RidTooLarge(r) => write!(f, "rid {r} exceeds the key layout"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LhError> for StoreError {
    fn from(e: LhError) -> Self {
        StoreError::Lh(e)
    }
}
impl From<PipelineError> for StoreError {
    fn from(e: PipelineError) -> Self {
        StoreError::Pipeline(e)
    }
}
impl From<ConfigError> for StoreError {
    fn from(e: ConfigError) -> Self {
        StoreError::Config(e)
    }
}

/// Detailed search result for experiments.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// RIDs reported after combining per-chunking verdicts.
    pub rids: Vec<u64>,
    /// RIDs where at least one index record matched (pre-combination) —
    /// the single-site answer the paper's §2.4 example warns about.
    pub candidate_rids: Vec<u64>,
    /// Number of index records the sites reported as matching.
    pub matched_index_records: usize,
    /// Candidate occurrence offsets (symbol index of the match start in
    /// the record content) per reported RID, deduplicated and sorted.
    /// Only meaningful under [`PartialChunkPolicy::Store`]; like the RIDs
    /// themselves, offsets carry the scheme's false positives.
    ///
    /// [`PartialChunkPolicy::Store`]: sdds_chunk::PartialChunkPolicy::Store
    pub positions: HashMap<u64, Vec<usize>>,
}

/// The per-stage ingest histograms paired with the throughput gauges
/// derived from them. Both names are static so the obs-drift lint can
/// reconcile them against `docs/OBSERVABILITY.md`.
const STAGE_HISTOGRAMS: [(&str, &str); 3] = [
    ("core.chunk_seconds", "core.chunk_chunks_per_sec"),
    ("core.encode_seconds", "core.encode_chunks_per_sec"),
    ("core.disperse_seconds", "core.disperse_chunks_per_sec"),
];

/// Tuning knobs for bulk ingest — see [`StoreHandle::insert_many_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Worker threads for the record → index-record transform (1 runs the
    /// transform inline on the calling thread).
    pub threads: usize,
    /// Target number of keyed entries per LH\* flush; the load proceeds in
    /// windows of `flush_index_records / (1 + c·k)` records so bucket
    /// mailboxes and split pressure stay bounded no matter how large the
    /// input iterator is.
    pub flush_index_records: usize,
}

impl Default for IngestOptions {
    fn default() -> IngestOptions {
        IngestOptions {
            threads: 1,
            flush_index_records: 1024,
        }
    }
}

impl IngestOptions {
    /// Options with `threads` workers and the default flush size.
    pub fn with_threads(threads: usize) -> IngestOptions {
        IngestOptions {
            threads,
            ..IngestOptions::default()
        }
    }
}

/// What a bulk load did — see [`StoreHandle::insert_many_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Records loaded.
    pub records: u64,
    /// Index records produced (excluding the record-store copies).
    pub index_records: u64,
    /// Chunks transformed across all chunkings.
    pub chunks: u64,
    /// Index body bytes shipped to the sites.
    pub index_bytes: u64,
    /// Wall-clock duration of the load in seconds.
    pub elapsed_seconds: f64,
}

impl IngestStats {
    /// Records ingested per second.
    pub fn records_per_sec(&self) -> f64 {
        rate(self.records, self.elapsed_seconds)
    }

    /// Chunks transformed per second.
    pub fn chunks_per_sec(&self) -> f64 {
        rate(self.chunks, self.elapsed_seconds)
    }

    /// Index bytes produced per second.
    pub fn bytes_per_sec(&self) -> f64 {
        rate(self.index_bytes, self.elapsed_seconds)
    }
}

fn rate(n: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        n as f64 / secs
    } else {
        0.0
    }
}

/// Intersection of two ascending position lists by a linear two-pointer
/// merge. [`EncryptedQuery::match_positions`] reports positions in
/// strictly ascending order (both the Morris–Pratt and the SWP scan walk
/// the body left to right), so the merge is O(n + m) — replacing the old
/// O(n·m) `contains` filter — and its output stays ascending.
///
/// [`EncryptedQuery::match_positions`]: crate::query::EncryptedQuery::match_positions
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Builder for [`EncryptedSearchStore`].
pub struct StoreBuilder {
    config: SchemeConfig,
    master: MasterKey,
    training: Vec<String>,
    bucket_capacity: usize,
    parity: Option<ParityConfig>,
    scan_index: bool,
    storage: StorageConfig,
    net: NetConfig,
    drain_budget: usize,
    op_timeout: Duration,
    obs: sdds_lh::ObsOptions,
}

impl StoreBuilder {
    /// Sets the master key from a passphrase.
    pub fn passphrase(mut self, passphrase: &str) -> StoreBuilder {
        self.master = MasterKey::from_passphrase(passphrase);
        self
    }

    /// Sets the raw master key.
    pub fn master_key(mut self, key: [u8; 16]) -> StoreBuilder {
        self.master = MasterKey::new(key);
        self
    }

    /// Supplies the representative sample for Stage-2 codebook training.
    /// Required iff the config enables encoding.
    pub fn train<I, S>(mut self, sample: I) -> StoreBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.training = sample.into_iter().map(Into::into).collect();
        self
    }

    /// LH\* bucket capacity (records per bucket before splits).
    pub fn bucket_capacity(mut self, capacity: usize) -> StoreBuilder {
        self.bucket_capacity = capacity;
        self
    }

    /// Enables LH\*<sub>RS</sub> parity on the underlying file.
    pub fn parity(mut self, parity: ParityConfig) -> StoreBuilder {
        self.parity = Some(parity);
        self
    }

    /// Toggles the per-bucket posting index (on by default). Off, every
    /// scan is a full linear sweep — the consistency oracle and the
    /// benchmark baseline.
    pub fn scan_index(mut self, enabled: bool) -> StoreBuilder {
        self.scan_index = enabled;
        self
    }

    /// Configures the simulated network under the cluster: latency model,
    /// fault injection, and `inbox_capacity` — the bounded-mailbox
    /// admission control bound (unbounded by default). A full inbox
    /// rejects sends at the sender with `Overloaded`; client handles ride
    /// it out via their [`RetryPolicy`](sdds_lh::RetryPolicy).
    pub fn net(mut self, net: NetConfig) -> StoreBuilder {
        self.net = net;
        self
    }

    /// Messages each site event loop drains per wakeup (batching
    /// amortises decode/dispatch/trace overhead; 1 reproduces
    /// message-at-a-time dispatch).
    pub fn drain_budget(mut self, budget: usize) -> StoreBuilder {
        self.drain_budget = budget.max(1);
        self
    }

    /// Total per-operation timeout for every client handle (spread over
    /// the client's retransmit attempts). Shorten it when running with
    /// bounded inboxes: shed replies are then re-requested quickly
    /// instead of idling out long deadline tails.
    pub fn op_timeout(mut self, timeout: Duration) -> StoreBuilder {
        self.op_timeout = timeout;
        self
    }

    /// Configures the serving-side observability plane: the periodic
    /// snapshot-ring tick, the ring depth, and the optional trace-flush
    /// file (see [`sdds_lh::ObsOptions`]). Only meaningful for processes
    /// that host sites ([`start`](Self::start), [`open`](Self::open),
    /// [`serve_parts`](Self::serve_parts)).
    pub fn obs_options(mut self, obs: sdds_lh::ObsOptions) -> StoreBuilder {
        self.obs = obs;
        self
    }

    /// Selects the bucket storage backend (volatile memory by default).
    /// With [`StorageConfig::disk`], records survive process restarts:
    /// rebuild the same builder (same passphrase, config and training
    /// sample — every pipeline stage is deterministic in those) and call
    /// [`open`](Self::open) instead of [`start`](Self::start).
    pub fn storage(mut self, storage: StorageConfig) -> StoreBuilder {
        self.storage = storage;
        self
    }

    /// Starts the cluster and returns the store.
    ///
    /// Panics if encoding is enabled but no training sample was supplied —
    /// the scheme cannot build its frequency-equalising codebook from
    /// nothing (§3).
    pub fn start(self) -> EncryptedSearchStore {
        let (pipeline, cluster_config) = self.build_parts();
        let cluster = LhCluster::start(cluster_config);
        let client = cluster.client();
        let handle = StoreHandle {
            pipeline: Arc::new(pipeline),
            client,
        };
        EncryptedSearchStore { handle, cluster }
    }

    /// Reopens a durable store from its data directory (see
    /// [`storage`](Self::storage)). The builder must be configured exactly
    /// as the one that created the store — the key material, codebooks and
    /// LH\* key layout are all re-derived, not persisted. An empty data
    /// dir degenerates to [`start`](Self::start).
    ///
    /// Panics under the same conditions as `start`.
    pub fn open(self) -> Result<EncryptedSearchStore, StoreError> {
        let (pipeline, cluster_config) = self.build_parts();
        let cluster = LhCluster::open(cluster_config)?;
        let client = cluster.client();
        let handle = StoreHandle {
            pipeline: Arc::new(pipeline),
            client,
        };
        Ok(EncryptedSearchStore { handle, cluster })
    }

    /// Splits the builder into its deterministic pipeline and the cluster
    /// config without starting anything — the server half of a
    /// multi-process deployment (`sdds serve` feeds the config to
    /// [`sdds_lh::serve`]). Every process of a cluster — ranks and
    /// clients alike — must construct an identically configured builder:
    /// the key material, codebooks and scan filter are all *derived*
    /// from the config, passphrase and training sample, never shipped
    /// over the wire.
    pub fn serve_parts(self) -> (IndexPipeline, ClusterConfig) {
        self.build_parts()
    }

    /// Connects to a served multi-process cluster as a client and
    /// returns a [`RemoteStore`]. The builder must be configured exactly
    /// like the serving processes' builders (see
    /// [`serve_parts`](Self::serve_parts)); the registry must be the one
    /// the servers were started with.
    pub fn connect(self, registry: sdds_net::SiteRegistry) -> RemoteStore {
        let (pipeline, cluster_config) = self.build_parts();
        let mut hub = sdds_lh::TcpCluster::connect(registry, cluster_config.net.clone());
        hub.set_client_timeout(cluster_config.client_timeout);
        RemoteStore {
            pipeline: Arc::new(pipeline),
            hub,
        }
    }

    /// The shared tail of [`start`](Self::start) and [`open`](Self::open):
    /// trains the deterministic pipeline and assembles the cluster config.
    fn build_parts(self) -> (IndexPipeline, ClusterConfig) {
        let keys = KeyMaterial::new(self.master);
        let need_training = self.config.encoding.is_some() || self.config.precompression.is_some();
        assert!(
            !need_training || !self.training.is_empty(),
            "encoding or pre-compression configured: call train() with a \
             representative sample"
        );
        let precompressor = self.config.precompression.map(|_| {
            IndexPipeline::train_precompressor(
                &self.config,
                self.training.iter().map(|s| s.as_str()),
            )
        });
        // Stage-2 training sees Stage-0 output when both are on
        let codebook = self.config.encoding.map(|_| {
            let streams: Vec<Vec<u16>> = self
                .training
                .iter()
                .map(|s| {
                    let raw: Vec<u16> = s.bytes().map(u16::from).collect();
                    match &precompressor {
                        Some(pre) => pre.compress(&raw),
                        None => raw,
                    }
                })
                .collect();
            IndexPipeline::train_codebook_streams(&self.config, &streams)
        });
        let pipeline =
            IndexPipeline::with_precompressor(self.config, keys, codebook, precompressor)
                // lint: allow(panic-freedom) -- the builder validated this config before handing it to us
                .expect("config validated");
        let filter = if self.scan_index {
            EncryptedIndexFilter::new(
                pipeline.config().element_bytes(),
                pipeline.config().tag_bits(),
            )
        } else {
            EncryptedIndexFilter::linear()
        };
        let cluster_config = ClusterConfig {
            bucket_capacity: self.bucket_capacity,
            parity: self.parity,
            filter: Arc::new(filter),
            storage: self.storage,
            net: self.net,
            drain_budget: self.drain_budget,
            client_timeout: self.op_timeout,
            obs: self.obs,
        };
        (pipeline, cluster_config)
    }
}

/// An encrypted, content-searchable scalable distributed data structure.
pub struct EncryptedSearchStore {
    handle: StoreHandle,
    cluster: LhCluster,
}

/// A client-side view of a multi-process (TCP) store: the deterministic
/// pipeline plus a connection hub to the serving ranks. Unlike
/// [`EncryptedSearchStore`] it owns no sites — dropping it leaves the
/// cluster running (use [`shutdown_cluster`](Self::shutdown_cluster) to
/// stop the servers).
pub struct RemoteStore {
    pipeline: Arc<IndexPipeline>,
    hub: sdds_lh::TcpCluster,
}

impl RemoteStore {
    /// A fresh, independently routable client handle (one per thread;
    /// each owns its endpoint and file image). The full
    /// [`StoreHandle`] API — ingest, get, search — works unchanged over
    /// TCP.
    pub fn handle(&self) -> StoreHandle {
        StoreHandle {
            pipeline: self.pipeline.clone(),
            client: self.hub.client(),
        }
    }

    /// The transformation pipeline (for experiments that bypass the
    /// cluster).
    pub fn pipeline(&self) -> &IndexPipeline {
        &self.pipeline
    }

    /// The underlying connection hub (traffic statistics, fault
    /// injection, shutdown).
    pub fn cluster(&self) -> &sdds_lh::TcpCluster {
        &self.hub
    }

    /// An observability collector scraping every serving rank's metrics,
    /// spans and snapshot history over the host control channel.
    pub fn obs(&self) -> sdds_lh::ClusterObs {
        self.hub.obs()
    }

    /// Stops every serving rank (the `serve` processes return).
    pub fn shutdown_cluster(&self) {
        self.hub.shutdown();
    }
}

/// An independent client handle on a running store: owns its own network
/// endpoint and file image, shares the key material and codebooks. Create
/// one per thread with [`EncryptedSearchStore::handle`] — the paper's
/// setting has many clients searching the same file concurrently.
pub struct StoreHandle {
    pipeline: Arc<IndexPipeline>,
    client: LhClient,
}

impl fmt::Debug for EncryptedSearchStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EncryptedSearchStore")
            .field("config", self.handle.pipeline.config())
            .field("buckets", &self.cluster.num_buckets())
            .finish()
    }
}

impl EncryptedSearchStore {
    /// Starts building a store for a validated configuration.
    pub fn builder(config: SchemeConfig) -> StoreBuilder {
        StoreBuilder {
            config,
            master: MasterKey::new([0; 16]),
            training: Vec::new(),
            bucket_capacity: 64,
            parity: None,
            scan_index: true,
            storage: StorageConfig::Mem,
            net: NetConfig::default(),
            drain_budget: sdds_lh::DEFAULT_DRAIN_BUDGET,
            op_timeout: Duration::from_secs(10),
            obs: sdds_lh::ObsOptions::default(),
        }
    }

    /// The transformation pipeline (for experiments that bypass the
    /// cluster).
    pub fn pipeline(&self) -> &IndexPipeline {
        &self.handle.pipeline
    }

    /// The underlying cluster (for traffic statistics and fault
    /// injection).
    pub fn cluster(&self) -> &LhCluster {
        &self.cluster
    }

    /// A fresh, independently routable client handle for concurrent use
    /// from other threads (each handle owns its endpoint and image).
    pub fn handle(&self) -> StoreHandle {
        StoreHandle {
            pipeline: self.handle.pipeline.clone(),
            client: self.cluster.client(),
        }
    }

    /// Stores a record — see [`StoreHandle::insert`].
    pub fn insert(&self, rid: u64, rc: &str) -> Result<(), StoreError> {
        self.handle.insert(rid, rc)
    }

    /// Bulk load — see [`StoreHandle::insert_many`].
    pub fn insert_many<'a, I>(&self, records: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        self.handle.insert_many(records)
    }

    /// Tuned bulk load — see [`StoreHandle::insert_many_with`].
    pub fn insert_many_with<'a, I>(
        &self,
        records: I,
        opts: IngestOptions,
    ) -> Result<IngestStats, StoreError>
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        self.handle.insert_many_with(records, opts)
    }

    /// Fetches and decrypts a record — see [`StoreHandle::get`].
    pub fn get(&self, rid: u64) -> Result<Option<String>, StoreError> {
        self.handle.get(rid)
    }

    /// Deletes a record — see [`StoreHandle::delete`].
    pub fn delete(&self, rid: u64) -> Result<bool, StoreError> {
        self.handle.delete(rid)
    }

    /// Bulk delete — see [`StoreHandle::delete_many`].
    pub fn delete_many<I>(&self, rids: I) -> Result<u64, StoreError>
    where
        I: IntoIterator<Item = u64>,
    {
        self.handle.delete_many(rids)
    }

    /// Substring search — see [`StoreHandle::search`].
    pub fn search(&self, pattern: &str) -> Result<Vec<u64>, StoreError> {
        self.handle.search(pattern)
    }

    /// Search with combination details — see
    /// [`StoreHandle::search_detailed`].
    pub fn search_detailed(&self, pattern: &str) -> Result<SearchOutcome, StoreError> {
        self.handle.search_detailed(pattern)
    }

    /// Occurrence offsets — see [`StoreHandle::search_positions`].
    pub fn search_positions(&self, pattern: &str) -> Result<HashMap<u64, Vec<usize>>, StoreError> {
        self.handle.search_positions(pattern)
    }

    /// Prefix search — see [`StoreHandle::search_starting_with`].
    pub fn search_starting_with(&self, pattern: &str) -> Result<Vec<u64>, StoreError> {
        self.handle.search_starting_with(pattern)
    }

    /// Exact-answer fetch — see [`StoreHandle::fetch_matching`].
    pub fn fetch_matching(&self, pattern: &str) -> Result<Vec<(u64, String)>, StoreError> {
        self.handle.fetch_matching(pattern)
    }

    /// Stops the cluster.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

impl StoreHandle {
    fn check_rid(&self, rid: u64) -> Result<(), StoreError> {
        let bits = self.pipeline.config().tag_bits();
        if rid >= (1u64 << (64 - bits)) {
            return Err(StoreError::RidTooLarge(rid));
        }
        Ok(())
    }

    /// Stores a record: one strongly encrypted copy plus all index
    /// records, each under its own LH\* key (§5). All `1 + c·k` inserts
    /// are pipelined into a single round-trip.
    pub fn insert(&self, rid: u64, rc: &str) -> Result<(), StoreError> {
        // Root of this operation's trace (unless an outer span is open):
        // the batched LH* inserts below inherit this context.
        let mut span = trace::child_span("client.insert");
        span.set_detail(rid);
        self.check_rid(rid)?;
        let mut batch = Vec::with_capacity(1 + self.pipeline.config().index_records_per_record());
        batch.push((
            self.pipeline.lh_key(rid, 0),
            self.pipeline.encrypt_record(rid, rc),
        ));
        for rec in self.pipeline.index_records_for(rid, rc) {
            let tag = self.pipeline.tag(rec.chunking, rec.site);
            batch.push((self.pipeline.lh_key(rid, tag), rec.body));
        }
        self.client.insert_batch(batch)?;
        Ok(())
    }

    /// Bulk load: pipelines many records' inserts into large batches —
    /// the fastest way to populate a file. Flushes in fixed-size windows
    /// (the [`IngestOptions`] default of ~1k index records per flush), so
    /// memory stays bounded for arbitrarily large inputs.
    pub fn insert_many<'a, I>(&self, records: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        self.insert_many_with(records, IngestOptions::default())
            .map(|_| ())
    }

    /// Bulk load with explicit threading and flush tuning.
    ///
    /// The record → index-record transform (Stages 1–3 plus the strong
    /// record encryption) fans out over `opts.threads` workers, each with
    /// its own reusable [`IngestScratch`]; the resulting keyed entries are
    /// flushed to the LH\* file **from the calling thread, in record
    /// order**. Every transform is deterministic in `(rid, rc)`, so the
    /// stored key → value content is byte-identical whatever the thread
    /// count (only the cluster's internal split timing varies run to run).
    ///
    /// On return the throughput gauges `core.ingest_records_per_sec`,
    /// `core.ingest_chunks_per_sec` and `core.ingest_bytes_per_sec`
    /// describe this load, and the per-stage gauges
    /// `core.{chunk,encode,disperse}_chunks_per_sec` give each stage's
    /// isolated rate (chunks over in-stage seconds).
    pub fn insert_many_with<'a, I>(
        &self,
        records: I,
        opts: IngestOptions,
    ) -> Result<IngestStats, StoreError>
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        let _span = trace::child_span("client.insert_many");
        let start = Instant::now();
        let pipeline: &IndexPipeline = &self.pipeline;
        let per = 1 + pipeline.config().index_records_per_record();
        let window_records = opts.flush_index_records.max(1).div_ceil(per).max(1);
        let pool = sdds_par::Pool::new(opts.threads);
        let index_records0 = sdds_obs::counter("core.ingest_index_records").get();
        let chunks0 = sdds_obs::counter("core.ingest_chunks").get();
        let bytes0 = sdds_obs::counter("core.ingest_index_bytes").get();
        let stage0: Vec<f64> = STAGE_HISTOGRAMS
            .iter()
            .map(|(hist, _)| sdds_obs::histogram(hist).sum())
            .collect();
        let mut stats = IngestStats::default();
        let mut iter = records.into_iter();
        loop {
            let window: Vec<(u64, &'a str)> = iter.by_ref().take(window_records).collect();
            if window.is_empty() {
                break;
            }
            for &(rid, _) in &window {
                self.check_rid(rid)?;
            }
            // a few spans per worker lets the cursor balance uneven records
            let span = window.len().div_ceil(pool.threads() * 4).max(1);
            let parts = pool.par_map_chunks_with(
                &window,
                span,
                IngestScratch::default,
                |scratch, _chunk_index, _start, records| {
                    let mut entries = Vec::with_capacity(records.len() * per);
                    let mut recs = Vec::new();
                    for &(rid, rc) in records {
                        entries.push((pipeline.lh_key(rid, 0), pipeline.encrypt_record(rid, rc)));
                        pipeline.index_records_into(rid, rc, scratch, &mut recs);
                        for rec in recs.drain(..) {
                            let tag = pipeline.tag(rec.chunking, rec.site);
                            entries.push((pipeline.lh_key(rid, tag), rec.body));
                        }
                    }
                    entries
                },
            );
            stats.records += window.len() as u64;
            // one ordered flush per window from the calling thread: the
            // file receives the same batches in the same order whatever
            // the thread count (bucket *split timing* still varies run to
            // run — the cluster splits concurrently — but the stored
            // key → value content is identical)
            let mut batch = Vec::with_capacity(window.len() * per);
            for part in parts {
                batch.extend(part);
            }
            self.client.insert_batch(batch)?;
        }
        stats.index_records = sdds_obs::counter("core.ingest_index_records").get() - index_records0;
        stats.chunks = sdds_obs::counter("core.ingest_chunks").get() - chunks0;
        stats.index_bytes = sdds_obs::counter("core.ingest_index_bytes").get() - bytes0;
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        sdds_obs::gauge("core.ingest_records_per_sec").set(stats.records_per_sec() as i64);
        sdds_obs::gauge("core.ingest_chunks_per_sec").set(stats.chunks_per_sec() as i64);
        sdds_obs::gauge("core.ingest_bytes_per_sec").set(stats.bytes_per_sec() as i64);
        for ((hist, gauge), &before) in STAGE_HISTOGRAMS.iter().zip(&stage0) {
            let in_stage = sdds_obs::histogram(hist).sum() - before;
            sdds_obs::gauge(gauge).set(rate(stats.chunks, in_stage) as i64);
        }
        Ok(stats)
    }

    /// Fetches and decrypts a record by RID.
    pub fn get(&self, rid: u64) -> Result<Option<String>, StoreError> {
        let mut span = trace::child_span("client.get");
        span.set_detail(rid);
        self.check_rid(rid)?;
        match self.client.lookup(self.pipeline.lh_key(rid, 0))? {
            Some(ct) => Ok(Some(self.pipeline.decrypt_record(rid, &ct)?)),
            None => Ok(None),
        }
    }

    /// Deletes a record and all its index records. All `1 + c·k` deletes
    /// are pipelined into a single round trip (mirroring [`insert`]).
    ///
    /// [`insert`]: Self::insert
    pub fn delete(&self, rid: u64) -> Result<bool, StoreError> {
        let mut span = trace::child_span("client.delete");
        span.set_detail(rid);
        self.check_rid(rid)?;
        let per = self.pipeline.config().index_records_per_record() as u32;
        let keys: Vec<u64> = (0..=per)
            .map(|tag| self.pipeline.lh_key(rid, tag))
            .collect();
        let existed = self.client.delete_batch(keys)?;
        // slot 0 is the tag-0 record-store copy: its existence is the
        // record's existence
        Ok(existed.first().copied().unwrap_or(false))
    }

    /// Bulk delete: pipelines every record's `1 + c·k` deletes into one
    /// batched round trip. Returns how many of the given records existed.
    pub fn delete_many<I>(&self, rids: I) -> Result<u64, StoreError>
    where
        I: IntoIterator<Item = u64>,
    {
        let _span = trace::child_span("client.delete_many");
        let per = self.pipeline.config().index_records_per_record() as u32;
        let mut keys = Vec::new();
        // input slots of the tag-0 record-store copies
        let mut record_slots = Vec::new();
        for rid in rids {
            self.check_rid(rid)?;
            record_slots.push(keys.len());
            keys.extend((0..=per).map(|tag| self.pipeline.lh_key(rid, tag)));
        }
        let existed = self.client.delete_batch(keys)?;
        Ok(record_slots
            .into_iter()
            .filter(|&slot| existed.get(slot).copied().unwrap_or(false))
            .count() as u64)
    }

    /// Searches for a substring pattern; returns matching RIDs (with the
    /// scheme's designed false positives).
    pub fn search(&self, pattern: &str) -> Result<Vec<u64>, StoreError> {
        Ok(self.search_detailed(pattern)?.rids)
    }

    /// Searches and reports combination details.
    ///
    /// On return the gauge `core.search_queries_per_sec` holds the
    /// process-lifetime average search rate (queries over in-search
    /// seconds), derived from the `core.search_seconds` histogram.
    pub fn search_detailed(&self, pattern: &str) -> Result<SearchOutcome, StoreError> {
        // Root of the search trace: the scan fan-out, every bucket's scan
        // span, and the client-side combination phase chain under it.
        let _span = trace::child_span("client.search");
        let timer = sdds_obs::histogram("core.search_seconds").start_timer();
        let outcome = self.search_uninstrumented(pattern);
        drop(timer);
        let hist = sdds_obs::histogram("core.search_seconds");
        let in_search = hist.sum();
        if in_search > 0.0 {
            sdds_obs::gauge("core.search_queries_per_sec")
                .set(rate(hist.count(), in_search) as i64);
        }
        outcome
    }

    fn search_uninstrumented(&self, pattern: &str) -> Result<SearchOutcome, StoreError> {
        let query = self.pipeline.build_query(pattern)?;
        let payload = query.encode();
        let matches = self.client.scan(&payload, false)?;
        let matched_index_records = matches.len();
        let c = self.pipeline.config().chunking.num_chunkings();
        let k = self.pipeline.config().k();
        // rid -> (chunking, site) -> body
        let mut by_rid: HashMap<u64, HashMap<(usize, usize), Vec<u8>>> = HashMap::new();
        for m in matches {
            let (rid, tag) = self.pipeline.parse_key(m.key);
            if tag == 0 {
                continue;
            }
            let idx = (tag - 1) as usize;
            let (chunking, site) = (idx / k, idx % k);
            if let Some(body) = m.value {
                by_rid
                    .entry(rid)
                    .or_default()
                    .insert((chunking, site), body);
            }
        }
        // The dispersion-site gather: the per-(chunking, site) bodies
        // collected above are combined into record verdicts (§4/§5).
        let mut combine_span = trace::child_span("search.combine");
        combine_span.set_detail(by_rid.len() as u64);
        let mut rids = Vec::new();
        let mut candidate_rids: Vec<u64> = by_rid.keys().copied().collect();
        candidate_rids.sort_unstable();
        let mut positions: HashMap<u64, Vec<usize>> = HashMap::new();
        for (&rid, bodies) in &by_rid {
            let mut chunking_offsets = Vec::with_capacity(c);
            for j in 0..c {
                chunking_offsets.push(self.chunking_offsets(&query, bodies, j, k));
            }
            let hit = match self.pipeline.config().search_mode.combination() {
                CombinationRule::All => chunking_offsets.iter().all(|o| !o.is_empty()),
                CombinationRule::Any => chunking_offsets.iter().any(|o| !o.is_empty()),
            };
            if hit {
                rids.push(rid);
                let mut offs: Vec<usize> = chunking_offsets.into_iter().flatten().collect();
                offs.sort_unstable();
                offs.dedup();
                positions.insert(rid, offs);
            }
        }
        rids.sort_unstable();
        sdds_obs::counter("core.search_candidates_pruned")
            .add(candidate_rids.len().saturating_sub(rids.len()) as u64);
        Ok(SearchOutcome {
            rids,
            candidate_rids,
            matched_index_records,
            positions,
        })
    }

    /// §4/§5 combination for one chunking: some series must match at the
    /// same chunk offset on **all** k dispersion sites. Returns the
    /// candidate occurrence offsets (record symbol positions) this
    /// chunking attests, empty when it attests none.
    fn chunking_offsets(
        &self,
        query: &crate::query::EncryptedQuery,
        bodies: &HashMap<(usize, usize), Vec<u8>>,
        chunking: usize,
        k: usize,
    ) -> Vec<usize> {
        // all sites of this chunking must have reported
        let site_bodies: Vec<&Vec<u8>> = match (0..k)
            .map(|site| bodies.get(&(chunking, site)))
            .collect::<Option<Vec<_>>>()
        {
            Some(b) => b,
            None => return Vec::new(),
        };
        let scheme = self.pipeline.config().chunking;
        let nseries = query
            .series_for(self.pipeline.tag(chunking, 0))
            .map(|s| s.len())
            .unwrap_or(0);
        let mut offsets = Vec::new();
        for d in 0..nseries {
            let mut common: Option<Vec<usize>> = None;
            for (site, body) in site_bodies.iter().enumerate() {
                let tag = self.pipeline.tag(chunking, site);
                let Some(series) = query.series_for(tag) else {
                    return Vec::new();
                };
                let positions = query.match_positions(body, &series[d]);
                common = Some(match common {
                    None => positions,
                    Some(prev) => intersect_sorted(&prev, &positions),
                });
                if common.as_ref().is_some_and(|c| c.is_empty()) {
                    break;
                }
            }
            let drop = query.series_drops.get(d).copied().unwrap_or(d);
            for m in common.unwrap_or_default() {
                // the drop-d series starting at chunk m implies the query
                // occurrence begins at chunk_start(j, m) - drop (an offset
                // into the Stage-1 symbol stream — the pair-compressed
                // stream when Stage 0 is on)
                let start = scheme.chunk_start(chunking, m) - drop as isize;
                if start >= 0 {
                    offsets.push(start as usize);
                }
            }
        }
        offsets
    }

    /// Searches and reports the candidate occurrence offsets inside each
    /// matching record — "all sites report a hit at the same offset" (§5)
    /// turned into a client API.
    pub fn search_positions(&self, pattern: &str) -> Result<HashMap<u64, Vec<usize>>, StoreError> {
        Ok(self.search_detailed(pattern)?.positions)
    }

    /// Prefix search: records whose content *starts with* the pattern —
    /// the index-level form of the paper's anchored queries ("we should
    /// actually search for 'Schwarz ' with a leading space", §2.5).
    pub fn search_starting_with(&self, pattern: &str) -> Result<Vec<u64>, StoreError> {
        let outcome = self.search_detailed(pattern)?;
        let mut rids: Vec<u64> = outcome
            .positions
            .iter()
            .filter(|(_, offs)| offs.contains(&0))
            .map(|(&rid, _)| rid)
            .collect();
        rids.sort_unstable();
        Ok(rids)
    }

    /// Convenience: search, fetch, decrypt, and filter out the scheme's
    /// false positives client-side (final precision step an application
    /// would do).
    pub fn fetch_matching(&self, pattern: &str) -> Result<Vec<(u64, String)>, StoreError> {
        let mut out = Vec::new();
        for rid in self.search(pattern)? {
            if let Some(rc) = self.get(rid)? {
                if rc.contains(pattern) {
                    out.push((rid, rc));
                } else {
                    sdds_obs::counter("core.search_false_positives").inc();
                }
            }
        }
        Ok(out)
    }
}
