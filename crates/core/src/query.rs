//! The encrypted query object and the bucket-side scan filter.
//!
//! The query carries, for every index-record tag (chunking × dispersion
//! site), the encrypted-and-dispersed chunk series of each alignment drop.
//! Bucket sites match series against index-record bodies by **ciphertext
//! equality of consecutive elements** — they never see plaintext, keys, or
//! the dispersion matrix.

use crate::pack::body_elements;
use sdds_lh::ScanFilter;
use serde::{Deserialize, Serialize};

/// How sites match query series against index-record bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueryKind {
    /// Ciphertext equality of fixed-width elements (ECB chunks, dispersed
    /// shares) — the paper's main scheme.
    #[default]
    Equality,
    /// SWP trapdoor evaluation: bodies hold 16-byte cipherwords, series
    /// hold 32-byte trapdoors (§8 extension).
    Swp,
}

/// A compiled, encrypted search query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedQuery {
    /// Tag width of the LH\* key layout.
    pub tag_bits: u32,
    /// Fixed element width in the record bodies (per chunk).
    pub element_bytes: usize,
    /// Matching semantics.
    #[serde(default)]
    pub kind: QueryKind,
    /// Alignment drop of each series (indexes the per-tag body lists;
    /// identical across tags). Needed to translate a chunk-level match
    /// back into a record offset.
    #[serde(default)]
    pub series_drops: Vec<usize>,
    /// Per tag: the encrypted series bodies (one per alignment drop).
    pub per_tag: Vec<(u32, Vec<Vec<u8>>)>,
}

impl EncryptedQuery {
    /// Serializes for the scan wire.
    pub fn encode(&self) -> Vec<u8> {
        // lint: allow(panic-freedom) -- plain-data struct with no map keys or non-string tags; serialization is infallible
        serde_json::to_vec(self).expect("query serializes")
    }

    /// Deserializes from the scan wire.
    pub fn decode(bytes: &[u8]) -> Option<EncryptedQuery> {
        serde_json::from_slice(bytes).ok()
    }

    /// The series bodies for one tag, if present.
    pub fn series_for(&self, tag: u32) -> Option<&[Vec<u8>]> {
        self.per_tag
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, s)| s.as_slice())
    }

    /// All positions (chunk indices) at which `series` matches `body`.
    pub fn match_positions(&self, body: &[u8], series: &[u8]) -> Vec<usize> {
        match self.kind {
            QueryKind::Equality => {
                if !body.len().is_multiple_of(self.element_bytes)
                    || !series.len().is_multiple_of(self.element_bytes)
                {
                    return Vec::new();
                }
                let body_el = body_elements(body, self.element_bytes);
                let series_el = body_elements(series, self.element_bytes);
                sdds_chunk::find_series(&body_el, &series_el)
            }
            QueryKind::Swp => {
                use crate::swp_chunks::{cipherword_matches, CIPHERWORD_BYTES, TRAPDOOR_BYTES};
                if !body.len().is_multiple_of(CIPHERWORD_BYTES)
                    || !series.len().is_multiple_of(TRAPDOOR_BYTES)
                    || series.is_empty()
                {
                    return Vec::new();
                }
                let words = body_elements(body, CIPHERWORD_BYTES);
                let trapdoors = body_elements(series, TRAPDOOR_BYTES);
                if trapdoors.len() > words.len() {
                    return Vec::new();
                }
                (0..=words.len() - trapdoors.len())
                    .filter(|&start| {
                        trapdoors
                            .iter()
                            .enumerate()
                            .all(|(i, t)| cipherword_matches(words[start + i], t))
                    })
                    .collect()
            }
        }
    }

    /// True if any series of `tag` occurs in `body` (the bucket-side
    /// predicate).
    pub fn matches_body(&self, tag: u32, body: &[u8]) -> bool {
        self.series_for(tag)
            .map(|series| {
                series
                    .iter()
                    .any(|s| !self.match_positions(body, s).is_empty())
            })
            .unwrap_or(false)
    }
}

/// The [`ScanFilter`] installed at every bucket of an encrypted store.
///
/// Record-store copies (tag 0) never match; index records match when any
/// encrypted series occurs in their body.
#[derive(Debug, Default, Clone, Copy)]
pub struct EncryptedIndexFilter;

impl ScanFilter for EncryptedIndexFilter {
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool {
        let Some(q) = EncryptedQuery::decode(query) else {
            return false;
        };
        // tag_bits comes off the wire: validate before shifting with it
        if q.tag_bits == 0 || q.tag_bits > 32 || q.element_bytes == 0 {
            return false;
        }
        let tag = (key & ((1 << q.tag_bits) - 1)) as u32;
        if tag == 0 {
            return false; // strongly encrypted record store copy
        }
        q.matches_body(tag, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> EncryptedQuery {
        EncryptedQuery {
            tag_bits: 2,
            element_bytes: 2,
            kind: QueryKind::Equality,
            series_drops: vec![0],
            per_tag: vec![
                (1, vec![vec![0xAA, 0xBB, 0xCC, 0xDD]]), // elements [AABB][CCDD]
                (2, vec![vec![0x11, 0x22]]),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = query();
        assert_eq!(EncryptedQuery::decode(&q.encode()), Some(q));
        assert_eq!(EncryptedQuery::decode(b"junk"), None);
    }

    #[test]
    fn match_positions_finds_consecutive_elements() {
        let q = query();
        let body = vec![0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF];
        assert_eq!(q.match_positions(&body, &[0xAA, 0xBB, 0xCC, 0xDD]), vec![1]);
        assert!(q
            .match_positions(&body, &[0xCC, 0xDD, 0xAA, 0xBB])
            .is_empty());
    }

    #[test]
    fn ragged_bodies_never_match() {
        let q = query();
        assert!(q.match_positions(&[1, 2, 3], &[1, 2]).is_empty());
    }

    #[test]
    fn matches_body_dispatches_on_tag() {
        let q = query();
        let body = vec![0xAA, 0xBB, 0xCC, 0xDD];
        assert!(q.matches_body(1, &body));
        assert!(!q.matches_body(2, &body));
        assert!(!q.matches_body(3, &body), "unknown tag");
    }

    #[test]
    fn filter_ignores_record_store_and_garbage() {
        let q = query();
        let f = EncryptedIndexFilter;
        let body = vec![0xAA, 0xBB, 0xCC, 0xDD];
        // key with tag 1 matches, tag 0 (record store) never does
        assert!(f.matches(0b100 | 1, &body, &q.encode()));
        assert!(!f.matches(0b100, &body, &q.encode()));
        assert!(!f.matches(1, &body, b"not a query"));
    }
}
