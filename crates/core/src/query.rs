//! The encrypted query object and the bucket-side scan filter.
//!
//! The query carries, for every index-record tag (chunking × dispersion
//! site), the encrypted-and-dispersed chunk series of each alignment drop.
//! Bucket sites match series against index-record bodies by **ciphertext
//! equality of consecutive elements** — they never see plaintext, keys, or
//! the dispersion matrix.

use crate::pack::body_elements;
use sdds_lh::{PreparedQuery, ScanFilter};
use serde::{Deserialize, Serialize};

/// How sites match query series against index-record bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueryKind {
    /// Ciphertext equality of fixed-width elements (ECB chunks, dispersed
    /// shares) — the paper's main scheme.
    #[default]
    Equality,
    /// SWP trapdoor evaluation: bodies hold 16-byte cipherwords, series
    /// hold 32-byte trapdoors (§8 extension).
    Swp,
}

/// A compiled, encrypted search query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedQuery {
    /// Tag width of the LH\* key layout.
    pub tag_bits: u32,
    /// Fixed element width in the record bodies (per chunk).
    pub element_bytes: usize,
    /// Matching semantics.
    #[serde(default)]
    pub kind: QueryKind,
    /// Alignment drop of each series (indexes the per-tag body lists;
    /// identical across tags). Needed to translate a chunk-level match
    /// back into a record offset.
    #[serde(default)]
    pub series_drops: Vec<usize>,
    /// Per tag: the encrypted series bodies (one per alignment drop).
    pub per_tag: Vec<(u32, Vec<Vec<u8>>)>,
}

impl EncryptedQuery {
    /// Serializes for the scan wire.
    pub fn encode(&self) -> Vec<u8> {
        // lint: allow(panic-freedom) -- plain-data struct with no map keys or non-string tags; serialization is infallible
        serde_json::to_vec(self).expect("query serializes")
    }

    /// Deserializes from the scan wire.
    pub fn decode(bytes: &[u8]) -> Option<EncryptedQuery> {
        serde_json::from_slice(bytes).ok()
    }

    /// The series bodies for one tag, if present.
    pub fn series_for(&self, tag: u32) -> Option<&[Vec<u8>]> {
        self.per_tag
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, s)| s.as_slice())
    }

    /// All positions (chunk indices) at which `series` matches `body`.
    pub fn match_positions(&self, body: &[u8], series: &[u8]) -> Vec<usize> {
        match self.kind {
            QueryKind::Equality => {
                if !body.len().is_multiple_of(self.element_bytes)
                    || !series.len().is_multiple_of(self.element_bytes)
                {
                    return Vec::new();
                }
                let body_el = body_elements(body, self.element_bytes);
                let series_el = body_elements(series, self.element_bytes);
                sdds_chunk::find_series(&body_el, &series_el)
            }
            QueryKind::Swp => {
                use crate::swp_chunks::{cipherword_matches, CIPHERWORD_BYTES, TRAPDOOR_BYTES};
                if !body.len().is_multiple_of(CIPHERWORD_BYTES)
                    || !series.len().is_multiple_of(TRAPDOOR_BYTES)
                    || series.is_empty()
                {
                    return Vec::new();
                }
                let words = body_elements(body, CIPHERWORD_BYTES);
                let trapdoors = body_elements(series, TRAPDOOR_BYTES);
                if trapdoors.len() > words.len() {
                    return Vec::new();
                }
                (0..=words.len() - trapdoors.len())
                    .filter(|&start| {
                        trapdoors
                            .iter()
                            .enumerate()
                            .all(|(i, t)| cipherword_matches(words[start + i], t))
                    })
                    .collect()
            }
        }
    }

    /// True if any series of `tag` occurs in `body` (the bucket-side
    /// predicate).
    pub fn matches_body(&self, tag: u32, body: &[u8]) -> bool {
        self.series_for(tag)
            .map(|series| {
                series
                    .iter()
                    .any(|s| !self.match_positions(body, s).is_empty())
            })
            .unwrap_or(false)
    }
}

/// True when `tag_bits` is a usable tag width for the LH\* key layout.
fn valid_tag_bits(tag_bits: u32) -> bool {
    (1..=32).contains(&tag_bits)
}

/// The [`ScanFilter`] installed at every bucket of an encrypted store.
///
/// Record-store copies (tag 0) never match; index records match when any
/// encrypted series occurs in their body.
///
/// Built with [`new`](EncryptedIndexFilter::new) the filter asks buckets
/// to maintain a posting index over `element_bytes`-wide elements and
/// prepared queries expose probe elements, so scans confirm full series
/// matches only on candidate records. Built with
/// [`linear`](EncryptedIndexFilter::linear) (also the `Default`) buckets
/// keep no index and every scan sweeps linearly — the oracle path.
#[derive(Debug, Default, Clone, Copy)]
pub struct EncryptedIndexFilter {
    /// Element width buckets should index, or `None` for linear scans.
    index_element_bytes: Option<usize>,
    /// Tag width of the store's key layout, used to keep record-store
    /// copies (tag 0) out of the index. 0 = unknown (index everything).
    tag_bits: u32,
}

impl EncryptedIndexFilter {
    /// An index-enabled filter for a store whose bodies hold
    /// `element_bytes`-wide elements under a `tag_bits` key layout.
    pub fn new(element_bytes: usize, tag_bits: u32) -> EncryptedIndexFilter {
        EncryptedIndexFilter {
            index_element_bytes: (element_bytes > 0).then_some(element_bytes),
            tag_bits,
        }
    }

    /// A filter that never builds a posting index; every scan is a full
    /// linear sweep (the baseline and consistency oracle).
    pub fn linear() -> EncryptedIndexFilter {
        EncryptedIndexFilter::default()
    }
}

/// An [`EncryptedQuery`] decoded and validated once per `ScanReq`.
///
/// `query` is `None` when the wire bytes failed to decode or validate —
/// such a query matches nothing, and `probes` is `Some(vec![])` so
/// indexed buckets answer instantly with zero candidates.
struct PreparedEncryptedQuery {
    query: Option<EncryptedQuery>,
    /// First element of every well-formed series, deduplicated — every
    /// matching record must contain at least one of these. `None` when
    /// the query kind cannot be probed by element equality (SWP).
    probes: Option<Vec<Vec<u8>>>,
}

impl PreparedEncryptedQuery {
    fn from_wire(bytes: &[u8]) -> PreparedEncryptedQuery {
        let invalid = PreparedEncryptedQuery {
            query: None,
            probes: Some(Vec::new()),
        };
        let Some(q) = EncryptedQuery::decode(bytes) else {
            return invalid;
        };
        // tag_bits comes off the wire: validate before shifting with it
        if !valid_tag_bits(q.tag_bits) || q.element_bytes == 0 {
            return invalid;
        }
        let probes = probe_elements(&q);
        PreparedEncryptedQuery {
            query: Some(q),
            probes,
        }
    }
}

/// The posting-index probe set of `q`: the first element of every series
/// body, across all tags, deduplicated. Sound because a series matches a
/// body only if the body contains the series' first element somewhere;
/// empty or ragged series match nothing (`find_series`), so skipping them
/// loses no candidates. SWP trapdoors are matched by keyed test, not
/// ciphertext equality, so SWP queries cannot be probed at all.
fn probe_elements(q: &EncryptedQuery) -> Option<Vec<Vec<u8>>> {
    if q.kind != QueryKind::Equality {
        return None;
    }
    let w = q.element_bytes;
    let mut probes: Vec<Vec<u8>> = Vec::new();
    for (_, series) in &q.per_tag {
        for s in series {
            if s.is_empty() || !s.len().is_multiple_of(w) {
                continue; // matches nothing, contributes no candidates
            }
            let first = s[..w].to_vec();
            if !probes.contains(&first) {
                probes.push(first);
            }
        }
    }
    Some(probes)
}

impl PreparedQuery for PreparedEncryptedQuery {
    fn matches(&self, key: u64, value: &[u8]) -> bool {
        let Some(q) = &self.query else {
            return false;
        };
        let tag = (key & ((1 << q.tag_bits) - 1)) as u32;
        if tag == 0 {
            return false; // strongly encrypted record store copy
        }
        q.matches_body(tag, value)
    }

    fn probes(&self) -> Option<&[Vec<u8>]> {
        self.probes.as_deref()
    }
}

impl ScanFilter for EncryptedIndexFilter {
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool {
        // decode-per-record fallback; `prepare` is the hot path
        PreparedEncryptedQuery::from_wire(query).matches(key, value)
    }

    fn prepare<'q>(&'q self, query: &'q [u8]) -> Box<dyn PreparedQuery + 'q> {
        Box::new(PreparedEncryptedQuery::from_wire(query))
    }

    fn index_element_bytes(&self) -> Option<usize> {
        self.index_element_bytes
    }

    fn should_index(&self, key: u64) -> bool {
        // record-store copies (tag 0) never match any query: keep them
        // out of the posting index entirely
        if !valid_tag_bits(self.tag_bits) {
            return true;
        }
        (key & ((1 << self.tag_bits) - 1)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> EncryptedQuery {
        EncryptedQuery {
            tag_bits: 2,
            element_bytes: 2,
            kind: QueryKind::Equality,
            series_drops: vec![0],
            per_tag: vec![
                (1, vec![vec![0xAA, 0xBB, 0xCC, 0xDD]]), // elements [AABB][CCDD]
                (2, vec![vec![0x11, 0x22]]),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = query();
        assert_eq!(EncryptedQuery::decode(&q.encode()), Some(q));
        assert_eq!(EncryptedQuery::decode(b"junk"), None);
    }

    #[test]
    fn match_positions_finds_consecutive_elements() {
        let q = query();
        let body = vec![0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF];
        assert_eq!(q.match_positions(&body, &[0xAA, 0xBB, 0xCC, 0xDD]), vec![1]);
        assert!(q
            .match_positions(&body, &[0xCC, 0xDD, 0xAA, 0xBB])
            .is_empty());
    }

    #[test]
    fn ragged_bodies_never_match() {
        let q = query();
        assert!(q.match_positions(&[1, 2, 3], &[1, 2]).is_empty());
    }

    #[test]
    fn matches_body_dispatches_on_tag() {
        let q = query();
        let body = vec![0xAA, 0xBB, 0xCC, 0xDD];
        assert!(q.matches_body(1, &body));
        assert!(!q.matches_body(2, &body));
        assert!(!q.matches_body(3, &body), "unknown tag");
    }

    #[test]
    fn filter_ignores_record_store_and_garbage() {
        let q = query();
        let f = EncryptedIndexFilter::linear();
        let body = vec![0xAA, 0xBB, 0xCC, 0xDD];
        // key with tag 1 matches, tag 0 (record store) never does
        assert!(f.matches(0b100 | 1, &body, &q.encode()));
        assert!(!f.matches(0b100, &body, &q.encode()));
        assert!(!f.matches(1, &body, b"not a query"));
    }

    #[test]
    fn prepared_query_agrees_with_unprepared_matches() {
        let q = query();
        let f = EncryptedIndexFilter::new(2, 2);
        let wire = q.encode();
        let prepared = f.prepare(&wire);
        let body = vec![0xAA, 0xBB, 0xCC, 0xDD];
        for k in [0b100 | 1, 0b100 | 2, 0b100, 1, 2] {
            assert_eq!(
                prepared.matches(k, &body),
                f.matches(k, &body, &wire),
                "prepared and unprepared disagree on k={k}"
            );
        }
    }

    #[test]
    fn probes_are_first_elements_deduplicated() {
        let q = query();
        let f = EncryptedIndexFilter::new(2, 2);
        let wire = q.encode();
        let prepared = f.prepare(&wire);
        let probes = prepared.probes().expect("equality queries have probes");
        // tag 1 series starts [AA BB], tag 2 series starts [11 22]
        assert_eq!(probes, [vec![0xAA, 0xBB], vec![0x11, 0x22]]);
    }

    #[test]
    fn invalid_queries_probe_to_nothing() {
        let f = EncryptedIndexFilter::new(2, 2);
        let prepared = f.prepare(b"not a query");
        assert_eq!(prepared.probes(), Some(&[][..]), "zero candidates");
        assert!(!prepared.matches(0b100 | 1, &[0xAA, 0xBB]));
    }

    #[test]
    fn swp_queries_fall_back_to_linear() {
        let mut q = query();
        q.kind = QueryKind::Swp;
        let f = EncryptedIndexFilter::new(2, 2);
        let wire = q.encode();
        let prepared = f.prepare(&wire);
        assert!(prepared.probes().is_none(), "SWP cannot be probed");
    }

    #[test]
    fn empty_and_ragged_series_contribute_no_probes() {
        let mut q = query();
        q.per_tag = vec![(1, vec![vec![], vec![0xAA]])]; // empty + ragged
        let f = EncryptedIndexFilter::new(2, 2);
        let wire = q.encode();
        let prepared = f.prepare(&wire);
        assert_eq!(prepared.probes(), Some(&[][..]));
    }

    #[test]
    fn index_config_round_trips() {
        let f = EncryptedIndexFilter::new(16, 3);
        assert_eq!(f.index_element_bytes(), Some(16));
        assert!(!f.should_index(0b1000), "tag 0 stays out of the index");
        assert!(f.should_index(0b1001));
        let lin = EncryptedIndexFilter::linear();
        assert!(lin.index_element_bytes().is_none());
        assert!(
            lin.should_index(0b1000),
            "linear filter indexes nothing anyway"
        );
    }
}
