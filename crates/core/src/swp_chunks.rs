//! SWP-style chunk encryption — the paper's §8 future work, implemented.
//!
//! "Finally, Song's et al. method of encrypting while allowing for word
//! searches should be adapted to our system." The adaptation treats each
//! Stage-1 chunk as an SWP "word": the stored cipherword is the chunk's
//! pre-encryption XORed with a checkable pseudorandom stream keyed by
//! record, chunking and position. Two consequences versus ECB chunks:
//!
//! * **at rest, equal chunks look different** — an index site can no
//!   longer run the frequency analysis that Stages 2/3 exist to blunt;
//! * **matching requires a trapdoor**: the site learns chunk equality only
//!   for the chunks a query discloses, and only while it holds the query.
//!
//! The cost is storage (16 bytes per chunk regardless of chunk size) and
//! query size (32 bytes per chunk), and the mode cannot compose with
//! Stage-3 dispersion (shares require deterministic chunk images).

use sdds_cipher::{Aes128, KeyMaterial};

/// Stored cipherword width.
pub(crate) const CIPHERWORD_BYTES: usize = 16;
/// Query trapdoor width (pre-encryption ‖ check key).
pub(crate) const TRAPDOOR_BYTES: usize = 32;

/// Chunk-granular SWP for one chunking.
pub(crate) struct ChunkSwp {
    /// E — chunk pre-encryption.
    word_cipher: Aes128,
    /// f — derives the per-chunk check key from the left half.
    key_derive: Aes128,
    /// source of the position stream S.
    stream: Aes128,
}

impl ChunkSwp {
    pub(crate) fn new(keys: &KeyMaterial, chunking: u32) -> ChunkSwp {
        ChunkSwp {
            word_cipher: Aes128::new(&keys.swp_key("word", chunking)),
            key_derive: Aes128::new(&keys.swp_key("kd", chunking)),
            stream: Aes128::new(&keys.swp_key("stream", chunking)),
        }
    }

    /// `X = E(chunk)`: the deterministic pre-encryption of a chunk value.
    fn pre_encrypt(&self, chunk_value: u128) -> [u8; 16] {
        let mut x = chunk_value.to_le_bytes();
        self.word_cipher.encrypt_block(&mut x);
        x
    }

    fn check_key(&self, left: &[u8]) -> [u8; 16] {
        self.key_derive.prf(left)
    }

    /// Encrypts one chunk for storage: `C = X ⊕ ⟨S, F_{k}(S)⟩` with `S`
    /// derived from `(rid, position)` so re-inserting a record is
    /// idempotent while equal chunks at different positions (or in
    /// different records) encrypt differently.
    pub(crate) fn encrypt_chunk(
        &self,
        rid: u64,
        position: u64,
        chunk_value: u128,
    ) -> [u8; CIPHERWORD_BYTES] {
        let x = self.pre_encrypt(chunk_value);
        let (l, r) = x.split_at(8);
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&rid.to_le_bytes());
        seed[8..].copy_from_slice(&position.to_le_bytes());
        let s = &self.stream.prf(&seed)[..8];
        let ki = self.check_key(l);
        let f = &Aes128::new(&ki).prf(s)[..8];
        let mut c = [0u8; CIPHERWORD_BYTES];
        for b in 0..8 {
            c[b] = l[b] ^ s[b];
            c[8 + b] = r[b] ^ f[b];
        }
        c
    }

    /// Builds the search trapdoor for a chunk value: `X ‖ k_X`.
    pub(crate) fn trapdoor(&self, chunk_value: u128) -> [u8; TRAPDOOR_BYTES] {
        let x = self.pre_encrypt(chunk_value);
        let kw = self.check_key(&x[..8]);
        let mut t = [0u8; TRAPDOOR_BYTES];
        t[..16].copy_from_slice(&x);
        t[16..].copy_from_slice(&kw);
        t
    }
}

/// The stateless site-side check (a site needs no keys): does the stored
/// cipherword hold the trapdoor's chunk?
pub(crate) fn cipherword_matches(cipherword: &[u8], trapdoor: &[u8]) -> bool {
    if cipherword.len() != CIPHERWORD_BYTES || trapdoor.len() != TRAPDOOR_BYTES {
        return false;
    }
    let x = &trapdoor[..16];
    // lint: allow(panic-freedom) -- the length guard above pins trapdoor to TRAPDOOR_BYTES (32), so [16..] is exactly 16 bytes
    let kw: [u8; 16] = trapdoor[16..].try_into().expect("length checked");
    let mut s = [0u8; 8];
    let mut t = [0u8; 8];
    for b in 0..8 {
        s[b] = cipherword[b] ^ x[b];
        t[b] = cipherword[8 + b] ^ x[8 + b];
    }
    let f = Aes128::new(&kw).prf(&s);
    f[..8] == t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_cipher::MasterKey;

    fn swp() -> ChunkSwp {
        ChunkSwp::new(&KeyMaterial::new(MasterKey::new([6; 16])), 0)
    }

    #[test]
    fn trapdoor_matches_own_chunk() {
        let s = swp();
        let c = s.encrypt_chunk(1, 0, 0xABCD);
        assert!(cipherword_matches(&c, &s.trapdoor(0xABCD)));
        assert!(!cipherword_matches(&c, &s.trapdoor(0xABCE)));
    }

    #[test]
    fn equal_chunks_encrypt_differently_across_positions() {
        // the whole point versus ECB
        let s = swp();
        let c0 = s.encrypt_chunk(1, 0, 0xAB);
        let c1 = s.encrypt_chunk(1, 1, 0xAB);
        let c2 = s.encrypt_chunk(2, 0, 0xAB);
        assert_ne!(c0, c1);
        assert_ne!(c0, c2);
        // yet the single trapdoor finds all of them
        let t = s.trapdoor(0xAB);
        assert!(cipherword_matches(&c0, &t));
        assert!(cipherword_matches(&c1, &t));
        assert!(cipherword_matches(&c2, &t));
    }

    #[test]
    fn reinsertion_is_idempotent() {
        let s = swp();
        assert_eq!(s.encrypt_chunk(9, 3, 0xFF), s.encrypt_chunk(9, 3, 0xFF));
    }

    #[test]
    fn per_chunking_keys_are_independent() {
        let keys = KeyMaterial::new(MasterKey::new([6; 16]));
        let s0 = ChunkSwp::new(&keys, 0);
        let s1 = ChunkSwp::new(&keys, 1);
        let c = s0.encrypt_chunk(1, 0, 0xAB);
        assert!(!cipherword_matches(&c, &s1.trapdoor(0xAB)));
    }

    #[test]
    fn malformed_inputs_never_match() {
        let s = swp();
        let c = s.encrypt_chunk(1, 0, 7);
        let t = s.trapdoor(7);
        assert!(!cipherword_matches(&c[..8], &t));
        assert!(!cipherword_matches(&c, &t[..16]));
    }
}
