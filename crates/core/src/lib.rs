//! The complete encrypted, content-searchable SDDS of Schwarz, Tsui &
//! Litwin (ICDE 2006).
//!
//! A record `(RID, RC)` is stored as (Figure 3 of the paper):
//!
//! * **one record store record** — the RC strongly encrypted (AES-CBC with
//!   a per-RID IV) under a key no index site ever sees;
//! * **`c · k` index records** — for each of `c` chunkings (Stage 1,
//!   `sdds-chunk`), the RC's chunks are optionally compressed by the
//!   frequency-equalising codebook (Stage 2, `sdds-encode`), encrypted
//!   deterministically chunk-by-chunk (ECB via the width-exact PRP of
//!   `sdds-cipher`), and dispersed over `k` sites by an invertible matrix
//!   over GF(2^g) (Stage 3, `sdds-disperse`).
//!
//! All of these live in one LH\* file (`sdds-lh`): the LH\* key is the RID
//! with a tag in its least significant bits ("the keys for the index
//! records are made up of the RID and the chunking identifier and the
//! dispersion site identifier appended as the least significant bits",
//! §5), so sibling records scatter across buckets.
//!
//! A search chunks the query at every needed alignment, pushes it through
//! the same compress/encrypt/disperse pipeline, and ships it to all bucket
//! sites, which match consecutive chunks *on ciphertext equality only*.
//! The client combines per-chunking verdicts (requiring all dispersion
//! sites of a chunking to match at the same offset) and returns RIDs —
//! false positives included, exactly as the paper trades them for secrecy.
//!
//! ```no_run
//! use sdds_core::{EncryptedSearchStore, SchemeConfig};
//!
//! let config = SchemeConfig::basic(4, 4).unwrap();
//! let store = EncryptedSearchStore::builder(config)
//!     .passphrase("correct horse battery staple")
//!     .start();
//! store.insert(7, "SCHWARZ THOMAS").unwrap();
//! let hits = store.search("THOMAS").unwrap();
//! assert_eq!(hits, vec![7]);
//! assert_eq!(store.get(7).unwrap(), Some("SCHWARZ THOMAS".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pack;
mod pipeline;
mod query;
mod store;
mod swp_chunks;

pub use config::{
    ConfigError, EncodingConfig, EncodingGranularity, IndexKind, PrecompressionConfig, SchemeConfig,
};
pub use pipeline::{IndexPipeline, IndexRecord, IngestScratch, StorageReport};
pub use query::{EncryptedIndexFilter, EncryptedQuery};
pub use store::{
    EncryptedSearchStore, IngestOptions, IngestStats, RemoteStore, SearchOutcome, StoreBuilder,
    StoreError, StoreHandle,
};
// The storage backend selectors `StoreBuilder::storage` takes.
pub use sdds_lh::{DiskOptions, FsyncPolicy, StorageConfig};
