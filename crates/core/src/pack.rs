//! Bit-packing helpers: chunks of symbols ↔ integer chunk values ↔ the
//! fixed-width byte encodings stored in index record bodies.

/// Packs a chunk of `f`-bit symbols into a single value, first symbol in
/// the most significant position.
pub(crate) fn pack_chunk(symbols: &[u16], symbol_bits: u32) -> u128 {
    debug_assert!(symbols.len() * symbol_bits as usize <= 128);
    symbols
        .iter()
        .fold(0u128, |acc, &s| (acc << symbol_bits) | u128::from(s))
}

/// Serializes a value into `nbytes` little-endian bytes.
pub(crate) fn value_to_bytes(value: u128, nbytes: usize) -> Vec<u8> {
    debug_assert!(nbytes <= 16);
    value.to_le_bytes()[..nbytes].to_vec()
}

/// Reads a value back from `nbytes` little-endian bytes.
#[cfg(test)]
pub(crate) fn value_from_bytes(bytes: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..bytes.len()].copy_from_slice(bytes);
    u128::from_le_bytes(buf)
}

/// Splits a record body into its fixed-width elements.
pub(crate) fn body_elements(body: &[u8], element_bytes: usize) -> Vec<&[u8]> {
    debug_assert_eq!(body.len() % element_bytes, 0, "ragged index body");
    body.chunks(element_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_msb_first() {
        assert_eq!(pack_chunk(&[0xAB, 0xCD], 8), 0xABCD);
        assert_eq!(pack_chunk(&[0b10, 0b01], 2), 0b1001);
        assert_eq!(pack_chunk(&[], 8), 0);
    }

    #[test]
    fn value_bytes_roundtrip() {
        for v in [0u128, 1, 0xFFFF, 0xDEAD_BEEF, u64::MAX as u128] {
            let nbytes = 16;
            assert_eq!(value_from_bytes(&value_to_bytes(v, nbytes)), v);
        }
        // truncated widths keep the low bytes
        assert_eq!(value_from_bytes(&value_to_bytes(0x1234, 2)), 0x1234);
        assert_eq!(value_from_bytes(&value_to_bytes(0x34, 1)), 0x34);
    }

    #[test]
    fn body_elements_split_evenly() {
        let body = vec![1u8, 2, 3, 4, 5, 6];
        let elems = body_elements(&body, 2);
        assert_eq!(elems, vec![&[1u8, 2][..], &[3, 4], &[5, 6]]);
    }
}
