//! Scheme parameters and their validation.

use sdds_chunk::{ChunkingScheme, PartialChunkPolicy, SearchMode};
use sdds_disperse::DispersalConfig;
use std::fmt;

/// How index-record chunks are encrypted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Deterministic ECB chunks — the paper's main scheme. Equal chunks
    /// have equal images at the sites; Stages 2 and 3 exist to blunt the
    /// resulting frequency analysis.
    #[default]
    EcbChunks,
    /// SWP-encrypted chunks — the paper's §8 future work: position-
    /// randomised cipherwords matched through per-query trapdoors. Equal
    /// chunks look different at rest; incompatible with Stage-3 dispersion.
    SwpChunks,
}

/// What Stage 2 assigns codes to.
///
/// §3: the chunk-frequency procedure "becomes impossible for larger chunk
/// sizes simply because there are just too many possible chunks. In this
/// case we can at least preprocess the records encoding each symbol into a
/// smaller one" — that is [`PerSymbol`](EncodingGranularity::PerSymbol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingGranularity {
    /// One code per whole chunk (`s`-gram) — maximal flattening, needs the
    /// chunk population to be learnable from a sample.
    #[default]
    WholeChunk,
    /// One code per symbol; a chunk's image is the concatenation of its
    /// symbol codes — the paper's fallback for large chunks (and the setup
    /// of its Table-4 experiments).
    PerSymbol,
}

/// Stage-0 searchable pre-compression parameters (§8's "searchable
/// compression as a main mean of redundancy removal"): record contents are
/// pair-compressed (losslessly, search-safely) before chunking, shrinking
/// the index and removing digraph redundancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecompressionConfig {
    /// Maximum number of pair codes to learn (output alphabet =
    /// `2^symbol_bits` literals + pairs; must stay within `symbol_bits`
    /// widened by one bit, i.e. pairs <= 2^symbol_bits).
    pub max_pairs: usize,
}

/// Stage-2 (redundancy removal) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingConfig {
    /// Size of the code alphabet; must be a power of two so codes pack
    /// into whole bits (the paper sweeps 8..128).
    pub num_codes: usize,
    /// Whole-chunk or per-symbol assignment.
    pub granularity: EncodingGranularity,
}

impl EncodingConfig {
    /// Whole-chunk codes (§3's primary procedure).
    pub fn whole_chunk(num_codes: usize) -> EncodingConfig {
        EncodingConfig {
            num_codes,
            granularity: EncodingGranularity::WholeChunk,
        }
    }

    /// Per-symbol codes (§3's large-chunk fallback).
    pub fn per_symbol(num_codes: usize) -> EncodingConfig {
        EncodingConfig {
            num_codes,
            granularity: EncodingGranularity::PerSymbol,
        }
    }

    /// Bits per code.
    pub fn code_bits(&self) -> u32 {
        self.num_codes.trailing_zeros()
    }
}

/// Errors from scheme configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Stage-1 chunking parameters invalid.
    Chunking(sdds_chunk::ChunkError),
    /// `num_codes` must be a power of two in `2..=65536`.
    BadCodeCount(usize),
    /// Chunk width in bits exceeds the 128-bit PRP limit.
    ChunkTooWide(usize),
    /// Dispersion parameters invalid for the effective chunk width.
    Dispersion(sdds_disperse::DisperseError),
    /// Symbol width must be 1..=16 bits.
    BadSymbolBits(u32),
    /// SWP chunk encryption is position-randomised and cannot be dispersed.
    SwpWithDispersion,
    /// Pre-compression pair budget out of range (`1..=2^symbol_bits`).
    BadPrecompression(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Chunking(e) => write!(f, "chunking: {e}"),
            ConfigError::BadCodeCount(n) => {
                write!(f, "num_codes {n} must be a power of two in 2..=65536")
            }
            ConfigError::ChunkTooWide(b) => {
                write!(f, "chunk width {b} bits exceeds the 128-bit limit")
            }
            ConfigError::Dispersion(e) => write!(f, "dispersion: {e}"),
            ConfigError::BadSymbolBits(b) => write!(f, "symbol width {b} outside 1..=16"),
            ConfigError::SwpWithDispersion => {
                write!(f, "SWP chunk mode cannot be combined with dispersion")
            }
            ConfigError::BadPrecompression(n) => {
                write!(f, "pre-compression pair budget {n} out of range")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<sdds_chunk::ChunkError> for ConfigError {
    fn from(e: sdds_chunk::ChunkError) -> Self {
        ConfigError::Chunking(e)
    }
}

impl From<sdds_disperse::DisperseError> for ConfigError {
    fn from(e: sdds_disperse::DisperseError) -> Self {
        ConfigError::Dispersion(e)
    }
}

/// Full parameterisation of the scheme: one record store copy plus
/// `num_chunkings × dispersion` index records per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Stage-1 chunking family (chunk size `s`, `c` chunkings).
    pub chunking: ChunkingScheme,
    /// Bits per plaintext symbol (`f`; 8 for ASCII).
    pub symbol_bits: u32,
    /// Stage-2 lossy compression; `None` stores raw encrypted chunks.
    pub encoding: Option<EncodingConfig>,
    /// Stage-3 dispersion degree `k`; `None` keeps index records whole
    /// (equivalent to `k = 1`).
    pub dispersion: Option<usize>,
    /// Whether padded boundary chunks are stored (§2.1 trade-off).
    pub partial_chunks: PartialChunkPolicy,
    /// How many query alignments are sent and how verdicts combine.
    pub search_mode: SearchMode,
    /// ECB chunks (the paper's scheme) or SWP chunks (its §8 extension).
    pub index_kind: IndexKind,
    /// Optional searchable pair pre-compression (§8 extension). When on,
    /// symbols entering Stage 1 are pair codes over an alphabet of
    /// `2^(symbol_bits+1)` values.
    pub precompression: Option<PrecompressionConfig>,
}

impl SchemeConfig {
    /// A plain configuration: chunk size `s`, `c` chunkings, 8-bit
    /// symbols, no compression, no dispersion.
    pub fn basic(chunk_size: usize, num_chunkings: usize) -> Result<SchemeConfig, ConfigError> {
        SchemeConfig {
            chunking: ChunkingScheme::new(chunk_size, num_chunkings)?,
            symbol_bits: 8,
            encoding: None,
            dispersion: None,
            partial_chunks: PartialChunkPolicy::Store,
            search_mode: SearchMode::Minimal,
            index_kind: IndexKind::EcbChunks,
            precompression: None,
        }
        .validated()
    }

    /// The configuration the paper's conclusion recommends: chunks of six
    /// ASCII characters, two chunkings, modest compression, dispersion
    /// over three sites ("a chunk size of 6 ASCII characters together with
    /// dispersing index records into 3 records might already result in a
    /// reasonable secure code", §8).
    pub fn paper_recommended() -> SchemeConfig {
        SchemeConfig {
            // lint: allow(panic-freedom) -- compile-time constants (6 symbols, 2 chunkings) are always a valid scheme
            chunking: ChunkingScheme::new(6, 2).expect("6/2 valid"),
            symbol_bits: 8,
            // "modest preprocessing": 6 bits per symbol, per the paper's
            // large-chunk fallback — 6-symbol chunks have 2^48 possible
            // values, far too many for whole-chunk frequency counting
            encoding: Some(EncodingConfig::per_symbol(64)),
            dispersion: Some(3),
            partial_chunks: PartialChunkPolicy::Store,
            search_mode: SearchMode::Minimal,
            index_kind: IndexKind::EcbChunks,
            precompression: None,
        }
        .validated()
        // lint: allow(panic-freedom) -- the §8 constants above are a fixed, known-valid configuration
        .expect("paper configuration is valid")
    }

    /// The §8 extension: SWP-encrypted chunks (position-randomised at
    /// rest, trapdoor-matched).
    pub fn swp_chunks(
        chunk_size: usize,
        num_chunkings: usize,
    ) -> Result<SchemeConfig, ConfigError> {
        let mut cfg = SchemeConfig::basic(chunk_size, num_chunkings)?;
        cfg.index_kind = IndexKind::SwpChunks;
        cfg.validated()
    }

    /// Validates the interplay of all parameters.
    pub fn validated(self) -> Result<SchemeConfig, ConfigError> {
        if !(1..=16).contains(&self.symbol_bits) {
            return Err(ConfigError::BadSymbolBits(self.symbol_bits));
        }
        if let Some(pre) = &self.precompression {
            // pair codes live above the literal alphabet; the effective
            // symbol width grows by one bit and must stay in range
            if pre.max_pairs == 0 || pre.max_pairs > (1 << self.symbol_bits) {
                return Err(ConfigError::BadPrecompression(pre.max_pairs));
            }
            if self.effective_symbol_bits() > 16 {
                return Err(ConfigError::BadSymbolBits(self.effective_symbol_bits()));
            }
        }
        if let Some(enc) = &self.encoding {
            if !(2..=65536).contains(&enc.num_codes) || !enc.num_codes.is_power_of_two() {
                return Err(ConfigError::BadCodeCount(enc.num_codes));
            }
        }
        let width = self.chunk_bits();
        if width > 128 || width == 0 {
            return Err(ConfigError::ChunkTooWide(width));
        }
        if let Some(k) = self.dispersion {
            if self.index_kind == IndexKind::SwpChunks {
                return Err(ConfigError::SwpWithDispersion);
            }
            // validates divisibility and share width
            DispersalConfig::new(width, k)?;
        }
        Ok(self)
    }

    /// Symbol width entering Stage 1: the raw `f`, plus one bit when pair
    /// pre-compression extends the alphabet with pair codes.
    pub fn effective_symbol_bits(&self) -> u32 {
        self.symbol_bits + u32::from(self.precompression.is_some())
    }

    /// Effective chunk width in bits after Stage 2 (`s·f` raw, or the code
    /// width when compression is on).
    pub fn chunk_bits(&self) -> usize {
        match &self.encoding {
            Some(enc) => match enc.granularity {
                EncodingGranularity::WholeChunk => enc.code_bits() as usize,
                EncodingGranularity::PerSymbol => {
                    self.chunking.chunk_size() * enc.code_bits() as usize
                }
            },
            None => self.chunking.chunk_size() * self.effective_symbol_bits() as usize,
        }
    }

    /// Dispersion degree (1 = no dispersion).
    pub fn k(&self) -> usize {
        self.dispersion.unwrap_or(1)
    }

    /// Index records per stored record: chunkings × dispersion sites.
    pub fn index_records_per_record(&self) -> usize {
        self.chunking.num_chunkings() * self.k()
    }

    /// Bits of tag appended to the RID in LH\* keys: enough for the record
    /// store copy plus every index record.
    pub fn tag_bits(&self) -> u32 {
        let variants = 1 + self.index_records_per_record();
        usize::BITS - (variants - 1).leading_zeros()
    }

    /// Bytes used to encode one element (share or whole encrypted chunk)
    /// in an index record body. SWP cipherwords are always 16 bytes.
    pub fn element_bytes(&self) -> usize {
        if self.index_kind == IndexKind::SwpChunks {
            return crate::swp_chunks::CIPHERWORD_BYTES;
        }
        let bits = self.chunk_bits() / self.k();
        bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_configs_validate() {
        assert!(SchemeConfig::basic(4, 4).is_ok());
        assert!(SchemeConfig::basic(8, 2).is_ok());
        assert!(SchemeConfig::basic(1, 1).is_ok());
    }

    #[test]
    fn paper_recommended_is_valid() {
        let cfg = SchemeConfig::paper_recommended();
        assert_eq!(cfg.chunking.chunk_size(), 6);
        assert_eq!(cfg.k(), 3);
        assert_eq!(cfg.chunk_bits(), 36); // 6 symbols x 6-bit codes
        assert_eq!(cfg.index_records_per_record(), 6);
    }

    #[test]
    fn rejects_wide_raw_chunks() {
        // 32 symbols × 8 bits = 256 bits > 128
        let err = SchemeConfig::basic(32, 2).unwrap_err();
        assert_eq!(err, ConfigError::ChunkTooWide(256));
    }

    #[test]
    fn rejects_non_power_of_two_codes() {
        let mut cfg = SchemeConfig::basic(4, 2).unwrap();
        cfg.encoding = Some(EncodingConfig::whole_chunk(100));
        assert_eq!(cfg.validated().unwrap_err(), ConfigError::BadCodeCount(100));
    }

    #[test]
    fn rejects_bad_dispersion() {
        let mut cfg = SchemeConfig::basic(4, 2).unwrap(); // 32-bit chunks
        cfg.dispersion = Some(3); // 3 does not divide 32
        assert!(matches!(
            cfg.validated().unwrap_err(),
            ConfigError::Dispersion(_)
        ));
    }

    #[test]
    fn tag_bits_cover_all_variants() {
        let cfg = SchemeConfig::basic(4, 2).unwrap(); // 1 + 2 index = 3 variants
        assert_eq!(cfg.tag_bits(), 2);
        let paper = SchemeConfig::paper_recommended(); // 1 + 6 = 7 variants
        assert_eq!(paper.tag_bits(), 3); // matches Figure 3's "3 bits"
    }

    #[test]
    fn element_bytes_rounding() {
        let cfg = SchemeConfig::basic(4, 2).unwrap(); // 32-bit chunks, k=1
        assert_eq!(cfg.element_bytes(), 4);
        let mut cfg = cfg;
        cfg.dispersion = Some(4); // 8-bit shares
        let cfg = cfg.validated().unwrap();
        assert_eq!(cfg.element_bytes(), 1);
        let paper = SchemeConfig::paper_recommended(); // 36/3 = 12 bits
        assert_eq!(paper.element_bytes(), 2);
    }

    #[test]
    fn encoding_overrides_chunk_width() {
        let mut cfg = SchemeConfig::basic(6, 2).unwrap();
        assert_eq!(cfg.chunk_bits(), 48);
        cfg.encoding = Some(EncodingConfig::whole_chunk(16));
        let cfg = cfg.validated().unwrap();
        assert_eq!(cfg.chunk_bits(), 4);
        // per-symbol: 6 symbols x 4 bits
        let mut cfg = SchemeConfig::basic(6, 2).unwrap();
        cfg.encoding = Some(EncodingConfig::per_symbol(16));
        let cfg = cfg.validated().unwrap();
        assert_eq!(cfg.chunk_bits(), 24);
    }
}
