//! The record → index-record transformation pipeline (Stages 1–3) and its
//! query-side mirror.

use crate::config::{ConfigError, EncodingGranularity, IndexKind, SchemeConfig};
use crate::pack::{pack_chunk, value_to_bytes};
use crate::query::{EncryptedQuery, QueryKind};
use crate::swp_chunks::ChunkSwp;
use sdds_chunk::ChunkError;
use sdds_cipher::{modes, ChunkPrp, CipherError, KeyMaterial};
use sdds_disperse::{DispersalConfig, Disperser};
use sdds_encode::{Codebook, GramCounter, PairCompressor};
use std::fmt;

/// One index record produced from an RC: the body destined for dispersion
/// site `site` of chunking `chunking`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRecord {
    /// Chunking (offset family) index, `0..c`.
    pub chunking: usize,
    /// Dispersion site index, `0..k`.
    pub site: usize,
    /// Concatenated fixed-width elements (one per chunk).
    pub body: Vec<u8>,
}

/// Reusable intermediate buffers for the ingest hot path. One instance per
/// worker (or per long-lived caller) makes steady-state ingest free of
/// per-chunk allocation — see
/// [`index_records_into`](IndexPipeline::index_records_into).
#[derive(Debug, Default)]
pub struct IngestScratch {
    /// Flat chunk buffer: chunk `m` of the current chunking occupies
    /// `chunks[m*s..(m+1)*s]`.
    chunks: Vec<u16>,
    /// Encrypted (and possibly encoded) chunk values.
    values: Vec<u128>,
    /// Site-major dispersal planes (`planes[site * nchunks + m]`).
    planes: Vec<u16>,
}

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Query shorter than the scheme's minimum searchable length.
    Query(ChunkError),
    /// Record decryption failed (wrong key or corrupt ciphertext).
    Decrypt(CipherError),
    /// Decrypted bytes are not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Query(e) => write!(f, "query: {e}"),
            PipelineError::Decrypt(e) => write!(f, "decrypt: {e}"),
            PipelineError::NotUtf8 => write!(f, "decrypted record is not UTF-8"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The owner-side engine: holds the key hierarchy, the per-chunking chunk
/// PRPs, the optional Stage-2 codebook and the Stage-3 disperser.
pub struct IndexPipeline {
    config: SchemeConfig,
    keys: KeyMaterial,
    prps: Vec<ChunkPrp>,
    swps: Vec<ChunkSwp>,
    codebook: Option<Codebook>,
    precompressor: Option<PairCompressor>,
    disperser: Option<Disperser>,
}

impl fmt::Debug for IndexPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexPipeline")
            .field("config", &self.config)
            .field("trained", &self.codebook.is_some())
            .finish()
    }
}

impl IndexPipeline {
    /// Builds the pipeline. When the config enables Stage-2 compression, a
    /// codebook trained via [`train_codebook`](Self::train_codebook) must
    /// be supplied.
    pub fn new(
        config: SchemeConfig,
        keys: KeyMaterial,
        codebook: Option<Codebook>,
    ) -> Result<IndexPipeline, ConfigError> {
        Self::with_precompressor(config, keys, codebook, None)
    }

    /// [`new`](Self::new) plus a trained Stage-0 pair compressor (required
    /// iff the config enables pre-compression; train with
    /// [`train_precompressor`](Self::train_precompressor)).
    pub fn with_precompressor(
        config: SchemeConfig,
        keys: KeyMaterial,
        codebook: Option<Codebook>,
        precompressor: Option<PairCompressor>,
    ) -> Result<IndexPipeline, ConfigError> {
        let config = config.validated()?;
        if config.encoding.is_some() {
            assert!(
                codebook.is_some(),
                "encoding enabled but no codebook supplied; train one first"
            );
        }
        assert_eq!(
            config.precompression.is_some(),
            precompressor.is_some(),
            "pre-compression config and trained compressor must come together"
        );
        let width = config.chunk_bits() as u32;
        let prps = (0..config.chunking.num_chunkings())
            // lint: allow(panic-freedom) -- `config.validated()?` above already bounds chunk_bits to the PRP's accepted widths
            .map(|j| ChunkPrp::new(&keys.chunk_key(j as u32), width).expect("validated width"))
            .collect();
        let disperser = config.dispersion.map(|k| {
            // lint: allow(panic-freedom) -- `config.validated()?` above already checked chunk_bits/k compatibility
            let dc = DispersalConfig::new(config.chunk_bits(), k).expect("validated");
            Disperser::from_seed(dc, keys.dispersion_seed())
        });
        let swps = match config.index_kind {
            IndexKind::SwpChunks => (0..config.chunking.num_chunkings())
                .map(|j| ChunkSwp::new(&keys, j as u32))
                .collect(),
            IndexKind::EcbChunks => Vec::new(),
        };
        Ok(IndexPipeline {
            config,
            keys,
            prps,
            swps,
            codebook,
            precompressor,
            disperser,
        })
    }

    /// Trains the Stage-0 searchable pair compressor on a representative
    /// sample.
    pub fn train_precompressor<'a, I>(config: &SchemeConfig, sample: I) -> PairCompressor
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pre = config
            .precompression
            // lint: allow(panic-freedom) -- documented precondition of this training entry point; misuse is a caller bug, not a data-dependent path
            .expect("training requires a precompression config");
        let streams: Vec<Vec<u16>> = sample.into_iter().map(rc_symbols).collect();
        PairCompressor::train(
            streams.iter().map(|v| v.as_slice()),
            1 << config.symbol_bits,
            pre.max_pairs,
        )
    }

    /// The record symbols as they enter Stage 1 (pair-compressed when
    /// Stage 0 is on).
    fn stage1_symbols(&self, rc: &str) -> Vec<u16> {
        let symbols = rc_symbols(rc);
        match &self.precompressor {
            Some(p) => p.compress(&symbols),
            None => symbols,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Trains the Stage-2 codebook on a representative sample ("we can
    /// preprocess a representative part of the database and count the
    /// occurrence of each chunk", §3). Counts chunks of *all* chunkings.
    pub fn train_codebook<'a, I>(config: &SchemeConfig, sample: I) -> Codebook
    where
        I: IntoIterator<Item = &'a str>,
    {
        let streams: Vec<Vec<u16>> = sample.into_iter().map(rc_symbols).collect();
        Self::train_codebook_streams(config, &streams)
    }

    /// [`train_codebook`](Self::train_codebook) over pre-tokenised symbol
    /// streams — the form to use when Stage-0 pre-compression feeds
    /// Stage 2 (train on the *compressed* streams).
    pub fn train_codebook_streams(config: &SchemeConfig, streams: &[Vec<u16>]) -> Codebook {
        let enc = config
            .encoding
            // lint: allow(panic-freedom) -- documented precondition of this training entry point; misuse is a caller bug, not a data-dependent path
            .expect("training requires an encoding config");
        match enc.granularity {
            EncodingGranularity::WholeChunk => {
                let s = config.chunking.chunk_size();
                let mut counter = GramCounter::new(s);
                for symbols in streams {
                    for j in 0..config.chunking.num_chunkings() {
                        for chunk in config
                            .chunking
                            .chunk_record(j, symbols, config.partial_chunks)
                        {
                            counter.add_record(&chunk, 0);
                        }
                    }
                }
                Codebook::build_equalized(&counter, enc.num_codes)
            }
            EncodingGranularity::PerSymbol => {
                // §3's large-chunk fallback: equalise single symbols
                let mut counter = GramCounter::new(1);
                for symbols in streams {
                    counter.add_record(symbols, 0);
                }
                Codebook::build_equalized(&counter, enc.num_codes)
            }
        }
    }

    /// Chunk → (compress) → pack, before any encryption.
    fn chunk_plain_value(&self, chunk: &[u16]) -> u128 {
        match (&self.codebook, self.config.encoding.map(|e| e.granularity)) {
            (Some(book), Some(EncodingGranularity::WholeChunk)) => {
                u128::from(book.encode_gram(chunk))
            }
            (Some(book), Some(EncodingGranularity::PerSymbol)) => {
                // each symbol's code, concatenated MSB-first (the paper's
                // Table-4 preprocessing applied under the ECB layer)
                // lint: allow(panic-freedom) -- the match arm above only selects when `encoding.map(..)` was Some
                let bits = self.config.encoding.expect("checked").code_bits();
                chunk.iter().fold(0u128, |acc, &sym| {
                    (acc << bits) | u128::from(book.encode_gram(&[sym]))
                })
            }
            _ => pack_chunk(chunk, self.config.effective_symbol_bits()),
        }
    }

    /// Chunk → (compress) → pack → ECB-encrypt, for chunking `j`.
    fn chunk_value(&self, j: usize, chunk: &[u16]) -> u128 {
        self.prps[j].encrypt(self.chunk_plain_value(chunk))
    }

    /// Produces all `c·k` index records of an RC.
    ///
    /// For ECB-chunk configurations the RID only matters to the key
    /// layout; for SWP chunks it seeds the position stream, so the same RC
    /// under two RIDs yields unlinkable index records.
    pub fn index_records_for(&self, rid: u64, rc: &str) -> Vec<IndexRecord> {
        let mut scratch = IngestScratch::default();
        let mut out = Vec::new();
        self.index_records_into(rid, rc, &mut scratch, &mut out);
        out
    }

    /// [`index_records_for`](Self::index_records_for) with caller-owned
    /// buffers: `out` receives the records (cleared first) and `scratch`
    /// holds the intermediate chunk/value/plane buffers, so a caller
    /// looping over a corpus does no per-chunk allocation. The produced
    /// records are byte-identical to the allocating path.
    pub fn index_records_into(
        &self,
        rid: u64,
        rc: &str,
        scratch: &mut IngestScratch,
        out: &mut Vec<IndexRecord>,
    ) {
        out.clear();
        let symbols = self.stage1_symbols(rc);
        if self.config.index_kind == IndexKind::SwpChunks {
            out.extend(self.swp_index_records(rid, &symbols));
            self.count_ingest(out);
            return;
        }
        let c = self.config.chunking.num_chunkings();
        let k = self.config.k();
        let s = self.config.chunking.chunk_size();
        let element_bytes = self.config.element_bytes();
        out.reserve(c * k);
        for j in 0..c {
            let chunk_timer = sdds_obs::histogram("core.chunk_seconds").start_timer();
            let nchunks = self.config.chunking.chunk_record_flat(
                j,
                &symbols,
                self.config.partial_chunks,
                &mut scratch.chunks,
            );
            drop(chunk_timer);
            let encode_timer = sdds_obs::histogram("core.encode_seconds").start_timer();
            scratch.values.clear();
            scratch.values.extend(
                scratch
                    .chunks
                    .chunks_exact(s)
                    .map(|ch| self.chunk_value(j, ch)),
            );
            drop(encode_timer);
            match &self.disperser {
                Some(d) => {
                    let _disperse_timer =
                        sdds_obs::histogram("core.disperse_seconds").start_timer();
                    d.disperse_record_into(&scratch.values, &mut scratch.planes);
                    for site in 0..k {
                        let plane = &scratch.planes[site * nchunks..(site + 1) * nchunks];
                        let mut body = Vec::with_capacity(nchunks * element_bytes);
                        for &share in plane {
                            body.extend_from_slice(
                                &u128::from(share).to_le_bytes()[..element_bytes],
                            );
                        }
                        out.push(IndexRecord {
                            chunking: j,
                            site,
                            body,
                        });
                    }
                }
                None => {
                    let mut body = Vec::with_capacity(nchunks * element_bytes);
                    for &v in &scratch.values {
                        body.extend_from_slice(&v.to_le_bytes()[..element_bytes]);
                    }
                    out.push(IndexRecord {
                        chunking: j,
                        site: 0,
                        body,
                    });
                }
            }
        }
        self.count_ingest(out);
    }

    /// Ingest-side counters shared by every transform path (they are
    /// process-global atomics, so the parallel path needs no coordination).
    fn count_ingest(&self, records: &[IndexRecord]) {
        let element_bytes = match self.config.index_kind {
            IndexKind::SwpChunks => 16,
            IndexKind::EcbChunks => self.config.element_bytes(),
        };
        let bytes: usize = records.iter().map(|r| r.body.len()).sum();
        sdds_obs::counter("core.ingest_records").inc();
        sdds_obs::counter("core.ingest_index_records").add(records.len() as u64);
        sdds_obs::counter("core.ingest_chunks").add((bytes / element_bytes.max(1)) as u64);
        sdds_obs::counter("core.ingest_index_bytes").add(bytes as u64);
    }

    /// Transforms a batch of records on a worker pool, preserving input
    /// order: element `i` of the result holds the index records of
    /// `records[i]`. Each worker keeps one [`IngestScratch`] for its whole
    /// share of the batch, and every transform is deterministic in
    /// `(rid, rc)`, so the output is byte-identical to calling
    /// [`index_records_for`](Self::index_records_for) sequentially —
    /// regardless of the pool's thread count.
    pub fn index_records_batch<S>(
        &self,
        records: &[(u64, S)],
        pool: &sdds_par::Pool,
    ) -> Vec<Vec<IndexRecord>>
    where
        S: AsRef<str> + Sync,
    {
        // a few chunks per worker lets the cursor balance uneven records
        let chunk = records.len().div_ceil(pool.threads().max(1) * 4).max(1);
        let parts = pool.par_map_chunks_with(
            records,
            chunk,
            IngestScratch::default,
            |scratch, _chunk_index, _start, span| {
                let mut produced = Vec::with_capacity(span.len());
                for (rid, rc) in span {
                    let mut out = Vec::new();
                    self.index_records_into(*rid, rc.as_ref(), scratch, &mut out);
                    produced.push(out);
                }
                produced
            },
        );
        parts.into_iter().flatten().collect()
    }

    /// [`index_records_for`](Self::index_records_for) with RID 0 — for
    /// statistics and experiments that only look at one record's bodies.
    pub fn index_records(&self, rc: &str) -> Vec<IndexRecord> {
        self.index_records_for(0, rc)
    }

    /// The SWP-chunk variant: one body per chunking, 16-byte cipherwords.
    fn swp_index_records(&self, rid: u64, symbols: &[u16]) -> Vec<IndexRecord> {
        let c = self.config.chunking.num_chunkings();
        let mut out = Vec::with_capacity(c);
        for j in 0..c {
            let chunks = self
                .config
                .chunking
                .chunk_record(j, symbols, self.config.partial_chunks);
            let mut body = Vec::with_capacity(chunks.len() * 16);
            for (pos, chunk) in chunks.iter().enumerate() {
                let value = self.chunk_plain_value(chunk);
                body.extend_from_slice(&self.swps[j].encrypt_chunk(rid, pos as u64, value));
            }
            out.push(IndexRecord {
                chunking: j,
                site: 0,
                body,
            });
        }
        out
    }

    /// Strong encryption of the record store copy (AES-CBC, per-RID IV).
    pub fn encrypt_record(&self, rid: u64, rc: &str) -> Vec<u8> {
        let aes = self.keys.record_cipher();
        let iv = self.keys.record_iv(rid);
        // lint: allow(determinism) -- record-store copy (§5), not the Stage-1 index path; CBC is the point here
        modes::cbc_encrypt(&aes, &iv, rc.as_bytes())
    }

    /// Decrypts a record store copy.
    pub fn decrypt_record(&self, rid: u64, ciphertext: &[u8]) -> Result<String, PipelineError> {
        let aes = self.keys.record_cipher();
        let iv = self.keys.record_iv(rid);
        // lint: allow(determinism) -- record-store copy (§5), not the Stage-1 index path; CBC is the point here
        let bytes = modes::cbc_decrypt(&aes, &iv, ciphertext).map_err(PipelineError::Decrypt)?;
        String::from_utf8(bytes).map_err(|_| PipelineError::NotUtf8)
    }

    /// Builds the encrypted multi-alignment query for a search pattern.
    ///
    /// With Stage-0 pre-compression on, the pattern is compressed into its
    /// search variants (the text may absorb the pattern's edge symbols
    /// into pair codes); the query carries the series of every variant.
    pub fn build_query(&self, pattern: &str) -> Result<EncryptedQuery, PipelineError> {
        let _timer = sdds_obs::histogram("core.query_build_seconds").start_timer();
        let raw = rc_symbols(pattern);
        let variants: Vec<Vec<u16>> = match &self.precompressor {
            Some(p) => p.search_variants(&raw),
            None => vec![raw],
        };
        let mut series = Vec::new();
        for variant in &variants {
            // Every variant must be searchable: the true occurrence's
            // compressed image is exactly one of them, so skipping a short
            // variant would silently lose completeness. Callers see the
            // usual QueryTooShort and lengthen the pattern (with Stage 0
            // on, the effective minimum grows accordingly).
            series.extend(
                self.config
                    .chunking
                    .search_series(variant, self.config.search_mode)
                    .map_err(PipelineError::Query)?,
            );
        }
        let series_drops: Vec<usize> = series.iter().map(|s| s.drop).collect();
        let c = self.config.chunking.num_chunkings();
        let k = self.config.k();
        let element_bytes = self.config.element_bytes();
        if self.config.index_kind == IndexKind::SwpChunks {
            let mut per_tag: Vec<(u32, Vec<Vec<u8>>)> = Vec::with_capacity(c);
            for j in 0..c {
                let bodies: Vec<Vec<u8>> = series
                    .iter()
                    .map(|ser| {
                        let mut body = Vec::with_capacity(ser.chunks.len() * 32);
                        for chunk in &ser.chunks {
                            let value = self.chunk_plain_value(chunk);
                            body.extend_from_slice(&self.swps[j].trapdoor(value));
                        }
                        body
                    })
                    .collect();
                per_tag.push((self.tag(j, 0), bodies));
            }
            return Ok(EncryptedQuery {
                tag_bits: self.config.tag_bits(),
                element_bytes,
                kind: QueryKind::Swp,
                series_drops,
                per_tag,
            });
        }
        let mut per_tag: Vec<(u32, Vec<Vec<u8>>)> = Vec::with_capacity(c * k);
        for j in 0..c {
            // encrypt every series under chunking j's key
            let encrypted_series: Vec<Vec<u128>> = series
                .iter()
                .map(|ser| {
                    ser.chunks
                        .iter()
                        .map(|ch| self.chunk_value(j, ch))
                        .collect()
                })
                .collect();
            match &self.disperser {
                Some(d) => {
                    // per site: the site's share stream of each series
                    for site in 0..k {
                        let bodies: Vec<Vec<u8>> = encrypted_series
                            .iter()
                            .map(|vals| {
                                let mut body = Vec::with_capacity(vals.len() * element_bytes);
                                for &v in vals {
                                    let share = d.disperse(v)[site];
                                    body.extend_from_slice(&value_to_bytes(
                                        share.into(),
                                        element_bytes,
                                    ));
                                }
                                body
                            })
                            .collect();
                        per_tag.push((self.tag(j, site), bodies));
                    }
                }
                None => {
                    let bodies: Vec<Vec<u8>> = encrypted_series
                        .iter()
                        .map(|vals| {
                            let mut body = Vec::with_capacity(vals.len() * element_bytes);
                            for &v in vals {
                                body.extend_from_slice(&value_to_bytes(v, element_bytes));
                            }
                            body
                        })
                        .collect();
                    per_tag.push((self.tag(j, 0), bodies));
                }
            }
        }
        Ok(EncryptedQuery {
            tag_bits: self.config.tag_bits(),
            element_bytes,
            kind: QueryKind::Equality,
            series_drops,
            per_tag,
        })
    }

    // ---- LH* key layout (§5) ----

    /// Tag of the index record for (chunking, site); tag 0 is the record
    /// store copy.
    pub fn tag(&self, chunking: usize, site: usize) -> u32 {
        (1 + chunking * self.config.k() + site) as u32
    }

    /// The LH\* key of a record-store or index record: the RID with the
    /// tag appended as least significant bits.
    pub fn lh_key(&self, rid: u64, tag: u32) -> u64 {
        (rid << self.config.tag_bits()) | u64::from(tag)
    }

    /// Inverse of [`lh_key`](Self::lh_key).
    pub fn parse_key(&self, key: u64) -> (u64, u32) {
        let bits = self.config.tag_bits();
        (key >> bits, (key & ((1 << bits) - 1)) as u32)
    }

    /// Storage accounting for a set of records: what the configuration
    /// costs at the sites, per stage (the DESIGN.md ablation axes in
    /// numbers).
    pub fn storage_report<'a, I>(&self, records: I) -> StorageReport
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        let mut report = StorageReport::default();
        for (rid, rc) in records {
            report.records += 1;
            report.plaintext_bytes += rc.len();
            report.record_store_bytes += self.encrypt_record(rid, rc).len();
            for rec in self.index_records_for(rid, rc) {
                report.index_records += 1;
                report.index_bytes += rec.body.len();
            }
        }
        report
    }
}

/// Aggregate storage cost of a configuration over a workload — see
/// [`IndexPipeline::storage_report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Records measured.
    pub records: usize,
    /// Total plaintext RC bytes.
    pub plaintext_bytes: usize,
    /// Total strongly encrypted record store bytes.
    pub record_store_bytes: usize,
    /// Total index records produced.
    pub index_records: usize,
    /// Total index body bytes across all sites.
    pub index_bytes: usize,
}

impl StorageReport {
    /// Index expansion factor: index bytes per plaintext byte — the price
    /// of searchability.
    pub fn expansion(&self) -> f64 {
        if self.plaintext_bytes == 0 {
            return 0.0;
        }
        self.index_bytes as f64 / self.plaintext_bytes as f64
    }
}

/// RC string → symbol stream (one `u16` per byte).
pub(crate) fn rc_symbols(rc: &str) -> Vec<u16> {
    rc.bytes().map(u16::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncodingConfig;
    use sdds_cipher::MasterKey;

    fn keys() -> KeyMaterial {
        KeyMaterial::new(MasterKey::new([7; 16]))
    }

    fn basic_pipeline() -> IndexPipeline {
        IndexPipeline::new(SchemeConfig::basic(4, 4).unwrap(), keys(), None).unwrap()
    }

    #[test]
    fn index_record_count_and_shape() {
        let p = basic_pipeline();
        let recs = p.index_records("ABCDEFGHIJKL");
        assert_eq!(recs.len(), 4); // 4 chunkings × k=1
                                   // chunking 0: 3 chunks of 4 bytes each → 12-byte body (4B elements)
        assert_eq!(recs[0].body.len(), 3 * 4);
        // chunking 1 pads by 1 → 4 chunks
        assert_eq!(recs[1].body.len(), 4 * 4);
    }

    #[test]
    fn equal_chunks_produce_equal_elements_within_a_chunking() {
        let p = basic_pipeline();
        let recs = p.index_records("ABCDABCD");
        let body = &recs[0].body; // chunking 0: two identical chunks "ABCD"
        assert_eq!(&body[0..4], &body[4..8], "deterministic ECB property");
    }

    #[test]
    fn different_chunkings_use_different_keys() {
        let p = basic_pipeline();
        // chunk "ABCD" appears aligned in chunking 0 of "ABCD" and in
        // chunking 0 vs chunking 4-pad variants; compare the raw encrypt:
        let chunk: Vec<u16> = "ABCD".bytes().map(u16::from).collect();
        let v0 = p.chunk_value(0, &chunk);
        let v1 = p.chunk_value(1, &chunk);
        assert_ne!(v0, v1, "per-chunking keys must differ");
    }

    #[test]
    fn record_encryption_roundtrip() {
        let p = basic_pipeline();
        let ct = p.encrypt_record(42, "SCHWARZ THOMAS");
        assert_ne!(ct, b"SCHWARZ THOMAS".to_vec());
        assert_eq!(p.decrypt_record(42, &ct).unwrap(), "SCHWARZ THOMAS");
        // per-RID IVs: same plaintext, different rid, different ciphertext
        assert_ne!(p.encrypt_record(43, "SCHWARZ THOMAS"), ct);
        // wrong rid cannot decrypt
        assert!(p.decrypt_record(43, &ct).is_err());
    }

    #[test]
    fn key_layout_roundtrip() {
        let p = basic_pipeline();
        for rid in [0u64, 1, 12345, 1 << 40] {
            for tag in 0..=p.config().index_records_per_record() as u32 {
                let key = p.lh_key(rid, tag);
                assert_eq!(p.parse_key(key), (rid, tag));
            }
        }
    }

    #[test]
    fn sibling_index_records_differ_in_lsbs_only() {
        // §5: "index records belonging to the same original record will be
        // stored in different LH* buckets if the number of buckets > 8"
        let p = basic_pipeline();
        let keys: Vec<u64> = (0..=4u32).map(|tag| p.lh_key(99, tag)).collect();
        for w in keys.windows(2) {
            assert_eq!(w[1] - w[0], 1, "tags occupy consecutive keys");
        }
        // so mod 2^i addressing separates them once the file has >= 8 buckets
        let distinct: std::collections::HashSet<u64> = keys.iter().map(|k| k % 8).collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn dispersed_pipeline_produces_k_bodies_per_chunking() {
        let mut cfg = SchemeConfig::basic(4, 2).unwrap(); // 32-bit chunks
        cfg.dispersion = Some(4); // 8-bit shares
        let cfg = cfg.validated().unwrap();
        let p = IndexPipeline::new(cfg, keys(), None).unwrap();
        let recs = p.index_records("ABCDEFGH");
        assert_eq!(recs.len(), 8); // 2 chunkings × 4 sites
        for r in &recs {
            // chunking 0: 2 aligned chunks; chunking 1 (2 pad symbols): 3
            let expect = if r.chunking == 0 { 2 } else { 3 };
            assert_eq!(r.body.len(), expect, "chunks × 1-byte shares");
        }
        // share streams across sites differ
        assert_ne!(recs[0].body, recs[1].body);
    }

    #[test]
    fn encoded_pipeline_uses_code_width() {
        let mut cfg = SchemeConfig::basic(2, 2).unwrap();
        cfg.encoding = Some(EncodingConfig::whole_chunk(16));
        let cfg = cfg.validated().unwrap();
        let sample = ["ABAB", "CDCD", "ABCD"];
        let book = IndexPipeline::train_codebook(&cfg, sample);
        let p = IndexPipeline::new(cfg, keys(), Some(book)).unwrap();
        let recs = p.index_records("ABCD");
        // 4-bit codes → 1-byte elements, 2 chunks in chunking 0
        assert_eq!(recs[0].body.len(), 2);
        for r in &recs {
            for &b in &r.body {
                assert!(b < 16, "element exceeds code width: {b:#x}");
            }
        }
    }

    #[test]
    fn query_generation_matches_config_shape() {
        let p = basic_pipeline();
        let q = p.build_query("ABCDEFGH").unwrap();
        assert_eq!(q.tag_bits, p.config().tag_bits());
        assert_eq!(q.per_tag.len(), 4); // 4 chunkings × k=1
                                        // Minimal mode on full scheme: t = 1 drop → 1 series per tag
        for (_, series) in &q.per_tag {
            assert_eq!(series.len(), 1);
        }
    }

    #[test]
    fn too_short_query_rejected() {
        let p = basic_pipeline();
        let err = p.build_query("ABC").unwrap_err();
        assert!(matches!(err, PipelineError::Query(_)));
    }
}
