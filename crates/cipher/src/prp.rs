//! A keyed pseudo-random permutation over arbitrary bit widths.
//!
//! Index-record chunks are `s·f` bits wide — 16 bits for `s = 2` byte
//! symbols, 48 bits for the paper's recommended `s = 6`, or odd sizes after
//! Stage-2 compression (e.g. 3-bit codes). ECB with a 128-bit block cipher
//! cannot encrypt such blocks "of the same size" (§2.1), so we build an
//! **alternating (unbalanced) Feistel network** whose round function is the
//! AES-based PRF: a permutation on exactly `2^w` values for any
//! `1 <= w <= 128`.
//!
//! Determinism is the point: equal chunks encrypt equally so sites can match
//! encrypted search chunks. The paper's security analysis (§6) is precisely
//! about what this equality structure leaks; stages 2 and 3 exist to blunt
//! it. For tiny widths the permutation is structurally sound but the domain
//! itself is small — also exactly the regime the paper studies.

use crate::aes::Aes128;
use std::fmt;

/// Errors from PRP construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrpError {
    /// Width outside the supported `1..=128` range.
    UnsupportedWidth(u32),
}

impl fmt::Display for PrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrpError::UnsupportedWidth(w) => {
                write!(f, "unsupported PRP width {w}; need 1 <= w <= 128")
            }
        }
    }
}

impl std::error::Error for PrpError {}

/// Number of Feistel rounds. Twelve alternating rounds comfortably exceeds
/// the classical Luby–Rackoff bounds for PRP behaviour from a PRF.
const ROUNDS: u32 = 12;

/// A width-`w` pseudo-random permutation (deterministic encryption for
/// chunks), keyed by a 128-bit key.
///
/// ```
/// use sdds_cipher::ChunkPrp;
///
/// let prp = ChunkPrp::new(&[7; 16], 48).unwrap(); // 6 ASCII symbols
/// let chunk = 0x53_43_48_57_41_52u128;            // "SCHWAR"
/// let enc = prp.encrypt(chunk);
/// assert_ne!(enc, chunk);
/// assert_eq!(prp.encrypt(chunk), enc, "deterministic: searchable");
/// assert_eq!(prp.decrypt(enc), chunk);
/// ```
#[derive(Clone)]
pub struct ChunkPrp {
    aes: Aes128,
    width: u32,
    left_bits: u32,
    right_bits: u32,
}

impl fmt::Debug for ChunkPrp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkPrp")
            .field("width", &self.width)
            .finish()
    }
}

fn mask(bits: u32) -> u128 {
    if bits == 0 {
        0
    } else if bits == 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

impl ChunkPrp {
    /// Creates a PRP on `w`-bit values, `1 <= w <= 128`.
    pub fn new(key: &[u8; 16], width: u32) -> Result<ChunkPrp, PrpError> {
        if !(1..=128).contains(&width) {
            return Err(PrpError::UnsupportedWidth(width));
        }
        let left_bits = width / 2;
        let right_bits = width - left_bits;
        Ok(ChunkPrp {
            aes: Aes128::new(key),
            width,
            left_bits,
            right_bits,
        })
    }

    /// Permutation width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Round function: PRF(round ‖ half) truncated to `out_bits`. The
    /// input is exactly one cipher block (halves are ≤ 64 bits by
    /// construction), so each round costs a single block encryption.
    fn round_fn(&self, round: u32, half: u128, out_bits: u32) -> u128 {
        debug_assert!(half <= u64::MAX as u128, "halves fit in 64 bits");
        let mut input = [0u8; 16];
        input[0] = round as u8;
        input[1..9].copy_from_slice(&(half as u64).to_le_bytes());
        let out = self.aes.prf(&input);
        u128::from_le_bytes(out) & mask(out_bits)
    }

    /// Deterministically encrypts a `w`-bit value. Values above `2^w - 1`
    /// are rejected by debug assertion and masked in release builds.
    pub fn encrypt(&self, x: u128) -> u128 {
        debug_assert!(x <= mask(self.width), "value wider than PRP width");
        let x = x & mask(self.width);
        if self.width == 1 {
            // a permutation of {0,1}: identity or swap, keyed
            return x ^ (self.round_fn(0, 0, 1));
        }
        let mut left = x >> self.right_bits;
        let mut right = x & mask(self.right_bits);
        for round in 0..ROUNDS {
            if round % 2 == 0 {
                right ^= self.round_fn(round, left, self.right_bits);
            } else {
                left ^= self.round_fn(round, right, self.left_bits);
            }
        }
        (left << self.right_bits) | right
    }

    /// Inverts [`encrypt`](Self::encrypt).
    pub fn decrypt(&self, y: u128) -> u128 {
        debug_assert!(y <= mask(self.width), "value wider than PRP width");
        let y = y & mask(self.width);
        if self.width == 1 {
            return y ^ (self.round_fn(0, 0, 1));
        }
        let mut left = y >> self.right_bits;
        let mut right = y & mask(self.right_bits);
        for round in (0..ROUNDS).rev() {
            if round % 2 == 0 {
                right ^= self.round_fn(round, left, self.right_bits);
            } else {
                left ^= self.round_fn(round, right, self.left_bits);
            }
        }
        (left << self.right_bits) | right
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_width() {
        assert_eq!(
            ChunkPrp::new(&[0; 16], 0).unwrap_err(),
            PrpError::UnsupportedWidth(0)
        );
        assert_eq!(
            ChunkPrp::new(&[0; 16], 129).unwrap_err(),
            PrpError::UnsupportedWidth(129)
        );
    }

    #[test]
    fn is_a_permutation_on_small_domains() {
        for width in 1..=12u32 {
            let prp = ChunkPrp::new(&[5; 16], width).unwrap();
            let n = 1usize << width;
            let mut seen = vec![false; n];
            for x in 0..n as u128 {
                let y = prp.encrypt(x) as usize;
                assert!(y < n, "output in range (w={width})");
                assert!(!seen[y], "collision at {x} (w={width})");
                seen[y] = true;
            }
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_across_widths() {
        for width in [
            1u32, 2, 3, 7, 8, 15, 16, 24, 31, 32, 48, 63, 64, 100, 127, 128,
        ] {
            let prp = ChunkPrp::new(&[9; 16], width).unwrap();
            let m = mask(width);
            for i in 0..200u128 {
                let x = (i.wrapping_mul(0x9E3779B97F4A7C15)) & m;
                assert_eq!(prp.decrypt(prp.encrypt(x)), x, "w={width} x={x:#x}");
            }
        }
    }

    #[test]
    fn deterministic_equal_chunks_encrypt_equally() {
        // This is the property the searchable index depends on.
        let prp = ChunkPrp::new(&[1; 16], 32).unwrap();
        let a = u32::from_le_bytes(*b"SCHW") as u128;
        assert_eq!(prp.encrypt(a), prp.encrypt(a));
    }

    #[test]
    fn key_sensitivity() {
        let p1 = ChunkPrp::new(&[1; 16], 32).unwrap();
        let p2 = ChunkPrp::new(&[2; 16], 32).unwrap();
        let differing = (0..256u128)
            .filter(|&x| p1.encrypt(x) != p2.encrypt(x))
            .count();
        assert!(
            differing > 240,
            "keys should change almost all outputs: {differing}"
        );
    }

    #[test]
    fn avalanche_on_input_bits() {
        // flipping one input bit should flip ~half of the output bits on average
        let prp = ChunkPrp::new(&[3; 16], 48).unwrap();
        let mut total = 0u32;
        let trials = 64;
        for i in 0..trials {
            let x = (i as u128).wrapping_mul(0xDEADBEEFCAFE) & mask(48);
            let y0 = prp.encrypt(x);
            let y1 = prp.encrypt(x ^ 1);
            total += (y0 ^ y1).count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (12.0..36.0).contains(&avg),
            "poor avalanche: avg {avg} of 48 bits"
        );
    }

    #[test]
    fn width_one_is_keyed_involution() {
        let prp = ChunkPrp::new(&[0xAB; 16], 1).unwrap();
        let a = prp.encrypt(0);
        let b = prp.encrypt(1);
        assert_ne!(a, b);
        assert!(a <= 1 && b <= 1);
        assert_eq!(prp.decrypt(a), 0);
        assert_eq!(prp.decrypt(b), 1);
    }

    #[test]
    fn full_width_128_roundtrip() {
        let prp = ChunkPrp::new(&[0x77; 16], 128).unwrap();
        let x = u128::MAX - 12345;
        assert_eq!(prp.decrypt(prp.encrypt(x)), x);
    }
}
