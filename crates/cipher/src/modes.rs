//! Modes of operation over [`Aes128`]: CBC with PKCS#7 for
//! the strongly-encrypted record store copies, and CTR for streaming.
//!
//! The record store site in the paper holds "one copy of the record in
//! strongly encrypted form" (§5); CBC with a per-record IV derived from the
//! RID gives semantic security across records while staying deterministic
//! per (key, record) so storage sites can be updated idempotently.

use crate::aes::Aes128;
use crate::CipherError;

/// Applies PKCS#7 padding up to a multiple of 16 bytes.
fn pad(data: &mut Vec<u8>) {
    let pad_len = 16 - (data.len() % 16);
    data.extend(std::iter::repeat_n(pad_len as u8, pad_len));
}

/// Strips and validates PKCS#7 padding.
fn unpad(data: &mut Vec<u8>) -> Result<(), CipherError> {
    let &last = data.last().ok_or(CipherError::BadPadding)?;
    let n = last as usize;
    if n == 0 || n > 16 || n > data.len() {
        return Err(CipherError::BadPadding);
    }
    if data[data.len() - n..].iter().any(|&b| b != last) {
        return Err(CipherError::BadPadding);
    }
    data.truncate(data.len() - n);
    Ok(())
}

/// CBC-mode encryption with PKCS#7 padding.
pub fn cbc_encrypt(aes: &Aes128, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let mut data = plaintext.to_vec();
    pad(&mut data);
    let mut prev = *iv;
    for chunk in data.chunks_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    data
}

/// CBC-mode decryption with PKCS#7 validation.
pub fn cbc_decrypt(aes: &Aes128, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CipherError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return Err(CipherError::RaggedCiphertext(ciphertext.len()));
    }
    // Decrypt every block in one batched pass, then undo the chaining by
    // XORing block i against ciphertext block i-1 (the IV for block 0) —
    // the original `ciphertext` slice still holds the chain values.
    let mut data = ciphertext.to_vec();
    aes.decrypt_blocks(&mut data);
    for (i, chunk) in data.chunks_exact_mut(16).enumerate() {
        let prev = if i == 0 {
            &iv[..]
        } else {
            &ciphertext[16 * (i - 1)..16 * i]
        };
        for (b, p) in chunk.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
    }
    unpad(&mut data)?;
    Ok(data)
}

/// CTR-mode keystream XOR (encryption == decryption). The 16-byte nonce is
/// used as the initial counter block and incremented big-endian.
pub fn ctr_xor(aes: &Aes128, nonce: &[u8; 16], data: &mut [u8]) {
    /// Keystream blocks generated per batched encrypt call; 512 bytes of
    /// stack keeps the hot loop in [`Aes128::encrypt_blocks`].
    const BATCH: usize = 32;
    let mut counter = *nonce;
    let mut ks = [0u8; BATCH * 16];
    for span in data.chunks_mut(BATCH * 16) {
        let nblocks = span.len().div_ceil(16);
        for block in ks[..nblocks * 16].chunks_exact_mut(16) {
            block.copy_from_slice(&counter);
            // increment counter (big-endian, rightmost byte first)
            for b in counter.iter_mut().rev() {
                *b = b.wrapping_add(1);
                if *b != 0 {
                    break;
                }
            }
        }
        aes.encrypt_blocks(&mut ks[..nblocks * 16]);
        for (d, k) in span.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes128 {
        Aes128::new(&[0x42; 16])
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let aes = aes();
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always expands");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn cbc_is_iv_sensitive() {
        let aes = aes();
        let pt = b"the same plaintext".to_vec();
        let c1 = cbc_encrypt(&aes, &[1; 16], &pt);
        let c2 = cbc_encrypt(&aes, &[2; 16], &pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn cbc_equal_blocks_hidden() {
        // The defining weakness of ECB must NOT appear in CBC.
        let aes = aes();
        let pt = [0xAAu8; 48]; // three identical blocks
        let ct = cbc_encrypt(&aes, &[0; 16], &pt);
        assert_ne!(&ct[0..16], &ct[16..32]);
        assert_ne!(&ct[16..32], &ct[32..48]);
    }

    #[test]
    fn cbc_rejects_ragged_ciphertext() {
        let aes = aes();
        assert_eq!(
            cbc_decrypt(&aes, &[0; 16], &[1, 2, 3]),
            Err(CipherError::RaggedCiphertext(3))
        );
        assert_eq!(
            cbc_decrypt(&aes, &[0; 16], &[]),
            Err(CipherError::RaggedCiphertext(0))
        );
    }

    #[test]
    fn cbc_rejects_corrupt_padding() {
        let aes = aes();
        let mut ct = cbc_encrypt(&aes, &[0; 16], b"hello world");
        let n = ct.len();
        ct[n - 1] ^= 0xFF; // garble final block -> padding check must fail
        assert_eq!(
            cbc_decrypt(&aes, &[0; 16], &ct),
            Err(CipherError::BadPadding)
        );
    }

    #[test]
    fn ctr_roundtrip_and_symmetry() {
        let aes = aes();
        let nonce = [7u8; 16];
        let mut data: Vec<u8> = (0..777).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        ctr_xor(&aes, &nonce, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_batched_keystream_matches_block_at_a_time() {
        // lengths straddling the 32-block batch boundary, including ragged
        // tails, must produce the same stream as a naive single-block CTR
        let aes = aes();
        let nonce = [0x5Au8; 16];
        for len in [0usize, 1, 16, 511, 512, 513, 1024, 1500] {
            let mut batched = vec![0u8; len];
            ctr_xor(&aes, &nonce, &mut batched);
            let mut naive = vec![0u8; len];
            let mut counter = nonce;
            for chunk in naive.chunks_mut(16) {
                let mut ks = counter;
                aes.encrypt_block(&mut ks);
                for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                    *d ^= k;
                }
                for b in counter.iter_mut().rev() {
                    *b = b.wrapping_add(1);
                    if *b != 0 {
                        break;
                    }
                }
            }
            assert_eq!(batched, naive, "len={len}");
        }
    }

    #[test]
    fn ctr_counter_carries_across_byte_boundary() {
        let aes = aes();
        let mut nonce = [0u8; 16];
        nonce[15] = 0xFF; // next increment must carry into byte 14
        let mut data = vec![0u8; 48];
        ctr_xor(&aes, &nonce, &mut data);
        // keystream blocks must all differ (no stuck counter)
        assert_ne!(&data[0..16], &data[16..32]);
        assert_ne!(&data[16..32], &data[32..48]);
    }

    #[test]
    fn unpad_rejects_zero_and_oversize() {
        let mut v = vec![1u8, 2, 0];
        assert_eq!(unpad(&mut v), Err(CipherError::BadPadding));
        let mut v = vec![5u8, 5, 5]; // claims 5 pad bytes, only 3 present
        assert_eq!(unpad(&mut v), Err(CipherError::BadPadding));
        let mut v: Vec<u8> = vec![17; 32];
        assert_eq!(unpad(&mut v), Err(CipherError::BadPadding));
    }
}
