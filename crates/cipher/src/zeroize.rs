//! Best-effort zeroization of key material.
//!
//! The paper's trust model (§5) assumes index and storage sites never see
//! the master key or the chunk-PRP keys. Inside one process the residual
//! risk is key bytes lingering in freed memory (heap dumps, swap, a later
//! out-of-bounds read). [`wipe`] clears a buffer with volatile stores so
//! the optimizer cannot elide the writes as dead — the standard
//! `zeroize`-crate technique, reimplemented here because the workspace
//! builds offline and this is the only place that needs it.
//!
//! Scope: this wipes what the cipher types *own* (AES round-key
//! schedules, the master key bytes). Copies the compiler spilled to the
//! stack or moved during `Clone` are inherently out of reach — this is
//! hygiene, not a hermetic guarantee.
//!
//! This module is the only `unsafe` code in the workspace; the crate root
//! is `#![deny(unsafe_code)]` and every site below carries a `SAFETY:`
//! rationale audited by `sdds-lint` (rule `unsafe-audit`).
#![allow(unsafe_code)]

use std::sync::atomic::{compiler_fence, Ordering};

/// Overwrites `bytes` with zeros through volatile stores, then fences so
/// the stores are ordered before any subsequent deallocation.
pub(crate) fn wipe(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, uniquely borrowed byte inside a live
        // buffer, so a volatile store through it is defined behavior; the
        // volatile qualifier only prevents the optimizer from discarding
        // the store as dead (the buffer is about to be dropped).
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_clears_every_byte() {
        let mut buf = [0xAAu8; 37];
        wipe(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn wipe_handles_empty_buffer() {
        wipe(&mut []);
    }
}
