//! AES-128 (FIPS-197) implemented from first principles.
//!
//! The S-box is *computed* at construction from multiplicative inversion in
//! GF(2^8) with the Rijndael polynomial `x^8+x^4+x^3+x+1` followed by the
//! affine transform, rather than pasted in as a table; unit tests pin it
//! against the published values and the full cipher against the FIPS-197
//! appendix vectors. This keeps the implementation auditable and exercises
//! the same finite-field machinery the rest of the system builds on.
//!
//! Performance: a byte-oriented implementation with table-driven
//! MixColumns (no unsafe, no AES-NI). The key-independent tables (S-box,
//! GF multiplication) are computed once per process; `Aes128::new` only
//! performs key expansion, which matters because the SWP chunk matcher
//! derives a fresh check cipher per candidate position.

/// The Rijndael reduction polynomial, `x^8 + x^4 + x^3 + x + 1`.
const RIJNDAEL_POLY: u32 = 0x11B;

/// Carry-less multiply modulo the Rijndael polynomial.
fn gmul(mut a: u32, mut b: u32) -> u8 {
    let mut acc = 0u32;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= RIJNDAEL_POLY;
        }
        b >>= 1;
    }
    acc as u8
}

/// Multiplicative inverse in GF(2^8)/0x11B via Fermat: `a^254`.
fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0; // AES S-box maps 0 through the affine step only
    }
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 != 0 {
            result = gmul(result as u32, base as u32);
        }
        base = gmul(base as u32, base as u32);
        e >>= 1;
    }
    result
}

/// Process-global key-independent tables.
type SboxPair = ([u8; 256], [u8; 256]);

fn tables() -> &'static (SboxPair, MulTables) {
    static TABLES: std::sync::OnceLock<(SboxPair, MulTables)> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| (build_sbox(), build_mul_tables()))
}

fn build_sbox() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv_sbox = [0u8; 256];
    #[allow(clippy::needless_range_loop)] // i is the field element itself
    for i in 0..256usize {
        let x = ginv(i as u8);
        // affine transform: b ^= rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let s =
            x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
        sbox[i] = s;
        inv_sbox[s as usize] = i as u8;
    }
    (sbox, inv_sbox)
}

/// Precomputed GF(2^8) multiplication tables for the MixColumns constants
/// (the hot path of every round — table lookups instead of carry-less
/// multiply loops give a several-fold block speedup, which matters because
/// the chunk PRP performs ~24 block operations per chunk).
#[derive(Clone)]
struct MulTables {
    m2: [u8; 256],
    m3: [u8; 256],
    m9: [u8; 256],
    m11: [u8; 256],
    m13: [u8; 256],
    m14: [u8; 256],
}

fn build_mul_tables() -> MulTables {
    let mut t = MulTables {
        m2: [0; 256],
        m3: [0; 256],
        m9: [0; 256],
        m11: [0; 256],
        m13: [0; 256],
        m14: [0; 256],
    };
    for a in 0..256usize {
        t.m2[a] = gmul(a as u32, 2);
        t.m3[a] = gmul(a as u32, 3);
        t.m9[a] = gmul(a as u32, 9);
        t.m11[a] = gmul(a as u32, 11);
        t.m13[a] = gmul(a as u32, 13);
        t.m14[a] = gmul(a as u32, 14);
    }
    t
}

/// AES-128: 10 rounds, 128-bit key, 16-byte blocks.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    sbox: &'static [u8; 256],
    inv_sbox: &'static [u8; 256],
    mul: &'static MulTables,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // never print key material
        f.write_str("Aes128 {{ .. }}")
    }
}

impl Drop for Aes128 {
    /// Wipes the round-key schedule so key material does not linger in
    /// freed memory (best effort; see [`crate::zeroize`]).
    fn drop(&mut self) {
        self.zeroize_schedule();
    }
}

impl Aes128 {
    /// Block size in bytes.
    pub const BLOCK: usize = 16;

    /// Expands a 128-bit key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let ((sbox, inv_sbox), mul) = tables();
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1); // RotWord
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize]; // SubWord
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon as u32, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        // the expansion scratch holds the full schedule; clear it before
        // the stack frame is reused
        for word in w.iter_mut() {
            crate::zeroize::wipe(word);
        }
        Aes128 {
            round_keys,
            sbox,
            inv_sbox,
            mul,
        }
    }

    /// Volatile-clears the round-key schedule (the drop path; split out so
    /// tests can assert the buffer really is zeroed).
    fn zeroize_schedule(&mut self) {
        for rk in self.round_keys.iter_mut() {
            crate::zeroize::wipe(rk);
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout follows FIPS-197: byte `i` of the block is state row
    /// `i % 4`, column `i / 4`. ShiftRows rotates row `r` left by `r`.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(&self, state: &mut [u8; 16]) {
        let m = &self.mul;
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (
                col[0] as usize,
                col[1] as usize,
                col[2] as usize,
                col[3] as usize,
            );
            col[0] = m.m2[a0] ^ m.m3[a1] ^ a2 as u8 ^ a3 as u8;
            col[1] = a0 as u8 ^ m.m2[a1] ^ m.m3[a2] ^ a3 as u8;
            col[2] = a0 as u8 ^ a1 as u8 ^ m.m2[a2] ^ m.m3[a3];
            col[3] = m.m3[a0] ^ a1 as u8 ^ a2 as u8 ^ m.m2[a3];
        }
    }

    fn inv_mix_columns(&self, state: &mut [u8; 16]) {
        let m = &self.mul;
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (
                col[0] as usize,
                col[1] as usize,
                col[2] as usize,
                col[3] as usize,
            );
            col[0] = m.m14[a0] ^ m.m11[a1] ^ m.m13[a2] ^ m.m9[a3];
            col[1] = m.m9[a0] ^ m.m14[a1] ^ m.m11[a2] ^ m.m13[a3];
            col[2] = m.m13[a0] ^ m.m9[a1] ^ m.m14[a2] ^ m.m11[a3];
            col[3] = m.m11[a0] ^ m.m13[a1] ^ m.m9[a2] ^ m.m14[a3];
        }
    }

    /// Encrypts one 16-byte block in place.
    ///
    /// Block bytes are in the natural FIPS-197 order, i.e. `block[i]` is
    /// state row `i % 4`, column `i / 4` — exactly the wire order.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            self.sub_bytes(block);
            Self::shift_rows(block);
            self.mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        self.sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        for round in (1..10).rev() {
            Self::add_round_key(block, &self.round_keys[round]);
            self.inv_mix_columns(block);
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
        }
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a run of contiguous 16-byte blocks in place (ECB over the
    /// slice). The batched form keeps round keys and tables hot across
    /// blocks, which is where the bulk ingest path spends its cipher time.
    ///
    /// # Panics
    ///
    /// If `data.len()` is not a multiple of 16.
    pub fn encrypt_blocks(&self, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(Self::BLOCK),
            "length {} not a multiple of the AES block size",
            data.len()
        );
        for block in data.chunks_exact_mut(Self::BLOCK) {
            // lint: allow(panic-freedom) -- chunks_exact_mut(16) yields 16-byte slices
            let block: &mut [u8; 16] = block.try_into().expect("chunks_exact yields 16");
            self.encrypt_block(block);
        }
    }

    /// Decrypts a run of contiguous 16-byte blocks in place (ECB over the
    /// slice).
    ///
    /// # Panics
    ///
    /// If `data.len()` is not a multiple of 16.
    pub fn decrypt_blocks(&self, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(Self::BLOCK),
            "length {} not a multiple of the AES block size",
            data.len()
        );
        for block in data.chunks_exact_mut(Self::BLOCK) {
            // lint: allow(panic-freedom) -- chunks_exact_mut(16) yields 16-byte slices
            let block: &mut [u8; 16] = block.try_into().expect("chunks_exact yields 16");
            self.decrypt_block(block);
        }
    }

    /// A fixed-output-size PRF: `AES_k(pad16(msg_block_chain))` in a
    /// CBC-MAC-like chain. Only used internally for key derivation and the
    /// Feistel round function, always on fixed-format inputs, so CBC-MAC's
    /// variable-length caveats do not apply.
    pub fn prf(&self, data: &[u8]) -> [u8; 16] {
        let mut mac = [0u8; 16];
        let mut iter = data.chunks(16).peekable();
        if iter.peek().is_none() {
            // empty message: single padded block
            let mut block = [0u8; 16];
            block[0] = 0x80;
            for (m, b) in mac.iter_mut().zip(block.iter()) {
                *m ^= b;
            }
            self.encrypt_block(&mut mac);
            return mac;
        }
        while let Some(chunk) = iter.next() {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            if chunk.len() < 16 {
                block[chunk.len()] = 0x80;
            } else if iter.peek().is_none() {
                // full final block: flag with a distinct tweak to separate
                // padded and unpadded finals
                block[15] ^= 0x01;
            }
            for (m, b) in mac.iter_mut().zip(block.iter()) {
                *m ^= b;
            }
            self.encrypt_block(&mut mac);
        }
        mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_matches_published_values() {
        let (sbox, inv) = build_sbox();
        // spot values from FIPS-197 Figure 7
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        assert_eq!(sbox[0x9a], 0xb8);
        // inverse box really inverts
        for i in 0..256 {
            assert_eq!(inv[sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 001122...ff
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expect);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_many_blocks() {
        let aes = Aes128::new(&[7u8; 16]);
        for i in 0..200u32 {
            let mut block: [u8; 16] =
                core::array::from_fn(|j| ((i as usize * 31 + j * 7 + 3) % 256) as u8);
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn encrypt_blocks_matches_per_block_path() {
        let aes = Aes128::new(&[0x33; 16]);
        for nblocks in [0usize, 1, 2, 7, 33] {
            let mut batched: Vec<u8> = (0..nblocks * 16).map(|i| (i % 253) as u8).collect();
            let mut singles = batched.clone();
            aes.encrypt_blocks(&mut batched);
            for block in singles.chunks_exact_mut(16) {
                aes.encrypt_block(block.try_into().unwrap());
            }
            assert_eq!(batched, singles, "nblocks={nblocks}");
            aes.decrypt_blocks(&mut batched);
            assert_eq!(
                batched,
                (0..nblocks * 16)
                    .map(|i| (i % 253) as u8)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the AES block size")]
    fn encrypt_blocks_rejects_ragged_length() {
        Aes128::new(&[0; 16]).encrypt_blocks(&mut [0u8; 15]);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&[1u8; 16]);
        let b = Aes128::new(&[2u8; 16]);
        let mut ba = [0u8; 16];
        let mut bb = [0u8; 16];
        a.encrypt_block(&mut ba);
        b.encrypt_block(&mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn prf_is_deterministic_and_input_sensitive() {
        let aes = Aes128::new(&[9u8; 16]);
        assert_eq!(aes.prf(b"hello"), aes.prf(b"hello"));
        assert_ne!(aes.prf(b"hello"), aes.prf(b"hellp"));
        assert_ne!(aes.prf(b""), aes.prf(b"\x00"));
        // length-extension-style boundary cases differ
        assert_ne!(aes.prf(&[0u8; 16]), aes.prf(&[0u8; 15]));
        assert_ne!(aes.prf(&[0u8; 16]), aes.prf(&[0u8; 17]));
    }

    #[test]
    fn drop_path_wipes_round_key_schedule() {
        // the schedule of a real key is never all-zero bytes
        let mut aes = Aes128::new(&[0x2b; 16]);
        assert!(aes.round_keys.iter().any(|rk| rk.iter().any(|&b| b != 0)));
        aes.zeroize_schedule();
        assert!(
            aes.round_keys.iter().all(|rk| rk.iter().all(|&b| b == 0)),
            "round-key schedule must be cleared by the drop path"
        );
        // dropping after a manual wipe just re-wipes zeros (idempotent)
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x00, 0xab), 0x00);
    }

    #[test]
    fn ginv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gmul(a as u32, ginv(a) as u32), 1, "a={a}");
        }
        assert_eq!(ginv(0), 0);
    }
}
