//! Key hierarchy for the complete scheme.
//!
//! One [`MasterKey`] held by the data owner derives every other secret with
//! a labelled PRF, so that (paper §5, Figure 3):
//!
//! * the **record store** cipher key never reaches any index site,
//! * each **chunking** gets an independent chunk-PRP key (index records of
//!   chunking 0 and chunking 1 are unlinkable at the sites),
//! * the **dispersion matrix** seed is derived, not stored, so "a node does
//!   not have access to the data dispersion scheme" (§1),
//! * per-record IVs are derived from the RID, keeping record encryption
//!   deterministic per (key, record) yet unique across records.

use crate::aes::Aes128;

/// The data owner's master secret.
#[derive(Clone)]
pub struct MasterKey {
    key: [u8; 16],
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MasterKey {{ .. }}") // never print key material
    }
}

impl MasterKey {
    /// Volatile-clears the key bytes (the drop path; split out so tests
    /// can assert the buffer really is zeroed).
    fn zeroize_key(&mut self) {
        crate::zeroize::wipe(&mut self.key);
    }
}

impl Drop for MasterKey {
    /// Wipes the key bytes so they do not linger in freed memory (best
    /// effort; see [`crate::zeroize`]). Clones wipe independently.
    fn drop(&mut self) {
        self.zeroize_key();
    }
}

impl MasterKey {
    /// Wraps raw key bytes.
    pub fn new(key: [u8; 16]) -> MasterKey {
        MasterKey { key }
    }

    /// Derives a master key from a passphrase by iterated PRF stretching.
    /// (A reproduction-grade KDF — real deployments would use a
    /// memory-hard KDF, which is out of scope for the paper.)
    pub fn from_passphrase(passphrase: &str) -> MasterKey {
        let seed = Aes128::new(b"sdds-repro-kdf-0");
        let mut state = seed.prf(passphrase.as_bytes());
        for _ in 0..1024 {
            let aes = Aes128::new(&state);
            state = aes.prf(passphrase.as_bytes());
        }
        MasterKey { key: state }
    }

    /// Derives a labelled subkey: `PRF_master(label ‖ 0x00 ‖ index)`.
    pub fn derive(&self, label: &str, index: u64) -> [u8; 16] {
        let aes = Aes128::new(&self.key);
        let mut input = Vec::with_capacity(label.len() + 9);
        input.extend_from_slice(label.as_bytes());
        input.push(0);
        input.extend_from_slice(&index.to_le_bytes());
        aes.prf(&input)
    }
}

/// The full derived key material for one encrypted searchable file.
#[derive(Clone)]
pub struct KeyMaterial {
    master: MasterKey,
}

impl std::fmt::Debug for KeyMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeyMaterial { .. }") // never print key material
    }
}

impl KeyMaterial {
    /// Builds the hierarchy from a master key.
    pub fn new(master: MasterKey) -> KeyMaterial {
        KeyMaterial { master }
    }

    /// The record store cipher (strong encryption of full records).
    pub fn record_cipher(&self) -> Aes128 {
        Aes128::new(&self.master.derive("record-store", 0))
    }

    /// Per-record IV derived from the record identifier.
    pub fn record_iv(&self, rid: u64) -> [u8; 16] {
        let aes = Aes128::new(&self.master.derive("record-iv", 0));
        aes.prf(&rid.to_le_bytes())
    }

    /// Chunk-PRP key for one chunking (offset family).
    pub fn chunk_key(&self, chunking_id: u32) -> [u8; 16] {
        self.master.derive("chunk-prp", chunking_id as u64)
    }

    /// Seed for the dispersion matrix PRNG (Stage 3).
    pub fn dispersion_seed(&self) -> u64 {
        seed_from(&self.master.derive("dispersion", 0))
    }

    /// Seed for any keyed choices inside the Stage-2 encoder (e.g. tie
    /// breaking between equal-frequency chunks).
    pub fn encoding_seed(&self) -> u64 {
        seed_from(&self.master.derive("encoding", 0))
    }

    /// Sub-keys for the SWP-chunk index mode (one role key per chunking).
    pub fn swp_key(&self, role: &str, chunking: u32) -> [u8; 16] {
        self.master
            .derive(&format!("swp-chunk-{role}"), chunking as u64)
    }
}

/// The first eight bytes of a derived key as a little-endian seed
/// (infallible by construction — no panic path).
fn seed_from(k: &[u8; 16]) -> u64 {
    u64::from_le_bytes([k[0], k[1], k[2], k[3], k[4], k[5], k[6], k[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let mk = MasterKey::new([7; 16]);
        assert_eq!(mk.derive("a", 0), mk.derive("a", 0));
        assert_ne!(mk.derive("a", 0), mk.derive("b", 0));
        assert_ne!(mk.derive("a", 0), mk.derive("a", 1));
        // label/index ambiguity guard: ("a", idx) vs ("a\0...", ...) differ
        assert_ne!(mk.derive("record-store", 0), mk.derive("record-store", 1));
    }

    #[test]
    fn different_masters_diverge() {
        let m1 = MasterKey::new([1; 16]);
        let m2 = MasterKey::new([2; 16]);
        assert_ne!(m1.derive("x", 0), m2.derive("x", 0));
    }

    #[test]
    fn passphrase_kdf_stable_and_sensitive() {
        let a = MasterKey::from_passphrase("correct horse");
        let b = MasterKey::from_passphrase("correct horse");
        let c = MasterKey::from_passphrase("correct horsf");
        assert_eq!(a.derive("t", 0), b.derive("t", 0));
        assert_ne!(a.derive("t", 0), c.derive("t", 0));
    }

    #[test]
    fn key_material_separates_roles() {
        let km = KeyMaterial::new(MasterKey::new([9; 16]));
        // chunk keys differ per chunking
        assert_ne!(km.chunk_key(0), km.chunk_key(1));
        // record IVs differ per record
        assert_ne!(km.record_iv(1), km.record_iv(2));
        // deterministic
        assert_eq!(km.record_iv(1), km.record_iv(1));
        assert_eq!(km.dispersion_seed(), km.dispersion_seed());
    }

    #[test]
    fn debug_never_leaks_key_bytes() {
        let mk = MasterKey::new([0xAB; 16]);
        let s = format!("{mk:?}");
        assert!(!s.contains("171")); // 0xAB
        assert!(!s.to_lowercase().contains("ab, ab"));
        let km = KeyMaterial::new(MasterKey::new([0xAB; 16]));
        let s = format!("{km:?}");
        assert!(!s.contains("171") && !s.to_lowercase().contains("ab, ab"));
    }

    #[test]
    fn drop_path_wipes_master_key_bytes() {
        let mut mk = MasterKey::new([0xCD; 16]);
        mk.zeroize_key();
        assert_eq!(mk.key, [0u8; 16], "master key bytes must be cleared");
    }
}
