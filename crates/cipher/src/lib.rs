//! Block-cipher substrate for the encrypted searchable SDDS.
//!
//! The ICDE'06 scheme needs two kinds of encryption:
//!
//! 1. **Strong encryption** of whole records at the record store site. We
//!    provide [`Aes128`] (implemented from scratch, validated against the
//!    FIPS-197 test vectors) with [`modes`] CBC and CTR.
//! 2. **Deterministic (ECB) encryption of chunks** for the index records
//!    (§2.1: "we then use Electronic Code Book encryption on all the chunks").
//!    Chunks are `s·f` bits — 16, 32, 48 bits … — never the 128 bits of a
//!    standard block cipher, so we provide [`ChunkPrp`], a keyed Feistel
//!    pseudo-random permutation over *arbitrary* bit widths with an
//!    AES-based round function. Equal chunks encrypt equally (the property
//!    search needs); unequal chunks never collide (it is a permutation).
//!
//! [`KeyMaterial`] derives independent subkeys for the record cipher, each
//! chunking's chunk PRP and the dispersion matrices from one master key, so
//! compromising an index site never yields the record key.

// `deny`, not `forbid`: the `zeroize` module opts back in for the volatile
// stores that wipe key material on drop (each site carries a `SAFETY:`
// rationale, audited by `sdds-lint`). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod keys;
pub mod modes;
mod prp;
mod zeroize;

pub use aes::Aes128;
pub use keys::{KeyMaterial, MasterKey};
pub use prp::{ChunkPrp, PrpError};

/// Errors surfaced by the mode-of-operation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CipherError {
    /// Ciphertext length is not a whole number of blocks.
    RaggedCiphertext(usize),
    /// Padding bytes were malformed on decryption.
    BadPadding,
}

impl std::fmt::Display for CipherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CipherError::RaggedCiphertext(n) => {
                write!(
                    f,
                    "ciphertext length {n} is not a multiple of the block size"
                )
            }
            CipherError::BadPadding => write!(f, "invalid PKCS#7 padding"),
        }
    }
}

impl std::error::Error for CipherError {}
