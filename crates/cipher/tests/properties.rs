//! Property tests: cipher round trips, PRP permutation structure, and the
//! chunk-equality property the searchable index relies on.

use proptest::prelude::*;
use sdds_cipher::{modes, Aes128, ChunkPrp, KeyMaterial, MasterKey};

proptest! {
    #[test]
    fn aes_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn cbc_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(), pt in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aes = Aes128::new(&key);
        let ct = modes::cbc_encrypt(&aes, &iv, &pt);
        prop_assert_eq!(modes::cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn ctr_is_an_involution(key in any::<[u8; 16]>(), nonce in any::<[u8; 16]>(), mut data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aes = Aes128::new(&key);
        let orig = data.clone();
        modes::ctr_xor(&aes, &nonce, &mut data);
        modes::ctr_xor(&aes, &nonce, &mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn prp_roundtrip_any_width(key in any::<[u8; 16]>(), width in 1u32..=128, x in any::<u128>()) {
        let prp = ChunkPrp::new(&key, width).unwrap();
        let m = if width == 128 { u128::MAX } else { (1u128 << width) - 1 };
        let x = x & m;
        let y = prp.encrypt(x);
        prop_assert!(y <= m);
        prop_assert_eq!(prp.decrypt(y), x);
    }

    #[test]
    fn prp_injective_on_samples(key in any::<[u8; 16]>(), width in 2u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let prp = ChunkPrp::new(&key, width).unwrap();
        let m = (1u128 << width) - 1;
        let (a, b) = ((a as u128) & m, (b as u128) & m);
        if a != b {
            prop_assert_ne!(prp.encrypt(a), prp.encrypt(b));
        } else {
            prop_assert_eq!(prp.encrypt(a), prp.encrypt(b));
        }
    }

    #[test]
    fn key_material_chunk_keys_pairwise_distinct(master in any::<[u8; 16]>(), i in 0u32..64, j in 0u32..64) {
        let km = KeyMaterial::new(MasterKey::new(master));
        if i != j {
            prop_assert_ne!(km.chunk_key(i), km.chunk_key(j));
        }
    }
}
