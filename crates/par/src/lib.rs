//! A dependency-free scoped worker pool for the batch ingest/search hot
//! paths.
//!
//! The workspace builds fully offline (see `shims/README.md`), so instead
//! of `rayon` this crate provides the small subset the pipeline needs:
//! fork/join maps over slices with deterministic output order, worker-id
//! aware closures, and per-worker scratch state so steady-state work does
//! no per-item allocation.
//!
//! Design: a [`Pool`] is a *configuration* (thread count); execution uses
//! [`std::thread::scope`], so worker threads may borrow the caller's data
//! without `'static` bounds or any unsafe lifetime erasure. Threads are
//! spawned per call and joined before the call returns — for the batch
//! sizes the ingest pipeline uses (hundreds of records, thousands of
//! chunks per dispatch) the ~tens of microseconds of spawn cost vanish
//! against the work, and there is no idle-pool state to leak, poison, or
//! shut down out of order.
//!
//! Work distribution is dynamic: workers pull chunk indices from a shared
//! atomic cursor, so a straggler chunk (one very long record) does not
//! stall the other workers. Results are returned **in chunk order**
//! regardless of which worker computed them — callers that need
//! byte-identical output to a sequential run get it for free.
//!
//! Panic policy: a panicking closure does not deadlock the scope. All
//! remaining chunks are abandoned (workers check a poison flag between
//! chunks), every worker is joined, and the *first* panic payload is
//! re-raised on the calling thread. The pool itself carries no state and
//! stays usable after a panic.
//!
//! ```
//! use sdds_par::Pool;
//!
//! let pool = Pool::new(4);
//! let data: Vec<u64> = (0..1000).collect();
//! let sums = pool.par_map_chunks(&data, 128, |_worker, _chunk_idx, chunk| {
//!     chunk.iter().sum::<u64>()
//! });
//! assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A scoped worker pool: holds the parallelism degree, spawns scoped
/// threads per dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A pool sized to the machine (`available_parallelism`, min 1).
    fn default() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Pool {
    /// Creates a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `items` into contiguous chunks of at most `chunk_size` and
    /// maps `f` over them in parallel. `f` receives
    /// `(worker_id, chunk_index, chunk)`; results come back in chunk
    /// order. Runs inline on the caller thread when one worker (or one
    /// chunk) suffices.
    pub fn par_map_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> R + Sync,
    {
        self.par_map_chunks_with(items, chunk_size, || (), |(), w, i, c| f(w, i, c))
    }

    /// [`par_map_chunks`](Self::par_map_chunks) with per-worker scratch
    /// state: `init` runs once on each worker thread, and the resulting
    /// `S` is passed mutably to every chunk that worker processes — the
    /// hook that lets the ingest pipeline reuse chunk/encode/dispersal
    /// buffers across records instead of allocating per chunk.
    pub fn par_map_chunks_with<S, T, R, I, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let nchunks = items.len().div_ceil(chunk_size);
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            // inline fast path: no threads, same observable behavior
            let mut scratch = init();
            return items
                .chunks(chunk_size)
                .enumerate()
                .map(|(i, c)| f(&mut scratch, 0, i, c))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(nchunks).collect();
        let slots: Vec<Mutex<&mut Option<R>>> = out.iter_mut().map(Mutex::new).collect();
        let first_panic = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let cursor = &cursor;
                    let poisoned = &poisoned;
                    let slots = &slots;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut scratch = init();
                        loop {
                            // ordering: Relaxed — advisory early-exit flag;
                            // results are published via the Mutex slots and
                            // the thread join, not through this load
                            if poisoned.load(Ordering::Relaxed) {
                                return Ok(());
                            }
                            // ordering: Relaxed — the atomic RMW alone hands
                            // each worker a unique index; no other memory is
                            // published through the cursor
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= nchunks {
                                return Ok(());
                            }
                            let chunk =
                                &items[idx * chunk_size..((idx + 1) * chunk_size).min(items.len())];
                            match catch_unwind(AssertUnwindSafe(|| {
                                f(&mut scratch, worker, idx, chunk)
                            })) {
                                Ok(r) => {
                                    let mut slot =
                                        slots[idx].lock().unwrap_or_else(|e| e.into_inner());
                                    **slot = Some(r);
                                }
                                Err(payload) => {
                                    // ordering: Relaxed — flag only requests
                                    // early exit; the panic payload itself
                                    // synchronizes via the join handle
                                    poisoned.store(true, Ordering::Relaxed);
                                    return Err(payload);
                                }
                            }
                        }
                    })
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(payload)) => {
                        // closure panic, caught and carried out of the worker
                        first_panic.get_or_insert(payload);
                    }
                    Err(payload) => {
                        // the worker itself panicked (shouldn't happen: the
                        // closure runs under catch_unwind) — propagate anyway
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            first_panic
        });
        drop(slots);
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out.into_iter()
            // lint: allow(panic-freedom) -- a None slot means a worker died without unwinding, which resume_unwind above already rules out
            .map(|r| r.expect("all chunks completed"))
            .collect()
    }

    /// Maps `f` over every item in parallel (an item-granular convenience
    /// wrapper; prefer [`par_map_chunks`](Self::par_map_chunks) when per-
    /// item work is small).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // chunk granularity: ~4 dispatches per worker for load balance
        let chunk = items.len().div_ceil(self.threads * 4).max(1);
        self.par_map_chunks(items, chunk, |_, _, c| c.iter().map(&f).collect::<Vec<R>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_chunk_order_match_sequential() {
        let data: Vec<u32> = (0..10_000).collect();
        let seq: Vec<u64> = data
            .chunks(97)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let par = pool.par_map_chunks(&data, 97, |_, _, c| {
                c.iter().map(|&x| x as u64).sum::<u64>()
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn chunk_indices_cover_input_exactly_once() {
        let data = vec![1u8; 1003];
        let pool = Pool::new(4);
        let idxs = pool.par_map_chunks(&data, 10, |_, idx, c| (idx, c.len()));
        let seen: HashSet<usize> = idxs.iter().map(|&(i, _)| i).collect();
        assert_eq!(seen.len(), 1003usize.div_ceil(10));
        assert_eq!(idxs.iter().map(|&(_, n)| n).sum::<usize>(), 1003);
        // final partial chunk
        assert_eq!(idxs.last().unwrap().1, 3);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(8);
        let out: Vec<u32> = pool.par_map_chunks(&[] as &[u8], 16, |_, _, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let pool = Pool::new(2);
        let out = pool.par_map_chunks(&[1, 2, 3], 0, |_, _, c: &[i32]| c.len());
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let pool = Pool::new(64);
        let out = pool.par_map_chunks(&[1u8, 2, 3], 1, |_, _, c| c[0] * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn scratch_initialized_once_per_worker_and_reused() {
        let inits = AtomicU64::new(0);
        let data = vec![0u8; 256];
        let pool = Pool::new(3);
        let counts = pool.par_map_chunks_with(
            &data,
            8,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, _, _, _| {
                *scratch += 1;
                *scratch
            },
        );
        // each worker's scratch counted its own chunks; totals add up
        assert_eq!(counts.len(), 32);
        let worker_count = inits.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&worker_count),
            "scratch built per worker, not per chunk: {worker_count}"
        );
        let max_per_worker: u64 = counts.iter().copied().max().unwrap();
        assert!(max_per_worker > 1, "workers reuse scratch across chunks");
    }

    #[test]
    fn panicking_worker_propagates_and_does_not_deadlock() {
        let pool = Pool::new(4);
        let data: Vec<u32> = (0..1000).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_chunks(&data, 10, |_, idx, _| {
                if idx == 57 {
                    panic!("boom at chunk 57");
                }
                idx
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at chunk 57"), "payload preserved: {msg}");
    }

    #[test]
    fn pool_usable_after_a_panic() {
        // the shutdown property: a poisoned dispatch leaves no residue
        let pool = Pool::new(4);
        let data = vec![1u64; 100];
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_chunks(&data, 5, |_, _, _| panic!("first call dies"))
        }));
        let sums = pool.par_map_chunks(&data, 5, |_, _, c| c.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 100);
    }

    #[test]
    fn inline_path_used_for_single_worker() {
        // threads=1 must not spawn: closure sees worker id 0 for all chunks
        let pool = Pool::new(1);
        let data = vec![0u8; 64];
        let ids = pool.par_map_chunks(&data, 4, |worker, _, _| worker);
        assert!(ids.iter().all(|&w| w == 0));
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let data: Vec<u32> = (0..501).collect();
        let pool = Pool::new(4);
        assert_eq!(
            pool.par_map(&data, |&x| x * 3),
            data.iter().map(|&x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn default_pool_has_at_least_one_thread() {
        assert!(Pool::default().threads() >= 1);
    }
}
