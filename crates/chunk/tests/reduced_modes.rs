//! The §2.5 matrix in full: every (storage reduction, search mode)
//! combination, with the trade-offs the paper states — fewer chunkings
//! mean fewer sites and longer minimum queries; Exhaustive mode buys the
//! AND rule's false-positive cuts at 2s-1 minimum length.

use sdds_chunk::{find_series, ChunkingScheme, CombinationRule, PartialChunkPolicy, SearchMode};

fn search(
    scheme: &ChunkingScheme,
    record: &[u16],
    query: &[u16],
    mode: SearchMode,
) -> Option<bool> {
    let series = scheme.search_series(query, mode).ok()?;
    let verdicts: Vec<bool> = (0..scheme.num_chunkings())
        .map(|j| {
            let chunks = scheme.chunk_record(j, record, PartialChunkPolicy::Store);
            series
                .iter()
                .any(|s| !find_series(&chunks, &s.chunks).is_empty())
        })
        .collect();
    Some(match mode.combination() {
        CombinationRule::All => verdicts.iter().all(|&v| v),
        CombinationRule::Any => verdicts.iter().any(|&v| v),
    })
}

#[test]
fn section_2_5_search_string_counts() {
    // "we generate two search chunkings" (4 sites, s=8) and "have to send
    // four search strings" (2 sites, s=8)
    let q: Vec<u16> = (1..=24).collect();
    for (c, expected_series) in [(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
        let scheme = ChunkingScheme::new(8, c).unwrap();
        let series = scheme.search_series(&q, SearchMode::Minimal).unwrap();
        assert_eq!(series.len(), expected_series, "c={c}");
    }
}

#[test]
fn storage_against_search_length_tradeoff() {
    // fewer chunkings stored ⇒ longer minimum query, exactly s + s/c - 1
    for (s, c, min) in [(8usize, 8usize, 8usize), (8, 4, 9), (8, 2, 11), (8, 1, 15)] {
        let scheme = ChunkingScheme::new(s, c).unwrap();
        assert_eq!(
            scheme.min_search_len(SearchMode::Minimal),
            min,
            "s={s} c={c}"
        );
        // one symbol below the minimum is rejected
        let too_short: Vec<u16> = (1..min as u16).collect();
        assert!(scheme
            .search_series(&too_short, SearchMode::Minimal)
            .is_err());
        // the minimum itself works end to end
        let record: Vec<u16> = (1..=40).collect();
        let q = &record[3..3 + min];
        assert_eq!(
            search(&scheme, &record, q, SearchMode::Minimal),
            Some(true),
            "s={s} c={c}"
        );
    }
}

#[test]
fn exhaustive_mode_works_on_reduced_storage_too() {
    // sending all s drops lets even a 2-chunking file AND its verdicts
    let scheme = ChunkingScheme::new(8, 2).unwrap();
    let record: Vec<u16> = (1..=48).collect();
    let min = scheme.min_search_len(SearchMode::Exhaustive);
    assert_eq!(min, 15); // 2s - 1
    for start in 0..20 {
        let q = &record[start..start + min];
        assert_eq!(
            search(&scheme, &record, q, SearchMode::Exhaustive),
            Some(true)
        );
    }
    // absent pattern rejected by every chunking
    let phantom: Vec<u16> = (100..115).collect();
    assert_eq!(
        search(&scheme, &record, &phantom, SearchMode::Exhaustive),
        Some(false)
    );
}

#[test]
fn minimal_mode_single_site_reports_per_occurrence() {
    // §2.5: "for each occurrence of the substring, only one site will
    // report a hit"
    let scheme = ChunkingScheme::new(8, 4).unwrap();
    let record: Vec<u16> = (1..=64).collect();
    let q = &record[6..6 + 9]; // min length 9
    let series = scheme.search_series(q, SearchMode::Minimal).unwrap();
    let reporting: usize = (0..scheme.num_chunkings())
        .filter(|&j| {
            let chunks = scheme.chunk_record(j, &record, PartialChunkPolicy::Store);
            series
                .iter()
                .any(|s| !find_series(&chunks, &s.chunks).is_empty())
        })
        .count();
    assert_eq!(reporting, 1, "exactly one chunking should attest");
}

#[test]
fn repeated_content_can_make_multiple_sites_report() {
    // the paper's caveat: "because of false positives or because of
    // repeating characters, there might be more hits"
    let scheme = ChunkingScheme::new(4, 4).unwrap();
    let record: Vec<u16> = [7u16; 32].to_vec(); // all-identical symbols
    let q = vec![7u16; 8];
    let series = scheme.search_series(&q, SearchMode::Minimal).unwrap();
    let reporting: usize = (0..scheme.num_chunkings())
        .filter(|&j| {
            let chunks = scheme.chunk_record(j, &record, PartialChunkPolicy::Store);
            series
                .iter()
                .any(|s| !find_series(&chunks, &s.chunks).is_empty())
        })
        .count();
    assert!(
        reporting > 1,
        "repetition should multiply hits: {reporting}"
    );
}
