//! The central Stage-1 invariant, tested end to end over plaintext chunks:
//!
//! * **Completeness** — a substring that truly occurs in the record is
//!   always found: in Minimal mode at least one chunking matches an
//!   aligned series; in Exhaustive mode *every* chunking matches.
//! * **Position consistency** — the match index translates back to the
//!   true occurrence position.

use proptest::prelude::*;
use sdds_chunk::{find_series, ChunkingScheme, CombinationRule, PartialChunkPolicy, SearchMode};

/// Runs a full plaintext search: chunks the record under every chunking,
/// generates the query series, and combines per-chunking verdicts.
fn plaintext_search(
    scheme: &ChunkingScheme,
    record: &[u16],
    query: &[u16],
    mode: SearchMode,
    policy: PartialChunkPolicy,
) -> bool {
    let series = match scheme.search_series(query, mode) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut verdicts = Vec::new();
    for j in 0..scheme.num_chunkings() {
        let chunks = scheme.chunk_record(j, record, policy);
        let hit = series
            .iter()
            .any(|ser| !find_series(&chunks, &ser.chunks).is_empty());
        verdicts.push(hit);
    }
    match mode.combination() {
        CombinationRule::All => verdicts.iter().all(|&v| v),
        CombinationRule::Any => verdicts.iter().any(|&v| v),
    }
}

fn schemes() -> Vec<ChunkingScheme> {
    [
        (4, 4),
        (4, 2),
        (4, 1),
        (8, 8),
        (8, 4),
        (8, 2),
        (6, 3),
        (2, 2),
    ]
    .into_iter()
    .map(|(s, c)| ChunkingScheme::new(s, c).unwrap())
    .collect()
}

#[test]
fn true_substrings_are_always_found() {
    for scheme in schemes() {
        for mode in [SearchMode::Minimal, SearchMode::Exhaustive] {
            let record: Vec<u16> = (b'A'..=b'Z').map(u16::from).collect();
            let min = scheme.min_search_len(mode);
            for start in 0..record.len().saturating_sub(min) {
                for len in min..=(record.len() - start).min(min + 6) {
                    let query = &record[start..start + len];
                    assert!(
                        plaintext_search(&scheme, &record, query, mode, PartialChunkPolicy::Store),
                        "missed occurrence: scheme={scheme:?} mode={mode:?} start={start} len={len}"
                    );
                }
            }
        }
    }
}

#[test]
fn absent_distinct_symbols_are_never_found() {
    // With all-distinct symbols and no padding collisions, there are no
    // false positives: chunk equality implies symbol equality.
    for scheme in schemes() {
        let record: Vec<u16> = (100..140).collect();
        let query: Vec<u16> = (200..216).collect();
        for mode in [SearchMode::Minimal, SearchMode::Exhaustive] {
            assert!(
                !plaintext_search(&scheme, &record, &query, mode, PartialChunkPolicy::Store),
                "phantom hit: scheme={scheme:?} mode={mode:?}"
            );
        }
    }
}

#[test]
fn paper_example_acdefghi_false_positive_with_one_site_only() {
    // §2.4: with only storage site one (chunking 0), searching "ACDEFGHI"
    // in "ABCDEFGH…" yields a false hit, because its critical chunked
    // search string (EFGH at drop 3) is the same as the true query's.
    let scheme = ChunkingScheme::full(4).unwrap();
    let record: Vec<u16> = (b'A'..=b'Z').map(u16::from).collect();
    let query: Vec<u16> = "ACDEFGHI".bytes().map(u16::from).collect();
    // "ACDEFGHI" does not occur in the record…
    assert!(!record.windows(8).any(|w| w == &query[..]));
    // …but chunking 0 alone reports a hit:
    let chunks = scheme.chunk_record(0, &record, PartialChunkPolicy::Store);
    let series = scheme
        .search_series(&query, SearchMode::Exhaustive)
        .unwrap();
    let site_one_hit = series
        .iter()
        .any(|ser| !find_series(&chunks, &ser.chunks).is_empty());
    assert!(site_one_hit, "single-site false positive expected");
    // …while the AND over all four sites rejects it:
    assert!(!plaintext_search(
        &scheme,
        &record,
        &query,
        SearchMode::Exhaustive,
        PartialChunkPolicy::Store
    ));
}

#[test]
fn drop_policy_loses_only_boundary_hits() {
    // With PartialChunkPolicy::Drop, interior occurrences are still found.
    let scheme = ChunkingScheme::full(4).unwrap();
    let record: Vec<u16> = (b'A'..=b'Z').map(u16::from).collect();
    let query: Vec<u16> = "IJKLMNOP".bytes().map(u16::from).collect(); // interior
    assert!(plaintext_search(
        &scheme,
        &record,
        &query,
        SearchMode::Minimal,
        PartialChunkPolicy::Drop
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_record_random_substring_found(
        seed in any::<u64>(),
        record_len in 16usize..80,
        scheme_idx in 0usize..8,
        mode_flag in any::<bool>(),
    ) {
        let scheme = schemes()[scheme_idx];
        let mode = if mode_flag { SearchMode::Exhaustive } else { SearchMode::Minimal };
        // alphabet of 4 symbols (1..=4, avoiding the pad symbol 0)
        let record: Vec<u16> = (0..record_len)
            .map(|i| 1 + ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)
                >> 33) % 4) as u16)
            .collect();
        let min = scheme.min_search_len(mode);
        if record.len() >= min {
            let start = (seed % (record.len() - min + 1) as u64) as usize;
            let len = min + (seed % 3) as usize;
            if start + len <= record.len() {
                let query = &record[start..start + len];
                prop_assert!(plaintext_search(
                    &scheme, &record, query, mode, PartialChunkPolicy::Store
                ));
            }
        }
    }

    #[test]
    fn search_series_chunks_reassemble_query(
        seed in any::<u64>(),
        qlen in 15usize..40,
        scheme_idx in 0usize..8,
    ) {
        // Every series' chunks concatenated must equal the query minus the
        // dropped prefix and ragged tail.
        let scheme = schemes()[scheme_idx];
        let query: Vec<u16> = (0..qlen)
            .map(|i| (seed.wrapping_add(i as u64) % 251) as u16)
            .collect();
        if let Ok(series) = scheme.search_series(&query, SearchMode::Exhaustive) {
            for ser in series {
                let flat: Vec<u16> = ser.chunks.concat();
                let expect_len = (query.len() - ser.drop) / scheme.chunk_size()
                    * scheme.chunk_size();
                prop_assert_eq!(&flat[..], &query[ser.drop..ser.drop + expect_len]);
            }
        }
    }
}
