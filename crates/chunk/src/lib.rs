//! Stage 1 of the ICDE'06 scheme: chunking of record contents and of
//! search strings.
//!
//! A *chunking* splits the record content into chunks of `s` symbols at a
//! fixed offset; the scheme stores several chunkings of each record on
//! different sites so that a substring search can always find a
//! chunk-aligned decomposition of the query (§2.1). The full scheme uses
//! all `s` offsets; §2.5 trades storage for false positives by keeping only
//! `c` offsets (`c` dividing `s`), at the price of longer minimum query
//! lengths and an OR- instead of AND-combination of site answers.
//!
//! Everything here is on *plaintext* symbols; the encrypt step (the chunk
//! PRP of `sdds-cipher`) and the lossy Stage-2 encoding compose around it.
//!
//! # Paper example (§2.2)
//!
//! ```
//! use sdds_chunk::{ChunkingScheme, PartialChunkPolicy};
//!
//! let scheme = ChunkingScheme::new(4, 4).unwrap();       // s = 4, full
//! let rc: Vec<u16> = "ABCDEFGHIJKLMNOPQRSTUVWXYZ".bytes().map(u16::from).collect();
//! let chunks = scheme.chunk_record(0, &rc, PartialChunkPolicy::Store);
//! assert_eq!(chunks[0], "ABCD".bytes().map(u16::from).collect::<Vec<_>>());
//! assert_eq!(chunks[6], vec![u16::from(b'Y'), u16::from(b'Z'), 0, 0]); // padded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matcher;
mod scheme;
mod search;

pub use matcher::find_series;
pub use scheme::{ChunkError, ChunkingScheme, PartialChunkPolicy, PAD_SYMBOL};
pub use search::{CombinationRule, SearchMode, SearchSeries};
