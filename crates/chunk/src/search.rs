//! Search-string chunking (§2.3, §2.5).
//!
//! To search for a substring the client produces *series* of chunk-aligned
//! decompositions of the query, one per possible alignment drop. Series
//! contain only complete chunks — never padded ones — so every chunk in a
//! series must match an index-record chunk exactly.

use crate::scheme::{ChunkError, ChunkingScheme};

/// How many alignment drops the client sends, which determines how site
/// answers combine (§2.3 vs §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Send all `s` drops. Every chunking site then finds an aligned series
    /// for a true occurrence, so the client may AND the per-chunking
    /// verdicts ("it is not possible that a search results in false
    /// positives from all sites", §2.3). Requires `len >= 2s - 1` for the
    /// AND guarantee.
    Exhaustive,
    /// Send only the `t = s/c` drops needed for coverage; exactly one
    /// chunking reports per occurrence, so verdicts combine by OR and
    /// "false positives will be more numerous" (§2.5). Requires
    /// `len >= s + t - 1`.
    #[default]
    Minimal,
}

/// The per-chunking combination rule implied by a [`SearchMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinationRule {
    /// A record matches only if **every** chunking reports a hit.
    All,
    /// A record matches if **any** chunking reports a hit.
    Any,
}

impl SearchMode {
    /// The combination rule this mode supports.
    pub fn combination(self) -> CombinationRule {
        match self {
            SearchMode::Exhaustive => CombinationRule::All,
            SearchMode::Minimal => CombinationRule::Any,
        }
    }
}

/// One chunk-aligned decomposition of the query: the first `drop` symbols
/// are skipped, the remainder is cut into complete chunks (any ragged tail
/// is discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSeries {
    /// Number of leading query symbols skipped.
    pub drop: usize,
    /// The complete chunks of the remaining query.
    pub chunks: Vec<Vec<u16>>,
}

impl ChunkingScheme {
    /// Minimum query length searchable in `mode`.
    pub fn min_search_len(&self, mode: SearchMode) -> usize {
        let s = self.chunk_size();
        match mode {
            // worst-case drop s-1 must still leave one complete chunk
            SearchMode::Exhaustive => 2 * s - 1,
            // worst-case drop t-1 must still leave one complete chunk
            SearchMode::Minimal => s + self.offset_step() - 1,
        }
    }

    /// Produces the search series for `query` under `mode`.
    ///
    /// Errors if the query is shorter than [`min_search_len`]
    /// (§2.3: "our search strategy does not work for search strings of
    /// length less than s").
    ///
    /// [`min_search_len`]: Self::min_search_len
    pub fn search_series(
        &self,
        query: &[u16],
        mode: SearchMode,
    ) -> Result<Vec<SearchSeries>, ChunkError> {
        let s = self.chunk_size();
        let min = self.min_search_len(mode);
        if query.len() < min {
            return Err(ChunkError::QueryTooShort {
                len: query.len(),
                min,
            });
        }
        let ndrops = match mode {
            SearchMode::Exhaustive => s,
            SearchMode::Minimal => self.offset_step(),
        };
        let mut out = Vec::with_capacity(ndrops);
        for drop in 0..ndrops {
            let rest = &query[drop..];
            let chunks: Vec<Vec<u16>> = rest.chunks_exact(s).map(|c| c.to_vec()).collect();
            debug_assert!(!chunks.is_empty(), "min length guarantees >= 1 chunk");
            out.push(SearchSeries { drop, chunks });
        }
        Ok(out)
    }

    /// The drop value whose series aligns with chunking `chunking_id` for a
    /// query occurring at record position `pos` — the invariant that makes
    /// search complete.
    pub fn aligned_drop(&self, chunking_id: usize, pos: usize) -> usize {
        let s = self.chunk_size();
        let pad = self.padding_of(chunking_id);
        // chunk boundaries of chunking j sit at positions ≡ -pad (mod s);
        // the first boundary at or after pos is pos + drop
        (s - ((pos + pad) % s)) % s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    #[test]
    fn paper_section_2_4_search_example() {
        // s = 4, query "BCDEFGHIJK": the paper produces
        //   (BCDE)(FGHI) ; (CDEF)(GHIJ) ; (DEFG)(HIJK) ; (EFGH)
        let scheme = ChunkingScheme::full(4).unwrap();
        let series = scheme
            .search_series(&syms("BCDEFGHIJK"), SearchMode::Exhaustive)
            .unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].chunks, vec![syms("BCDE"), syms("FGHI")]);
        assert_eq!(series[1].chunks, vec![syms("CDEF"), syms("GHIJ")]);
        assert_eq!(series[2].chunks, vec![syms("DEFG"), syms("HIJK")]);
        assert_eq!(series[3].chunks, vec![syms("EFGH")]);
    }

    #[test]
    fn minimal_mode_matches_paper_2_5() {
        // s = 8, 4 chunkings: "we generate two search chunkings".
        let scheme = ChunkingScheme::new(8, 4).unwrap();
        let q: Vec<u16> = (1..=20).collect();
        let series = scheme.search_series(&q, SearchMode::Minimal).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].drop, 0);
        assert_eq!(series[1].drop, 1);
        // s = 8, 2 chunkings: four search chunkings
        let scheme = ChunkingScheme::new(8, 2).unwrap();
        let series = scheme.search_series(&q, SearchMode::Minimal).unwrap();
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn min_lengths_match_paper() {
        let s8c8 = ChunkingScheme::new(8, 8).unwrap();
        assert_eq!(s8c8.min_search_len(SearchMode::Minimal), 8); // = s
        let s8c4 = ChunkingScheme::new(8, 4).unwrap();
        assert_eq!(s8c4.min_search_len(SearchMode::Minimal), 9); // s + 1 (§2.5)
        let s8c2 = ChunkingScheme::new(8, 2).unwrap();
        assert_eq!(s8c2.min_search_len(SearchMode::Minimal), 11); // s + 3 (§2.5)
        assert_eq!(s8c8.min_search_len(SearchMode::Exhaustive), 15); // 2s - 1
    }

    #[test]
    fn too_short_query_rejected() {
        let scheme = ChunkingScheme::full(4).unwrap();
        let err = scheme
            .search_series(&syms("ABC"), SearchMode::Minimal)
            .unwrap_err();
        assert_eq!(err, ChunkError::QueryTooShort { len: 3, min: 4 });
    }

    #[test]
    fn exactly_min_length_yields_single_chunk_series() {
        let scheme = ChunkingScheme::new(8, 4).unwrap();
        let q: Vec<u16> = (1..=9).collect(); // min length s + 1 = 9
        let series = scheme.search_series(&q, SearchMode::Minimal).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].chunks.len(), 1);
        assert_eq!(series[1].chunks.len(), 1);
    }

    #[test]
    fn aligned_drop_is_consistent_with_chunk_starts() {
        for (s, c) in [(4, 4), (8, 4), (8, 2), (6, 3), (8, 1)] {
            let scheme = ChunkingScheme::new(s, c).unwrap();
            for j in 0..c {
                for pos in 0..3 * s {
                    let d = scheme.aligned_drop(j, pos);
                    // pos + d must be a chunk start of chunking j
                    let shifted = (pos + d) as isize;
                    let pad = scheme.padding_of(j) as isize;
                    assert_eq!(
                        (shifted + pad).rem_euclid(s as isize),
                        0,
                        "s={s} c={c} j={j} pos={pos} d={d}"
                    );
                    assert!(d < s);
                }
            }
        }
    }

    #[test]
    fn minimal_drops_cover_every_position_in_some_chunking() {
        // Completeness: for every position there is a chunking whose
        // aligned drop is among the t sent drops.
        for (s, c) in [(8, 8), (8, 4), (8, 2), (8, 1), (12, 3)] {
            let scheme = ChunkingScheme::new(s, c).unwrap();
            let t = scheme.offset_step();
            for pos in 0..4 * s {
                let covered = (0..c).any(|j| scheme.aligned_drop(j, pos) < t);
                assert!(covered, "s={s} c={c} pos={pos} uncovered");
            }
        }
    }

    #[test]
    fn mode_implies_combination_rule() {
        assert_eq!(SearchMode::Exhaustive.combination(), CombinationRule::All);
        assert_eq!(SearchMode::Minimal.combination(), CombinationRule::Any);
    }
}
