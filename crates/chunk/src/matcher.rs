//! Site-side series matching.
//!
//! A storage site holds the sequence of (encrypted, possibly encoded and
//! dispersed) chunks of each index record. Matching a search series means
//! finding every chunk index where the series' chunks occur *consecutively*
//! (§2.3: sites "try to match consecutive chunks"). The site never learns
//! plaintext — equality of opaque values is all it needs, so the matcher is
//! generic.

/// Returns every start index at which `series` occurs as a contiguous run
/// in `chunks`. An empty series matches nowhere (sites receive only
/// non-empty series).
pub fn find_series<T: PartialEq>(chunks: &[T], series: &[T]) -> Vec<usize> {
    if series.is_empty() || series.len() > chunks.len() {
        return Vec::new();
    }
    chunks
        .windows(series.len())
        .enumerate()
        .filter_map(|(i, w)| (w == series).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_occurrence() {
        let chunks = vec!["AB", "CD", "EF", "GH"];
        assert_eq!(find_series(&chunks, &["CD", "EF"]), vec![1]);
    }

    #[test]
    fn finds_multiple_occurrences_including_overlaps() {
        let chunks = vec![1, 1, 1, 2];
        assert_eq!(find_series(&chunks, &[1, 1]), vec![0, 1]);
    }

    #[test]
    fn no_match_returns_empty() {
        let chunks = vec![1, 2, 3];
        assert!(find_series(&chunks, &[4]).is_empty());
        assert!(find_series(&chunks, &[2, 1]).is_empty());
    }

    #[test]
    fn series_longer_than_record_never_matches() {
        let chunks = vec![1, 2];
        assert!(find_series(&chunks, &[1, 2, 3]).is_empty());
    }

    #[test]
    fn empty_series_matches_nowhere() {
        let chunks = vec![1, 2, 3];
        assert!(find_series::<i32>(&chunks, &[]).is_empty());
    }

    #[test]
    fn works_on_opaque_encrypted_values() {
        // 128-bit ciphertext chunks — the realistic type at a site.
        let chunks: Vec<u128> = vec![0xDEAD, 0xBEEF, 0xCAFE];
        assert_eq!(find_series(&chunks, &[0xBEEF, 0xCAFE]), vec![1]);
    }
}
