//! Site-side series matching.
//!
//! A storage site holds the sequence of (encrypted, possibly encoded and
//! dispersed) chunks of each index record. Matching a search series means
//! finding every chunk index where the series' chunks occur *consecutively*
//! (§2.3: sites "try to match consecutive chunks"). The site never learns
//! plaintext — equality of opaque values is all it needs, so the matcher is
//! generic.

/// Returns every start index at which `series` occurs as a contiguous run
/// in `chunks`. An empty series matches nowhere (sites receive only
/// non-empty series).
///
/// Runs Morris–Pratt in `O(chunks + series)` comparisons: on a mismatch
/// after `j` matched chunks the scan resumes at the longest proper border
/// of `series[..j]` instead of rescanning the window, so a site's cost per
/// record stays linear even for self-similar series (e.g. runs of a
/// repeated chunk). Overlapping occurrences are all reported.
pub fn find_series<T: PartialEq>(chunks: &[T], series: &[T]) -> Vec<usize> {
    if series.is_empty() || series.len() > chunks.len() {
        return Vec::new();
    }
    // border[j] = length of the longest proper border (prefix == suffix)
    // of series[..j+1]
    let mut border = vec![0usize; series.len()];
    let mut b = 0usize;
    for j in 1..series.len() {
        while b > 0 && series[j] != series[b] {
            b = border[b - 1];
        }
        if series[j] == series[b] {
            b += 1;
        }
        border[j] = b;
    }
    let mut hits = Vec::new();
    let mut j = 0usize; // chunks of `series` currently matched
    for (i, chunk) in chunks.iter().enumerate() {
        while j > 0 && *chunk != series[j] {
            j = border[j - 1];
        }
        if *chunk == series[j] {
            j += 1;
        }
        if j == series.len() {
            hits.push(i + 1 - series.len());
            j = border[j - 1];
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_occurrence() {
        let chunks = vec!["AB", "CD", "EF", "GH"];
        assert_eq!(find_series(&chunks, &["CD", "EF"]), vec![1]);
    }

    #[test]
    fn finds_multiple_occurrences_including_overlaps() {
        let chunks = vec![1, 1, 1, 2];
        assert_eq!(find_series(&chunks, &[1, 1]), vec![0, 1]);
    }

    #[test]
    fn no_match_returns_empty() {
        let chunks = vec![1, 2, 3];
        assert!(find_series(&chunks, &[4]).is_empty());
        assert!(find_series(&chunks, &[2, 1]).is_empty());
    }

    #[test]
    fn series_longer_than_record_never_matches() {
        let chunks = vec![1, 2];
        assert!(find_series(&chunks, &[1, 2, 3]).is_empty());
    }

    #[test]
    fn empty_series_matches_nowhere() {
        let chunks = vec![1, 2, 3];
        assert!(find_series::<i32>(&chunks, &[]).is_empty());
    }

    /// The pre-rewrite reference implementation.
    fn find_series_naive<T: PartialEq>(chunks: &[T], series: &[T]) -> Vec<usize> {
        if series.is_empty() || series.len() > chunks.len() {
            return Vec::new();
        }
        chunks
            .windows(series.len())
            .enumerate()
            .filter_map(|(i, w)| (w == series).then_some(i))
            .collect()
    }

    #[test]
    fn matches_naive_scan_on_adversarial_inputs() {
        // self-similar series exercise the border table; a simple PRNG
        // over a tiny alphabet makes repeats and overlaps common
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..200 {
            let hay: Vec<u8> = (0..next(40)).map(|_| next(3) as u8).collect();
            let needle: Vec<u8> = (0..1 + next(6)).map(|_| next(3) as u8).collect();
            assert_eq!(
                find_series(&hay, &needle),
                find_series_naive(&hay, &needle),
                "hay={hay:?} needle={needle:?}"
            );
        }
        for (hay, needle) in [
            (&[1u8, 1, 1, 1, 1][..], &[1u8, 1][..]),
            (&[1, 2, 1, 2, 1, 2, 1], &[1, 2, 1]),
            (&[1, 1, 2, 1, 1, 2, 1, 1], &[1, 1, 2, 1, 1]),
        ] {
            assert_eq!(find_series(hay, needle), find_series_naive(hay, needle));
        }
    }

    #[test]
    fn works_on_opaque_encrypted_values() {
        // 128-bit ciphertext chunks — the realistic type at a site.
        let chunks: Vec<u128> = vec![0xDEAD, 0xBEEF, 0xCAFE];
        assert_eq!(find_series(&chunks, &[0xBEEF, 0xCAFE]), vec![1]);
    }
}
