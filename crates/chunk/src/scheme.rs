//! The chunking scheme: chunk size, offset family, record chunking.

use std::fmt;

/// The padding symbol (the paper's "zero symbol", §2.1).
pub const PAD_SYMBOL: u16 = 0;

/// Errors from scheme construction and search-string chunking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Chunk size must be at least 1.
    ZeroChunkSize,
    /// The number of chunkings must be in `1..=s` and divide `s`.
    BadChunkingCount {
        /// Chunk size `s`.
        chunk_size: usize,
        /// Requested number of chunkings.
        chunkings: usize,
    },
    /// The query is shorter than the minimum searchable length.
    QueryTooShort {
        /// Length supplied.
        len: usize,
        /// Minimum length for the scheme and mode.
        min: usize,
    },
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::ZeroChunkSize => write!(f, "chunk size must be positive"),
            ChunkError::BadChunkingCount {
                chunk_size,
                chunkings,
            } => write!(
                f,
                "number of chunkings {chunkings} must divide chunk size {chunk_size}"
            ),
            ChunkError::QueryTooShort { len, min } => {
                write!(
                    f,
                    "query length {len} below minimum searchable length {min}"
                )
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// Whether boundary chunks containing padding are stored.
///
/// §2.1: partial first/last chunks "can be recognized … and exploited
/// through an elementary frequency attack. A simple counter-measure such as
/// not storing these partial chunks limits our search capability, but is
/// otherwise perfectly feasible."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialChunkPolicy {
    /// Store padded boundary chunks (full prefix/suffix searchability).
    #[default]
    Store,
    /// Drop any chunk containing padding (better security, §2.1).
    Drop,
}

/// A family of `c` chunkings with chunk size `s` (`c` divides `s`).
///
/// ```
/// use sdds_chunk::{ChunkingScheme, PartialChunkPolicy, SearchMode};
///
/// let scheme = ChunkingScheme::new(8, 4).unwrap();  // §2.5's first example
/// assert_eq!(scheme.offset_step(), 2);
/// assert_eq!(scheme.min_search_len(SearchMode::Minimal), 9); // s + 1
/// let rc: Vec<u16> = (1..=20).collect();
/// let chunks = scheme.chunk_record(1, &rc, PartialChunkPolicy::Store);
/// assert_eq!(chunks[0][..2], [0, 0]); // two pad symbols
/// ```
///
/// Chunking `j` prepends `j·(s/c)` pad symbols before splitting into
/// chunks of `s`, so chunk boundaries of the family cover exactly the
/// position residues that are multiples of `t = s/c`:
///
/// * `c = s` — the full scheme of §2.1 (boundaries at every residue);
/// * `c = 4, s = 8` — the first reduced example of §2.5;
/// * `c = 2, s = 8` — the second reduced example of §2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkingScheme {
    chunk_size: usize,
    chunkings: usize,
}

impl ChunkingScheme {
    /// Creates a scheme with chunk size `s` and `c` chunkings.
    pub fn new(chunk_size: usize, chunkings: usize) -> Result<ChunkingScheme, ChunkError> {
        if chunk_size == 0 {
            return Err(ChunkError::ZeroChunkSize);
        }
        if chunkings == 0 || chunkings > chunk_size || !chunk_size.is_multiple_of(chunkings) {
            return Err(ChunkError::BadChunkingCount {
                chunk_size,
                chunkings,
            });
        }
        Ok(ChunkingScheme {
            chunk_size,
            chunkings,
        })
    }

    /// The full scheme of §2.1: `s` chunkings of chunk size `s`.
    pub fn full(chunk_size: usize) -> Result<ChunkingScheme, ChunkError> {
        ChunkingScheme::new(chunk_size, chunk_size)
    }

    /// Chunk size `s` in symbols.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunkings `c` (= number of index-record families / sites).
    pub fn num_chunkings(&self) -> usize {
        self.chunkings
    }

    /// Offset step `t = s / c` between consecutive chunkings.
    pub fn offset_step(&self) -> usize {
        self.chunk_size / self.chunkings
    }

    /// Number of pad symbols chunking `j` prepends.
    pub fn padding_of(&self, chunking_id: usize) -> usize {
        assert!(chunking_id < self.chunkings, "chunking id out of range");
        chunking_id * self.offset_step()
    }

    /// Splits a record's symbols into the chunks of chunking `chunking_id`.
    ///
    /// The record is logically prefixed by `padding_of(chunking_id)` pad
    /// symbols and suffixed to a multiple of `s`; `policy` controls whether
    /// chunks containing padding survive.
    pub fn chunk_record(
        &self,
        chunking_id: usize,
        symbols: &[u16],
        policy: PartialChunkPolicy,
    ) -> Vec<Vec<u16>> {
        let mut flat = Vec::new();
        let nchunks = self.chunk_record_flat(chunking_id, symbols, policy, &mut flat);
        (0..nchunks)
            .map(|m| flat[m * self.chunk_size..(m + 1) * self.chunk_size].to_vec())
            .collect()
    }

    /// Like [`chunk_record`](Self::chunk_record), but writes the surviving
    /// chunks as `s`-symbol runs into one flat buffer: chunk `m` occupies
    /// `out[m*s..(m+1)*s]`. Returns the number of chunks written. `out` is
    /// cleared but never shrunk, so a caller looping over records reuses a
    /// single allocation.
    pub fn chunk_record_flat(
        &self,
        chunking_id: usize,
        symbols: &[u16],
        policy: PartialChunkPolicy,
        out: &mut Vec<u16>,
    ) -> usize {
        let s = self.chunk_size;
        out.clear();
        if symbols.is_empty() {
            return 0;
        }
        let pad = self.padding_of(chunking_id);
        let total = pad + symbols.len();
        let nchunks = total.div_ceil(s);
        out.reserve(nchunks * s);
        let mut written = 0usize;
        for m in 0..nchunks {
            // chunk m covers padded positions [m*s, (m+1)*s)
            let start = m * s;
            let end = start + s;
            let is_partial = start < pad || end > pad + symbols.len();
            if policy == PartialChunkPolicy::Drop && is_partial {
                continue;
            }
            if !is_partial {
                out.extend_from_slice(&symbols[start - pad..end - pad]);
            } else {
                for pos in start..end {
                    if pos < pad || pos >= pad + symbols.len() {
                        out.push(PAD_SYMBOL);
                    } else {
                        out.push(symbols[pos - pad]);
                    }
                }
            }
            written += 1;
        }
        written
    }

    /// Record position (symbol index) where chunk `m` of chunking
    /// `chunking_id` begins (may be negative for the padded first chunk).
    pub fn chunk_start(&self, chunking_id: usize, m: usize) -> isize {
        m as isize * self.chunk_size as isize - self.padding_of(chunking_id) as isize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            ChunkingScheme::new(0, 1).unwrap_err(),
            ChunkError::ZeroChunkSize
        );
        assert!(matches!(
            ChunkingScheme::new(8, 3).unwrap_err(),
            ChunkError::BadChunkingCount { .. }
        ));
        assert!(matches!(
            ChunkingScheme::new(8, 0).unwrap_err(),
            ChunkError::BadChunkingCount { .. }
        ));
        assert!(matches!(
            ChunkingScheme::new(4, 8).unwrap_err(),
            ChunkError::BadChunkingCount { .. }
        ));
        assert!(ChunkingScheme::new(8, 4).is_ok());
        assert!(ChunkingScheme::new(1, 1).is_ok());
    }

    #[test]
    fn paper_section_2_2_example_full_scheme() {
        // s = 4 on "ABCDEFGHIJKLMNOPQRSTUVWXYZ". The paper lists four
        // chunkings; our chunking-j-prepends-j-zeros family generates the
        // same set of chunkings (labels permuted: paper's 2nd = our 3rd in
        // zero count etc.). Check the offset-1 and offset-3 members.
        let scheme = ChunkingScheme::full(4).unwrap();
        let rc = syms("ABCDEFGHIJKLMNOPQRSTUVWXYZ");

        let c0 = scheme.chunk_record(0, &rc, PartialChunkPolicy::Store);
        assert_eq!(c0[0], syms("ABCD"));
        assert_eq!(c0[5], syms("UVWX"));
        assert_eq!(c0[6], vec![89, 90, 0, 0]); // YZ00
        assert_eq!(c0.len(), 7);

        // paper's fourth chunking "(0ABC),(DEFG),…,(XYZ0)" = 1 pad symbol
        let c1 = scheme.chunk_record(1, &rc, PartialChunkPolicy::Store);
        assert_eq!(c1[0], vec![0, 65, 66, 67]); // 0ABC
        assert_eq!(c1[1], syms("DEFG"));
        assert_eq!(c1[6], vec![88, 89, 90, 0]); // XYZ0

        // paper's second chunking "(000A),(BCDE),…,(Z000)" = 3 pad symbols
        let c3 = scheme.chunk_record(3, &rc, PartialChunkPolicy::Store);
        assert_eq!(c3[0], vec![0, 0, 0, 65]); // 000A
        assert_eq!(c3[1], syms("BCDE"));
        assert_eq!(c3[7], vec![90, 0, 0, 0]); // Z000
        assert_eq!(c3.len(), 8);
    }

    #[test]
    fn paper_section_2_5_reduced_scheme() {
        // s = 8, 4 chunkings: offsets 0, 2, 4, 6 pad symbols.
        let scheme = ChunkingScheme::new(8, 4).unwrap();
        assert_eq!(scheme.offset_step(), 2);
        let rc: Vec<u16> = (1..=30).collect();
        let c1 = scheme.chunk_record(1, &rc, PartialChunkPolicy::Store);
        // (0,0,r0..r5), (r6..r13), ...
        assert_eq!(c1[0], vec![0, 0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(c1[1], vec![7, 8, 9, 10, 11, 12, 13, 14]);
        let c3 = scheme.chunk_record(3, &rc, PartialChunkPolicy::Store);
        // (0,0,0,0,0,0,r0,r1), (r2..r9), ...
        assert_eq!(c3[0], vec![0, 0, 0, 0, 0, 0, 1, 2]);
        assert_eq!(c3[1], vec![3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn drop_policy_removes_padded_chunks() {
        let scheme = ChunkingScheme::full(4).unwrap();
        let rc = syms("ABCDEFGHIJ"); // 10 symbols
        let stored = scheme.chunk_record(2, &rc, PartialChunkPolicy::Store);
        let dropped = scheme.chunk_record(2, &rc, PartialChunkPolicy::Drop);
        assert!(stored.len() > dropped.len());
        assert!(dropped.iter().all(|c| !c.contains(&PAD_SYMBOL)));
        // interior chunks are identical
        for c in &dropped {
            assert!(stored.contains(c));
        }
    }

    #[test]
    fn empty_record_yields_no_chunks() {
        let scheme = ChunkingScheme::full(4).unwrap();
        assert!(scheme
            .chunk_record(0, &[], PartialChunkPolicy::Store)
            .is_empty());
        // chunking with padding only produces the all-pad chunk when storing
        let c = scheme.chunk_record(1, &[], PartialChunkPolicy::Store);
        assert!(
            c.is_empty(),
            "pad-only record area should produce no chunks: {c:?}"
        );
    }

    #[test]
    fn record_shorter_than_chunk() {
        let scheme = ChunkingScheme::full(4).unwrap();
        let c = scheme.chunk_record(0, &syms("AB"), PartialChunkPolicy::Store);
        assert_eq!(c, vec![vec![65, 66, 0, 0]]);
        let c = scheme.chunk_record(0, &syms("AB"), PartialChunkPolicy::Drop);
        assert!(c.is_empty());
    }

    #[test]
    fn flat_chunking_matches_nested_and_reuses_buffer() {
        let mut flat = Vec::new();
        for (s, c) in [(4usize, 4usize), (8, 4), (8, 2), (6, 3)] {
            let scheme = ChunkingScheme::new(s, c).unwrap();
            for len in [0usize, 1, 3, 7, 8, 20, 33] {
                let rc: Vec<u16> = (1..=len as u16).collect();
                for policy in [PartialChunkPolicy::Store, PartialChunkPolicy::Drop] {
                    for j in 0..c {
                        let nested = scheme.chunk_record(j, &rc, policy);
                        let n = scheme.chunk_record_flat(j, &rc, policy, &mut flat);
                        assert_eq!(n, nested.len(), "s={s} c={c} j={j} len={len}");
                        assert_eq!(flat.len(), n * s);
                        for (m, chunk) in nested.iter().enumerate() {
                            assert_eq!(&flat[m * s..(m + 1) * s], &chunk[..]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_start_positions() {
        let scheme = ChunkingScheme::new(8, 4).unwrap();
        assert_eq!(scheme.chunk_start(0, 0), 0);
        assert_eq!(scheme.chunk_start(1, 0), -2);
        assert_eq!(scheme.chunk_start(1, 1), 6);
        assert_eq!(scheme.chunk_start(3, 2), 10);
    }

    #[test]
    fn boundary_residues_cover_multiples_of_step() {
        // The family guarantee: chunk starts of the chunkings cover exactly
        // the residues {0, t, 2t, ...} mod s.
        for (s, c) in [(8, 8), (8, 4), (8, 2), (8, 1), (6, 3), (12, 4)] {
            let scheme = ChunkingScheme::new(s, c).unwrap();
            let t = scheme.offset_step();
            let mut residues: Vec<usize> = (0..c)
                .map(|j| {
                    let start = scheme.chunk_start(j, 1); // some interior chunk
                    (start.rem_euclid(s as isize)) as usize
                })
                .collect();
            residues.sort_unstable();
            let expect: Vec<usize> = (0..c).map(|i| i * t).collect();
            assert_eq!(residues, expect, "s={s} c={c}");
        }
    }
}
