//! Table 3 — χ² after redundancy removal alone (Stage 2).
//!
//! For chunk sizes 1, 2, 4, 6 and a sweep of code-alphabet sizes, the
//! record streams are grouped into chunks, the frequency-equalising
//! codebook is built, and the encoded streams' single/doublet/triplet χ²
//! are reported. The paper's headline behaviours: single-symbol χ² is
//! tiny whenever the number of distinct chunks well exceeds the number of
//! codes; doublet/triplet χ² stay large because "some chunks follow others
//! with much higher frequency" (SMIT → H); fewer codes flatten better but
//! conflate more.

use crate::common::{corpus, ngram_counters};
use sdds_corpus::Record;
use sdds_encode::{Codebook, GramCounter};
use serde::Serialize;

/// One row of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Chunk size (symbols per encoded gram).
    pub chunk_size: usize,
    /// Code-alphabet size.
    pub encodings: usize,
    /// χ² of single codes.
    pub chi2_single: f64,
    /// χ² of code doublets.
    pub chi2_double: f64,
    /// χ² of code triplets.
    pub chi2_triple: f64,
    /// Distinct chunks observed at build time.
    pub distinct_chunks: usize,
}

/// The Table-3 artefact: rows grouped by chunk size.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    /// Corpus size used.
    pub entries: usize,
    /// All rows, in (chunk size, encodings) order.
    pub rows: Vec<Table3Row>,
}

/// The paper's parameter grid.
pub fn paper_grid() -> Vec<(usize, Vec<usize>)> {
    vec![
        (1, vec![2, 4, 8, 16]),
        (2, vec![8, 16, 32, 64, 128]),
        (4, vec![16, 32, 64, 128]),
        (6, vec![16, 32, 64, 128]),
    ]
}

/// Runs one cell of the table.
pub fn run_cell(records: &[Record], chunk_size: usize, encodings: usize) -> Table3Row {
    // group all symbols into chunks of the given size (offset 0, ragged
    // tail dropped — §7's procedure) and equalise
    let mut counter = GramCounter::new(chunk_size);
    for r in records {
        counter.add_record(&r.symbols(), 0);
    }
    let distinct_chunks = counter.distinct();
    let book = Codebook::build_equalized(&counter, encodings);
    let streams = records.iter().map(|r| book.encode_stream(&r.symbols(), 0));
    let (c1, c2, c3) = ngram_counters(streams, encodings);
    Table3Row {
        chunk_size,
        encodings,
        chi2_single: c1.chi2_uniform(),
        chi2_double: c2.chi2_uniform(),
        chi2_triple: c3.chi2_uniform(),
        distinct_chunks,
    }
}

/// Runs the full grid.
pub fn run(entries: usize, seed: u64) -> Table3 {
    let records = corpus(entries, seed);
    let mut rows = Vec::new();
    for (chunk_size, encoding_list) in paper_grid() {
        for encodings in encoding_list {
            rows.push(run_cell(&records, chunk_size, encodings));
        }
    }
    Table3 { entries, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table3 {
        run(3_000, 13)
    }

    #[test]
    fn single_chi2_tiny_when_chunks_dwarf_codes() {
        let t = quick();
        // chunk size 4, 16 codes: thousands of distinct chunks spread over
        // 16 buckets → near-perfect balance (paper: 0.00006)
        let row = t
            .rows
            .iter()
            .find(|r| r.chunk_size == 4 && r.encodings == 16)
            .unwrap();
        assert!(row.distinct_chunks > 16 * 10);
        assert!(
            row.chi2_single < 1.0,
            "χ² single {} too big",
            row.chi2_single
        );
    }

    #[test]
    fn equalisation_fails_when_codes_exceed_symbols() {
        // chunk size 1 with 16 codes but only ~28 symbols: the paper's
        // cs=1/enc=16 row explodes (352,565); ours must also blow up
        // relative to the balanced cells.
        let t = quick();
        let bad = t
            .rows
            .iter()
            .find(|r| r.chunk_size == 1 && r.encodings == 16)
            .unwrap();
        let good = t
            .rows
            .iter()
            .find(|r| r.chunk_size == 1 && r.encodings == 2)
            .unwrap();
        assert!(
            bad.chi2_single > 100.0 * good.chi2_single.max(0.01),
            "cs1/enc16 {} vs cs1/enc2 {}",
            bad.chi2_single,
            good.chi2_single
        );
    }

    #[test]
    fn higher_orders_keep_structure() {
        // doublet χ² ≫ single χ² in every balanced cell — the inter-chunk
        // predictability the paper highlights
        let t = quick();
        for row in t.rows.iter().filter(|r| r.chi2_single < 1.0) {
            assert!(
                row.chi2_double > row.chi2_single * 10.0,
                "row {row:?} lost inter-chunk structure"
            );
        }
    }

    #[test]
    fn more_codes_leak_more_at_fixed_chunk_size() {
        // within a chunk-size group, doublet χ² grows with the code count
        // (the paper's rows are monotone in every group)
        let t = quick();
        for cs in [2usize, 4, 6] {
            let group: Vec<&Table3Row> = t.rows.iter().filter(|r| r.chunk_size == cs).collect();
            for w in group.windows(2) {
                assert!(
                    w[1].chi2_double > w[0].chi2_double,
                    "cs={cs}: {} !> {}",
                    w[1].chi2_double,
                    w[0].chi2_double
                );
            }
        }
    }

    #[test]
    fn address_extended_records_are_the_favourable_case() {
        // §7: the name-only directory "is a very bad case for our scheme"
        // — the paper wanted address fields but could not decode them.
        // With our extended corpus the chunk population at the
        // recommended chunk size 6 is much richer, so the encoded stream
        // is flatter per observation.
        use sdds_corpus::DirectoryGenerator;
        let gen = DirectoryGenerator::new(13);
        let plain = gen.generate(3_000);
        let extended = gen.generate_with_addresses(3_000);
        let cell_plain = run_cell(&plain, 6, 64);
        let cell_ext = run_cell(&extended, 6, 64);
        assert!(
            cell_ext.distinct_chunks > cell_plain.distinct_chunks * 2,
            "addresses should multiply the chunk population: {} vs {}",
            cell_ext.distinct_chunks,
            cell_plain.distinct_chunks
        );
        // per-observation doublet structure shrinks with the richer corpus
        let plain_obs = plain.iter().map(|r| r.rc.len() / 6).sum::<usize>() as f64;
        let ext_obs = extended.iter().map(|r| r.rc.len() / 6).sum::<usize>() as f64;
        let plain_rate = cell_plain.chi2_double / plain_obs;
        let ext_rate = cell_ext.chi2_double / ext_obs;
        assert!(
            ext_rate < plain_rate,
            "favourable case not favourable: {ext_rate} !< {plain_rate}"
        );
    }

    #[test]
    fn larger_chunks_reduce_interchunk_predictability() {
        // at a fixed code count, larger chunks absorb more context:
        // triplet χ² at cs=6 below cs=2 (paper: 2.3M vs 193.8M at 128)
        let t = quick();
        let cs2 = t
            .rows
            .iter()
            .find(|r| r.chunk_size == 2 && r.encodings == 128)
            .unwrap();
        let cs6 = t
            .rows
            .iter()
            .find(|r| r.chunk_size == 6 && r.encodings == 128)
            .unwrap();
        assert!(
            cs6.chi2_triple < cs2.chi2_triple,
            "cs6 {} !< cs2 {}",
            cs6.chi2_triple,
            cs2.chi2_triple
        );
    }
}
