//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6–§7) on the synthetic SF-style directory.
//!
//! Each `tableN` module computes the corresponding artefact and returns a
//! serializable report; the `src/bin/tableN` binaries print them in the
//! paper's layout. Absolute numbers differ from the paper (its corpus is
//! proprietary; ours is a calibrated synthetic equivalent — see DESIGN.md
//! §5), but the *shape* — orderings, monotonicity in chunk size and code
//! count, where false positives come from — is the reproduction target and
//! is asserted by this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod common;
pub mod figure5;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

/// Number of entries in the paper's SF White Pages extract.
pub const PAPER_CORPUS_SIZE: usize = 282_965;

/// Default seed for all experiments (reports record it).
pub const DEFAULT_SEED: u64 = 20060403; // ICDE 2006, Atlanta, April 3-7
