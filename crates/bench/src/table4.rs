//! Table 4 — false positives after symbol-level encoding (FP1) and after
//! additional chunking with chunk size 2 (FP2).
//!
//! Paper setup (§7): 1000 random records; queries are the 1000 last names
//! of that sample; symbols are individually encoded into 8/16/32 codes
//! (Figure 5's assignment); FP1 counts encoded-substring hits that are not
//! raw substrings; FP2 additionally chunks the code stream into pairs at
//! both offsets (deleting partial chunks) and matches chunked series.
//! Variant (b) restricts the queries to last names longer than five
//! characters — which removes almost all false positives.

use crate::common::{corpus, ngram_counters};
use sdds_corpus::Record;
use sdds_encode::{Codebook, GramCounter};
use serde::Serialize;

/// One row (one code-alphabet size).
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Code-alphabet size.
    pub encodings: usize,
    /// χ² of the encoded symbol stream (singles).
    pub chi2_single: f64,
    /// χ² doublets.
    pub chi2_double: f64,
    /// χ² triplets.
    pub chi2_triple: f64,
    /// False positives after symbol encoding alone.
    pub fp1: u64,
    /// False positives after encoding + chunk-size-2 chunking.
    pub fp2: u64,
}

/// The Table-4 artefact: (a) all queries, (b) long-name queries.
#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    /// Sample size.
    pub entries: usize,
    /// Rows over all 1000 last-name queries.
    pub all: Vec<Table4Row>,
    /// Rows with queries restricted to names longer than 5 characters.
    pub long_names: Vec<Table4Row>,
}

/// True occurrence: the name occurs in the raw record content ("we did
/// not count the occurrence of ADAMS in ADAMSON as a false positive,
/// since the string occurs").
fn raw_contains(record: &Record, name: &str) -> bool {
    record.rc.contains(name)
}

/// Substring match on code streams.
fn codes_contain(haystack: &[u16], needle: &[u16]) -> bool {
    !needle.is_empty()
        && needle.len() <= haystack.len()
        && haystack.windows(needle.len()).any(|w| w == needle)
}

/// Chunk a code stream into pairs starting at `offset`, dropping partial
/// chunks (the paper deletes them).
fn pair_chunks(codes: &[u16], offset: usize) -> Vec<(u16, u16)> {
    if offset >= codes.len() {
        return Vec::new();
    }
    codes[offset..]
        .chunks_exact(2)
        .map(|p| (p[0], p[1]))
        .collect()
}

/// FP2 hit: any query alignment's pair series occurs consecutively in any
/// record chunking.
fn chunked_hit(record_codes: &[u16], query_codes: &[u16]) -> bool {
    let record_chunkings = [pair_chunks(record_codes, 0), pair_chunks(record_codes, 1)];
    for drop in 0..2usize.min(query_codes.len()) {
        let series = pair_chunks(query_codes, drop);
        if series.is_empty() {
            continue;
        }
        for chunking in &record_chunkings {
            if chunking.len() >= series.len() && chunking.windows(series.len()).any(|w| w == series)
            {
                return true;
            }
        }
    }
    false
}

/// Counts FP1/FP2 for a set of queries.
fn count_fps(
    records: &[Record],
    encoded: &[Vec<u16>],
    book: &Codebook,
    queries: &[&str],
) -> (u64, u64) {
    let mut fp1 = 0u64;
    let mut fp2 = 0u64;
    for name in queries {
        let qsyms: Vec<u16> = name.bytes().map(u16::from).collect();
        let qcodes = book.encode_stream(&qsyms, 0);
        for (r, rcodes) in records.iter().zip(encoded.iter()) {
            let truth = raw_contains(r, name);
            if truth {
                continue;
            }
            if codes_contain(rcodes, &qcodes) {
                fp1 += 1;
            }
            if chunked_hit(rcodes, &qcodes) {
                fp2 += 1;
            }
        }
    }
    (fp1, fp2)
}

/// Runs the experiment for one code-alphabet size.
pub fn run_row(records: &[Record], encodings: usize) -> (Table4Row, Table4Row) {
    // symbol-level codebook trained on the sample itself (Figure 5 style)
    let mut counter = GramCounter::new(1);
    for r in records {
        counter.add_record(&r.symbols(), 0);
    }
    let book = Codebook::build_equalized(&counter, encodings);
    let encoded: Vec<Vec<u16>> = records
        .iter()
        .map(|r| book.encode_stream(&r.symbols(), 0))
        .collect();
    let (c1, c2, c3) = ngram_counters(encoded.iter().cloned(), encodings);
    let all_queries: Vec<&str> = records.iter().map(|r| r.last_name()).collect();
    let long_queries: Vec<&str> = all_queries
        .iter()
        .copied()
        .filter(|n| n.len() > 5)
        .collect();
    let (fp1_all, fp2_all) = count_fps(records, &encoded, &book, &all_queries);
    let (fp1_long, fp2_long) = count_fps(records, &encoded, &book, &long_queries);
    let base = Table4Row {
        encodings,
        chi2_single: c1.chi2_uniform(),
        chi2_double: c2.chi2_uniform(),
        chi2_triple: c3.chi2_uniform(),
        fp1: fp1_all,
        fp2: fp2_all,
    };
    let long = Table4Row {
        fp1: fp1_long,
        fp2: fp2_long,
        ..base.clone()
    };
    (base, long)
}

/// Runs the paper's grid (8/16/32 encodings).
pub fn run(entries: usize, seed: u64) -> Table4 {
    let records = corpus(entries, seed);
    let mut all = Vec::new();
    let mut long_names = Vec::new();
    for encodings in [8usize, 16, 32] {
        let (a, l) = run_row(&records, encodings);
        all.push(a);
        long_names.push(l);
    }
    Table4 {
        entries,
        all,
        long_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table4 {
        run(400, 17)
    }

    #[test]
    fn more_encodings_fewer_fp1() {
        // paper: FP1 6,253 → 911 → 0 as encodings go 8 → 16 → 32
        let t = quick();
        for w in t.all.windows(2) {
            assert!(
                w[1].fp1 <= w[0].fp1,
                "FP1 must fall with more codes: {} !<= {}",
                w[1].fp1,
                w[0].fp1
            );
        }
        assert!(t.all[0].fp1 > t.all[2].fp1, "8 codes must out-FP 32 codes");
    }

    #[test]
    fn chunking_adds_false_positives() {
        // paper: FP2 > FP1 in every row (chunk-alignment hits like
        // ADAMS-in-DAMSTER)
        let t = quick();
        for row in &t.all {
            assert!(row.fp2 >= row.fp1, "row {row:?}");
        }
        assert!(
            t.all.iter().any(|r| r.fp2 > r.fp1),
            "chunking should add FPs somewhere: {:?}",
            t.all
        );
    }

    #[test]
    fn long_names_remove_almost_all_false_positives() {
        // paper (b): 24/41 vs 6,253/18,838 at 8 encodings
        let t = quick();
        for (a, l) in t.all.iter().zip(t.long_names.iter()) {
            assert!(
                l.fp1 * 10 <= a.fp1.max(10),
                "long-name FP1 {} not ≪ all FP1 {}",
                l.fp1,
                a.fp1
            );
        }
    }

    #[test]
    fn chi2_grows_with_code_count() {
        // fewer codes flatten better (paper: 1.49 → 1,175 → 11,759)
        let t = quick();
        for w in t.all.windows(2) {
            assert!(w[1].chi2_single > w[0].chi2_single);
        }
    }

    #[test]
    fn chunked_hit_reproduces_adams_damster() {
        // the paper's example: searching ADAMS hits DAMSTER via the
        // [DA][MS] alignment
        let a: Vec<u16> = "ADAMS".bytes().map(u16::from).collect();
        let d: Vec<u16> = "DAMSTER".bytes().map(u16::from).collect();
        // with the identity "encoding" (raw symbols) chunked in pairs:
        assert!(chunked_hit(&d, &a));
        // …but the unchunked substring match correctly misses
        assert!(!codes_contain(&d, &a));
    }
}
