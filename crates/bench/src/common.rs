//! Shared plumbing for the table experiments.

use sdds_corpus::{DirectoryGenerator, Record};
use sdds_stats::NgramCounter;
use std::collections::BTreeMap;

/// Generates the experiment corpus.
pub fn corpus(n: usize, seed: u64) -> Vec<Record> {
    DirectoryGenerator::new(seed).generate(n)
}

/// Runs a short live-cluster workload — bulk load, single-record inserts,
/// key lookups, deletes and encrypted scans — so a bench artefact's
/// metrics sidecar carries nonzero LH\* per-op latency histograms,
/// hop/IAM counters (the ≤2-hop invariant) and scan fan-out/gather
/// timings even when the table itself is computed offline.
pub fn cluster_probe(entries: usize, seed: u64) {
    use sdds_core::{EncryptedSearchStore, SchemeConfig};
    let n = entries.clamp(64, 512);
    let records = corpus(n, seed);
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).expect("valid"))
        .passphrase("metrics-probe")
        .bucket_capacity(32)
        .start();
    // bulk load: forces splits (stale client images → forwards + IAMs)
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .expect("probe bulk load");
    // single-record round-trips for the per-op histograms
    let client = store.cluster().client();
    for i in 0..32u64 {
        let key = u64::MAX - i;
        client.insert(key, vec![0u8; 16]).expect("probe insert");
        client.lookup(key).expect("probe lookup");
        client.delete(key).expect("probe delete");
    }
    for r in records.iter().take(64) {
        store.get(r.rid).expect("probe get");
    }
    // scatter-gather scans (fan-out, gather timing, FP accounting)
    let _ = store.search("MARTINEZ");
    let _ = store.fetch_matching("GARCIA");
    store.shutdown();
}

/// A dense re-mapping of the symbols actually occurring in the corpus
/// (the paper computes χ² over the directory's own alphabet — capitals,
/// space, `&` — not over all 256 byte values).
#[derive(Debug, Clone)]
pub struct DenseAlphabet {
    map: BTreeMap<u16, u16>,
}

impl DenseAlphabet {
    /// Builds the alphabet from a corpus.
    pub fn from_records(records: &[Record]) -> DenseAlphabet {
        let mut map = BTreeMap::new();
        for r in records {
            for s in r.symbols() {
                let next = map.len() as u16;
                map.entry(s).or_insert(next);
            }
        }
        DenseAlphabet { map }
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no symbols were observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Re-encodes a symbol stream densely.
    pub fn encode(&self, symbols: &[u16]) -> Vec<u16> {
        symbols.iter().map(|s| self.map[s]).collect()
    }

    /// The original symbol for a dense code (for display).
    pub fn symbol_of(&self, dense: u16) -> Option<u16> {
        self.map
            .iter()
            .find_map(|(&sym, &d)| (d == dense).then_some(sym))
    }
}

/// Counts 1..=3-grams of a set of symbol streams over `alphabet` symbols
/// and returns the three counters.
pub fn ngram_counters(
    streams: impl Iterator<Item = Vec<u16>>,
    alphabet: usize,
) -> (NgramCounter, NgramCounter, NgramCounter) {
    let mut c1 = NgramCounter::new(1, alphabet);
    let mut c2 = NgramCounter::new(2, alphabet);
    let mut c3 = NgramCounter::new(3, alphabet);
    for s in streams {
        c1.add_record(&s);
        c2.add_record(&s);
        c3.add_record(&s);
    }
    (c1, c2, c3)
}

/// Formats an n-gram of raw byte symbols for display ("AN", "CHA", …).
pub fn gram_display(gram: &[u16]) -> String {
    gram.iter()
        .map(|&s| {
            let b = s as u8;
            if b == b' ' {
                '␣'
            } else {
                char::from(b)
            }
        })
        .collect()
}

/// Thousands-separated float formatting used by the table printers.
pub fn fmt_chi2(x: f64) -> String {
    if x >= 1000.0 {
        let int = x.round() as u64;
        let mut s = String::new();
        let digits = int.to_string();
        for (i, ch) in digits.chars().enumerate() {
            if i > 0 && (digits.len() - i).is_multiple_of(3) {
                s.push(',');
            }
            s.push(ch);
        }
        s
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_alphabet_roundtrips() {
        let records = corpus(100, 1);
        let alpha = DenseAlphabet::from_records(&records);
        assert!(
            alpha.len() > 10 && alpha.len() <= 30,
            "alphabet {}",
            alpha.len()
        );
        for r in records.iter().take(10) {
            let dense = alpha.encode(&r.symbols());
            assert!(dense.iter().all(|&d| (d as usize) < alpha.len()));
            // decode back
            let back: Vec<u16> = dense.iter().map(|&d| alpha.symbol_of(d).unwrap()).collect();
            assert_eq!(back, r.symbols());
        }
    }

    #[test]
    fn fmt_chi2_shapes() {
        assert_eq!(fmt_chi2(2_071_885.4), "2,071,885");
        assert_eq!(fmt_chi2(97.13), "97.1");
        assert_eq!(fmt_chi2(0.005), "0.005000");
    }

    #[test]
    fn gram_display_marks_space() {
        assert_eq!(gram_display(&[65, 32, 66]), "A␣B");
    }
}
