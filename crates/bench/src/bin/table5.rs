//! Regenerates Table 5: false positives after two-symbol chunk encoding.

use sdds_bench::common::{cluster_probe, fmt_chi2};
use sdds_bench::{cli, table5};

fn main() {
    let (entries, seed, json) = cli::parse(1000);
    // drive a live LH* cluster first so the metrics sidecar carries per-op
    // latency, hop/IAM and scan fan-out numbers next to the offline table
    cluster_probe(entries, seed);
    let t = table5::run(entries, seed);
    println!("Table 5: False Positives after chunk encoding (2-symbol chunks)");
    println!(
        "({} records, queries = their last names, seed {seed})",
        t.entries
    );
    for (title, rows) in [
        ("(a) All entries", &t.all),
        ("(b) Last names longer than 5 characters", &t.long_names),
    ] {
        println!("\n{title}");
        println!(
            "  {:>3} | {:>12} | {:>12} | {:>12} | {:>7}",
            "Enc", "chi2 single", "chi2 double", "chi2 triple", "FP"
        );
        for row in rows {
            println!(
                "  {:>3} | {:>12} | {:>12} | {:>12} | {:>7}",
                row.encodings,
                fmt_chi2(row.chi2_single),
                fmt_chi2(row.chi2_double),
                fmt_chi2(row.chi2_triple),
                row.fp
            );
        }
    }
    cli::maybe_json(&t, json);
}
