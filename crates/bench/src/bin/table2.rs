//! Regenerates Table 2: χ² after dispersing each symbol 1:4 into 2-bit
//! shares with a random non-singular matrix over GF(4).

use sdds_bench::common::fmt_chi2;
use sdds_bench::{cli, table2, PAPER_CORPUS_SIZE};

fn main() {
    let (entries, seed, json) = cli::parse(PAPER_CORPUS_SIZE);
    let t = table2::run(entries, seed);
    println!("Table 2: chi^2-values after Dispersion (1 symbol -> 4 x 2-bit shares)");
    println!("({} entries, seed {seed})\n", t.entries);
    println!("  chi^2 (Single Letter) | {:>12}", fmt_chi2(t.chi2_single));
    println!("  chi^2 (Doublets)      | {:>12}", fmt_chi2(t.chi2_double));
    println!("  chi^2 (Triplets)      | {:>12}", fmt_chi2(t.chi2_triple));
    println!();
    for (share, f) in &t.share_frequencies {
        println!("  {share}  | {:>6.2}%", f * 100.0);
    }
    println!();
    for (g, f) in &t.top_doublets {
        println!("  {g} | {:>6.2}%", f * 100.0);
    }
    cli::maybe_json(&t, json);
}
