//! Regenerates Table 1: χ² values and top n-grams of the raw directory.

use sdds_bench::common::fmt_chi2;
use sdds_bench::{cli, table1, PAPER_CORPUS_SIZE};

fn main() {
    let (entries, seed, json) = cli::parse(PAPER_CORPUS_SIZE);
    let t = table1::run(entries, seed);
    println!("Table 1: chi^2-values for the synthetic SF Phone Directory");
    println!(
        "({} entries, seed {seed}, alphabet {} symbols)\n",
        t.entries, t.alphabet
    );
    println!("  chi^2 (Single Letter) | {:>12}", fmt_chi2(t.chi2_single));
    println!("  chi^2 (Doublets)      | {:>12}", fmt_chi2(t.chi2_double));
    println!("  chi^2 (Triplets)      | {:>12}", fmt_chi2(t.chi2_triple));
    println!();
    for (g, f) in &t.top_letters {
        println!("  {g:<4} | {:>6.2}%", f * 100.0);
    }
    println!();
    for (g, f) in &t.top_doublets {
        println!("  {g:<4} | {:>6.2}%", f * 100.0);
    }
    println!();
    for (g, f) in &t.top_triplets {
        println!("  {g:<4} | {:>6.2}%", f * 100.0);
    }
    cli::maybe_json(&t, json);
}
