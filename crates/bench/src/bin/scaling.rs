//! Scaling report: the paper's §1 claim ("constant speed operations …,
//! independent of the number of nodes") and its search-cost story, as a
//! series over growing files.
//!
//! For each corpus size: LH\* bucket count, bulk-load rate, key-lookup
//! latency, encrypted-search latency and traffic, and the naive
//! fetch-decrypt-scan client's traffic for the same query — the number
//! that blows up and motivates the whole paper.

use sdds_baseline::naive::NaiveStore;
use sdds_bench::cli;
use sdds_cipher::MasterKey;
use sdds_core::{EncryptedSearchStore, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScalingRow {
    records: usize,
    buckets: usize,
    load_ms: f64,
    lookup_us: f64,
    search_ms: f64,
    search_bytes: u64,
    search_msgs: u64,
    naive_bytes: u64,
}

fn main() {
    let (max_entries, seed, json) = cli::parse(8000);
    let sizes: Vec<usize> = [1000usize, 2000, 4000, 8000]
        .into_iter()
        .filter(|&n| n <= max_entries)
        .collect();
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>8} {:>9} {:>10} {:>10} {:>12} {:>11} {:>12}",
        "records",
        "buckets",
        "load ms",
        "lookup µs",
        "search ms",
        "search B",
        "search msg",
        "naive B"
    );
    for n in sizes {
        let records = DirectoryGenerator::new(seed).generate(n);
        let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
            .passphrase("scaling")
            .bucket_capacity(64)
            .start();
        let t0 = Instant::now();
        store
            .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
            .unwrap();
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;

        // key lookups: the constant-cost claim
        let t0 = Instant::now();
        let probes = 200;
        for r in records.iter().step_by(records.len() / probes) {
            store.get(r.rid).unwrap().unwrap();
        }
        let lookup_us = t0.elapsed().as_secs_f64() * 1e6 / probes as f64;

        // encrypted search
        store.cluster().network().stats().reset();
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            store.search("MARTINEZ").unwrap();
        }
        let search_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let stats = store.cluster().network().stats();
        let search_bytes = stats.bytes() / reps;
        let search_msgs = stats.messages() / reps;
        let buckets = store.cluster().num_buckets();
        store.shutdown();

        // naive client traffic for the same query
        let naive = NaiveStore::start(&MasterKey::new([1; 16]), 64);
        for r in &records {
            naive.insert(r.rid, &r.rc).unwrap();
        }
        naive.cluster().network().stats().reset();
        naive.search("MARTINEZ").unwrap();
        let naive_bytes = naive.cluster().network().stats().bytes();
        naive.shutdown();

        println!(
            "{:>8} {:>8} {:>9.1} {:>10.1} {:>10.2} {:>12} {:>11} {:>12}",
            n, buckets, load_ms, lookup_us, search_ms, search_bytes, search_msgs, naive_bytes
        );
        rows.push(ScalingRow {
            records: n,
            buckets,
            load_ms,
            lookup_us,
            search_ms,
            search_bytes,
            search_msgs,
            naive_bytes,
        });
    }
    println!(
        "\nReading: key lookups stay in the same order of magnitude while \
         the file grows 8x (constant-hop addressing; the residual drift is \
         scheduler noise from hundreds of site threads). Search scatters to \
         every site, so its messages track the bucket count for both \
         systems — but the naive client additionally hauls every record's \
         ciphertext back (≈2.6x the bytes here, growing with record size) \
         and decrypts the whole file per query."
    );
    cli::maybe_json(&rows, json);
}
