//! Regenerates Figure 5: the encoding assignment for 8 possible encodings
//! on a 1000-record sample.

use sdds_bench::{cli, figure5};

fn main() {
    let (entries, seed, json) = cli::parse(1000);
    let f = figure5::run(entries, seed, 8);
    println!(
        "Figure 5: Encoding Assignment for {} possible encodings",
        f.encodings
    );
    println!("({} records, seed {seed})\n", f.entries);
    println!("  {:<8} | {:>8} | {:>8}", "Symbol", "Quantity", "Encoding");
    for row in &f.rows {
        println!(
            "  {:<8} | {:>8} | {:>8}",
            row.symbol, row.quantity, row.encoding
        );
    }
    println!("\nBucket loads: {:?}", f.bucket_loads);
    cli::maybe_json(&f, json);
}
