//! Regenerates Table 3: χ² after redundancy removal for chunk sizes
//! 1/2/4/6 across code-alphabet sizes.

use sdds_bench::common::fmt_chi2;
use sdds_bench::{cli, table3, PAPER_CORPUS_SIZE};

fn main() {
    let (entries, seed, json) = cli::parse(PAPER_CORPUS_SIZE);
    let t = table3::run(entries, seed);
    println!("Table 3: chi^2-values after Pre-Processing (redundancy removal)");
    println!("({} entries, seed {seed})", t.entries);
    let mut current_cs = 0;
    for row in &t.rows {
        if row.chunk_size != current_cs {
            current_cs = row.chunk_size;
            println!("\nChunk Size = {current_cs}");
            println!(
                "  {:>8} | {:>14} | {:>14} | {:>14} | {:>9}",
                "# encod.", "chi2 single", "chi2 double", "chi2 triple", "# chunks"
            );
        }
        println!(
            "  {:>8} | {:>14} | {:>14} | {:>14} | {:>9}",
            row.encodings,
            fmt_chi2(row.chi2_single),
            fmt_chi2(row.chi2_double),
            fmt_chi2(row.chi2_triple),
            row.distinct_chunks
        );
    }
    cli::maybe_json(&t, json);
}
