//! Regenerates Table 4: false positives after symbol encoding (FP1) and
//! after additional chunking with chunk size 2 (FP2).

use sdds_bench::common::fmt_chi2;
use sdds_bench::{cli, table4};

fn main() {
    // the paper samples 1000 records for this experiment
    let (entries, seed, json) = cli::parse(1000);
    let t = table4::run(entries, seed);
    println!("Table 4: False Positives after symbol encoding (FP1) and");
    println!("after symbol encoding + chunking with chunk size = 2 (FP2)");
    println!(
        "({} records, queries = their last names, seed {seed})",
        t.entries
    );
    for (title, rows) in [
        ("(a) All entries", &t.all),
        ("(b) Names longer than 5 characters", &t.long_names),
    ] {
        println!("\n{title}");
        println!(
            "  {:>3} | {:>12} | {:>12} | {:>12} | {:>7} | {:>7}",
            "En", "chi2 single", "chi2 double", "chi2 triple", "FP1", "FP2"
        );
        for row in rows {
            println!(
                "  {:>3} | {:>12} | {:>12} | {:>12} | {:>7} | {:>7}",
                row.encodings,
                fmt_chi2(row.chi2_single),
                fmt_chi2(row.chi2_double),
                fmt_chi2(row.chi2_triple),
                row.fp1,
                row.fp2
            );
        }
    }
    cli::maybe_json(&t, json);
}
