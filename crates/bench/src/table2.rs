//! Table 2 — χ² after dispersion alone.
//!
//! Paper setup (§7): "We broke the record in chunks of length one and
//! dispersed each record into four dispersion records using our method
//! with a random non-singular matrix. Thus, a dispersion record contained
//! one symbol of length 2b for each 8b symbol in the original record."
//! Reported: χ² single 178,849 / doublets 335,796 / triplets 486,790 and
//! the share frequencies 0: 33.5%, 1: 26.9%, 2: 21.8%, 3: 17.7%.

use crate::common::{corpus, ngram_counters};
use sdds_disperse::{DispersalConfig, Disperser};
use serde::Serialize;

/// The Table-2 artefact.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// Corpus size used.
    pub entries: usize,
    /// χ² of single 2-bit shares vs uniform (4 categories).
    pub chi2_single: f64,
    /// χ² of share doublets vs uniform (16 categories).
    pub chi2_double: f64,
    /// χ² of share triplets vs uniform (64 categories).
    pub chi2_triple: f64,
    /// Relative frequency of the shares 0..=3, descending.
    pub share_frequencies: Vec<(u16, f64)>,
    /// Top share doublets.
    pub top_doublets: Vec<(String, f64)>,
}

/// Runs the experiment: 8-bit symbols dispersed 1:4 into 2-bit shares.
pub fn run(entries: usize, seed: u64) -> Table2 {
    let records = corpus(entries, seed);
    let disperser = Disperser::from_seed(
        DispersalConfig::new(8, 4).expect("8-bit chunks over 4 sites"),
        seed,
    );
    // each record yields 4 dispersion records (one per site)
    let streams = records.iter().flat_map(|r| {
        let chunks: Vec<u128> = r.symbols().iter().map(|&s| u128::from(s)).collect();
        disperser.disperse_record(&chunks).into_iter()
    });
    let (c1, c2, c3) = ngram_counters(streams, 4);
    let mut share_frequencies: Vec<(u16, f64)> =
        c1.top(4).into_iter().map(|(g, f)| (g[0], f)).collect();
    share_frequencies.sort_by(|a, b| b.1.total_cmp(&a.1));
    Table2 {
        entries,
        chi2_single: c1.chi2_uniform(),
        chi2_double: c2.chi2_uniform(),
        chi2_triple: c3.chi2_uniform(),
        share_frequencies,
        top_doublets: c2
            .top(4)
            .into_iter()
            .map(|(g, f)| (format!("{}{}", g[0], g[1]), f))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1;

    #[test]
    fn dispersion_reduces_chi2_but_not_to_uniform() {
        // The paper's finding: "this particular matrix (nor any other we
        // tested) did not achieve an even distribution … However, the
        // decrease in the χ²-values as compared to [the raw corpus] is
        // encouraging."
        let raw = table1::run(5_000, 9);
        let dispersed = run(5_000, 9);
        assert!(
            dispersed.chi2_single > 10.0,
            "still skewed: {}",
            dispersed.chi2_single
        );
        assert!(
            dispersed.chi2_triple < raw.chi2_triple,
            "dispersion should shrink higher-order structure: {} vs {}",
            dispersed.chi2_triple,
            raw.chi2_triple
        );
    }

    #[test]
    fn share_frequencies_are_skewed_and_ordered() {
        let t = run(5_000, 9);
        assert_eq!(t.share_frequencies.len(), 4);
        let total: f64 = t.share_frequencies.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // descending and not uniform (paper: 33.5% vs 17.7%)
        assert!(t.share_frequencies[0].1 > 0.25);
        assert!(t.share_frequencies[3].1 < 0.25);
    }

    #[test]
    fn higher_orders_stay_worse() {
        let t = run(3_000, 11);
        assert!(t.chi2_double > t.chi2_single);
        assert!(t.chi2_triple > t.chi2_double);
    }
}
