//! Tiny argument parsing shared by the table binaries.
//!
//! Usage: `tableN [--entries N] [--seed S] [--json PATH] [--quick]`.
//! `--quick` caps the corpus at 5,000 entries for a fast sanity run.

use crate::DEFAULT_SEED;
use serde::Serialize;

/// Parses `(entries, seed, json_path)` from `std::env::args`.
pub fn parse(default_entries: usize) -> (usize, u64, Option<String>) {
    let mut entries = default_entries;
    let mut seed = DEFAULT_SEED;
    let mut json = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--entries" => {
                entries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--entries needs a number"));
                i += 1;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
                i += 1;
            }
            "--json" => {
                json = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
                i += 1;
            }
            "--quick" => entries = entries.min(5_000),
            "--help" | "-h" => {
                eprintln!("usage: [--entries N] [--seed S] [--json PATH] [--quick]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    (entries, seed, json)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Writes the artefact as JSON if a path was requested.
pub fn maybe_json<T: Serialize>(artefact: &T, path: Option<String>) {
    if let Some(path) = path {
        let body = serde_json::to_string_pretty(artefact).expect("artefact serializes");
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
