//! Tiny argument parsing shared by the table binaries.
//!
//! Usage: `tableN [--entries N] [--seed S] [--json PATH] [--metrics-json PATH] [--quick]`.
//! `--quick` caps the corpus at 5,000 entries for a fast sanity run.
//!
//! Every `--json` artefact gains a metrics sidecar at `PATH.metrics.json`
//! (an [`sdds_obs::MetricsSnapshot`] of the whole run); `--metrics-json`
//! overrides the sidecar path and also works without `--json`.

use crate::DEFAULT_SEED;
use serde::Serialize;
use std::sync::OnceLock;

/// Explicit sidecar path from `--metrics-json`, when given.
static METRICS_JSON: OnceLock<String> = OnceLock::new();

/// Parses `(entries, seed, json_path)` from `std::env::args`.
pub fn parse(default_entries: usize) -> (usize, u64, Option<String>) {
    let mut entries = default_entries;
    let mut seed = DEFAULT_SEED;
    let mut json = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--entries" => {
                entries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--entries needs a number"));
                i += 1;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
                i += 1;
            }
            "--json" => {
                json = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
                i += 1;
            }
            "--metrics-json" => {
                let path = args
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| die("--metrics-json needs a path"));
                let _ = METRICS_JSON.set(path);
                i += 1;
            }
            "--quick" => entries = entries.min(5_000),
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--entries N] [--seed S] [--json PATH] \
                     [--metrics-json PATH] [--quick]\n\
                     --json PATH also writes a PATH.metrics.json observability \
                     sidecar; --metrics-json overrides the sidecar path"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    (entries, seed, json)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Writes the artefact as JSON if a path was requested, plus the metrics
/// sidecar (`PATH.metrics.json`, or the `--metrics-json` override).
pub fn maybe_json<T: Serialize>(artefact: &T, path: Option<String>) {
    let sidecar = METRICS_JSON
        .get()
        .cloned()
        .or_else(|| path.as_ref().map(|p| format!("{p}.metrics.json")));
    if let Some(path) = path {
        let body = serde_json::to_string_pretty(artefact).expect("artefact serializes");
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = sidecar {
        let body = sdds_obs::MetricsSnapshot::capture().to_json();
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path} (metrics sidecar)");
    }
}
