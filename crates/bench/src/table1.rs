//! Table 1 — χ² values and top n-grams of the raw directory.
//!
//! Paper: χ² single 2,071,885 / doublets 10,725,271 / triplets 40,450,503
//! on 282,965 entries; top letters A (11.1%), E, N, R, I, O; top doublets
//! AN, ER, AR, ON, IN; top triplets CHA, MAR, SON, ONG, ANG.

use crate::common::{corpus, gram_display, ngram_counters, DenseAlphabet};
use serde::Serialize;

/// The Table-1 artefact.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Corpus size used.
    pub entries: usize,
    /// Observed alphabet size (χ² categories for singles).
    pub alphabet: usize,
    /// χ² of single letters vs uniform.
    pub chi2_single: f64,
    /// χ² of doublets vs uniform.
    pub chi2_double: f64,
    /// χ² of triplets vs uniform.
    pub chi2_triple: f64,
    /// Most frequent letters with relative frequency.
    pub top_letters: Vec<(String, f64)>,
    /// Most frequent doublets.
    pub top_doublets: Vec<(String, f64)>,
    /// Most frequent triplets.
    pub top_triplets: Vec<(String, f64)>,
}

/// Runs the experiment.
pub fn run(entries: usize, seed: u64) -> Table1 {
    let records = corpus(entries, seed);
    let alpha = DenseAlphabet::from_records(&records);
    let (c1, c2, c3) = ngram_counters(
        records.iter().map(|r| alpha.encode(&r.symbols())),
        alpha.len(),
    );
    let display = |dense_gram: &[u16]| {
        let raw: Vec<u16> = dense_gram
            .iter()
            .map(|&d| alpha.symbol_of(d).expect("dense code maps back"))
            .collect();
        gram_display(&raw)
    };
    Table1 {
        entries,
        alphabet: alpha.len(),
        chi2_single: c1.chi2_uniform(),
        chi2_double: c2.chi2_uniform(),
        chi2_triple: c3.chi2_uniform(),
        top_letters: c1.top(8).iter().map(|(g, f)| (display(g), *f)).collect(),
        top_doublets: c2.top(5).iter().map(|(g, f)| (display(g), *f)).collect(),
        top_triplets: c3.top(5).iter().map(|(g, f)| (display(g), *f)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_corpus_is_grossly_non_uniform() {
        let t = run(5_000, 7);
        // the paper's point: raw text fails uniformity catastrophically,
        // and higher orders fail harder
        assert!(t.chi2_single > 1_000.0, "single χ² {}", t.chi2_single);
        assert!(t.chi2_double > t.chi2_single);
        assert!(t.chi2_triple > t.chi2_double);
    }

    #[test]
    fn top_letters_match_paper_shape() {
        let t = run(20_000, 7);
        let letters: Vec<&str> = t.top_letters.iter().map(|(g, _)| g.as_str()).collect();
        // space dominates (names contain separators), then vowel-heavy
        // letters; A must be in the top 4 like the paper's 11.1%
        assert!(letters[..4].contains(&"A"), "top letters {letters:?}");
        // frequencies descending
        for w in t.top_letters.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(2_000, 5);
        let b = run(2_000, 5);
        assert_eq!(a.chi2_single, b.chi2_single);
        assert_eq!(a.top_triplets, b.top_triplets);
    }
}
