//! Table 5 — false positives after two-symbol chunk encoding.
//!
//! Paper setup (§7): the same 1000-record sample, but now two-symbol
//! chunks are encoded into 8/16/32/64 codes ("ABOGADO…" → `[AB],[OG],…`
//! and `[BO],[GA],…`; "we then collect all these chunks and encode them"). The
//! record is represented by its two encoded chunk streams; a query chunks
//! at both offsets too. Chunking created no *additional* false positives
//! here, so the table has a single FP column. The last row (64 codes = 6
//! bits per 2 symbols) compresses at the same rate as Table 4's last row.

use crate::common::{corpus, ngram_counters};
use sdds_corpus::Record;
use sdds_encode::{Codebook, GramCounter};
use serde::Serialize;

/// One row (one code-alphabet size).
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Code-alphabet size.
    pub encodings: usize,
    /// χ² of the encoded chunk stream (singles).
    pub chi2_single: f64,
    /// χ² doublets.
    pub chi2_double: f64,
    /// χ² triplets.
    pub chi2_triple: f64,
    /// False positives across all queries.
    pub fp: u64,
}

/// The Table-5 artefact: (a) all queries, (b) long-name queries.
#[derive(Debug, Clone, Serialize)]
pub struct Table5 {
    /// Sample size.
    pub entries: usize,
    /// Rows over all last-name queries.
    pub all: Vec<Table5Row>,
    /// Rows with queries restricted to names longer than 5 characters.
    pub long_names: Vec<Table5Row>,
}

/// Encoded chunk streams of a symbol stream at offsets 0 and 1 (partial
/// chunks deleted, as in the paper).
fn chunk_streams(book: &Codebook, symbols: &[u16]) -> [Vec<u16>; 2] {
    [
        book.encode_stream(symbols, 0),
        book.encode_stream(symbols, 1),
    ]
}

/// Hit: any query alignment's code series occurs in any record stream.
fn hit(record_streams: &[Vec<u16>; 2], query_streams: &[Vec<u16>; 2]) -> bool {
    for series in query_streams {
        if series.is_empty() {
            continue;
        }
        for stream in record_streams {
            if stream.len() >= series.len() && stream.windows(series.len()).any(|w| w == series) {
                return true;
            }
        }
    }
    false
}

fn count_fps(
    records: &[Record],
    streams: &[[Vec<u16>; 2]],
    book: &Codebook,
    queries: &[&str],
) -> u64 {
    let mut fp = 0u64;
    for name in queries {
        let qsyms: Vec<u16> = name.bytes().map(u16::from).collect();
        let qstreams = chunk_streams(book, &qsyms);
        for (r, rstreams) in records.iter().zip(streams.iter()) {
            if r.rc.contains(name) {
                continue;
            }
            if hit(rstreams, &qstreams) {
                fp += 1;
            }
        }
    }
    fp
}

/// Runs one row.
pub fn run_row(records: &[Record], encodings: usize) -> (Table5Row, Table5Row) {
    let mut counter = GramCounter::new(2);
    for r in records {
        counter.add_record_all_offsets(&r.symbols());
    }
    let book = Codebook::build_equalized(&counter, encodings);
    let streams: Vec<[Vec<u16>; 2]> = records
        .iter()
        .map(|r| chunk_streams(&book, &r.symbols()))
        .collect();
    let (c1, c2, c3) = ngram_counters(streams.iter().flat_map(|s| s.iter().cloned()), encodings);
    let all_queries: Vec<&str> = records.iter().map(|r| r.last_name()).collect();
    let long_queries: Vec<&str> = all_queries
        .iter()
        .copied()
        .filter(|n| n.len() > 5)
        .collect();
    let base = Table5Row {
        encodings,
        chi2_single: c1.chi2_uniform(),
        chi2_double: c2.chi2_uniform(),
        chi2_triple: c3.chi2_uniform(),
        fp: count_fps(records, &streams, &book, &all_queries),
    };
    let long = Table5Row {
        fp: count_fps(records, &streams, &book, &long_queries),
        ..base.clone()
    };
    (base, long)
}

/// Runs the paper's grid (8/16/32/64 encodings).
pub fn run(entries: usize, seed: u64) -> Table5 {
    let records = corpus(entries, seed);
    let mut all = Vec::new();
    let mut long_names = Vec::new();
    for encodings in [8usize, 16, 32, 64] {
        let (a, l) = run_row(&records, encodings);
        all.push(a);
        long_names.push(l);
    }
    Table5 {
        entries,
        all,
        long_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table5 {
        run(400, 17)
    }

    #[test]
    fn fp_falls_with_more_encodings() {
        // paper: 31,648 → 15,588 → 7,968 → 3,857
        let t = quick();
        for w in t.all.windows(2) {
            assert!(w[1].fp <= w[0].fp, "{} !<= {}", w[1].fp, w[0].fp);
        }
        assert!(t.all[0].fp > t.all[3].fp);
    }

    #[test]
    fn chunk_encoding_flattens_better_than_symbol_encoding() {
        // paper: Table 5 single χ² (0.002 at 8 codes) far below Table 4's
        // (1.49): thousands of distinct 2-grams spread over few codes.
        let t = quick();
        let t4 = crate::table4::run(400, 17);
        for (r5, r4) in t.all.iter().zip(t4.all.iter()) {
            assert!(
                r5.chi2_single < r4.chi2_single,
                "enc={}: {} !< {}",
                r5.encodings,
                r5.chi2_single,
                r4.chi2_single
            );
        }
    }

    #[test]
    fn long_names_remove_most_fps() {
        // paper (b): 859/96/13/2 vs 31,648/15,588/7,968/3,857
        let t = quick();
        for (a, l) in t.all.iter().zip(t.long_names.iter()) {
            assert!(l.fp * 5 <= a.fp.max(5), "long {} vs all {}", l.fp, a.fp);
        }
    }

    #[test]
    fn higher_order_chi2_grows_with_codes() {
        let t = quick();
        for w in t.all.windows(2) {
            assert!(w[1].chi2_triple > w[0].chi2_triple);
        }
    }

    #[test]
    fn coarser_grain_costs_more_false_positives() {
        // paper's cross-table observation: at the same compression rate
        // (Table 4 enc=32 ↔ Table 5 enc=64… i.e. "n possible encodings in
        // Table 4 correspond to 2n possible encodings in Table 5"), the
        // chunk-grain scheme has more FPs but better flatness.
        let t5 = quick();
        let t4 = crate::table4::run(400, 17);
        let t4_row = t4.all.iter().find(|r| r.encodings == 32).unwrap();
        let t5_row = t5.all.iter().find(|r| r.encodings == 64).unwrap();
        assert!(t5_row.fp >= t4_row.fp1, "{} !>= {}", t5_row.fp, t4_row.fp1);
        assert!(t5_row.chi2_single < t4_row.chi2_single);
    }
}
