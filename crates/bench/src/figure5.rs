//! Figure 5 — the frequency-ordered encoding assignment for 8 codes.
//!
//! Re-derives the paper's assignment table: symbols of a 1000-record
//! sample, counted, sorted by frequency, greedily assigned to the lightest
//! of eight buckets.

use crate::common::corpus;
use sdds_encode::{Codebook, GramCounter};
use serde::Serialize;

/// One assignment row of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5Row {
    /// The symbol (display form; `␣` for space).
    pub symbol: String,
    /// Its occurrence count in the sample.
    pub quantity: u64,
    /// The code bucket it was assigned.
    pub encoding: u16,
}

/// The Figure-5 artefact.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5 {
    /// Sample size.
    pub entries: usize,
    /// Code-alphabet size.
    pub encodings: usize,
    /// Rows in descending frequency order.
    pub rows: Vec<Figure5Row>,
    /// Total frequency load per bucket.
    pub bucket_loads: Vec<u64>,
}

/// Runs the experiment.
pub fn run(entries: usize, seed: u64, encodings: usize) -> Figure5 {
    let records = corpus(entries, seed);
    let mut counter = GramCounter::new(1);
    for r in &records {
        counter.add_record(&r.symbols(), 0);
    }
    let book = Codebook::build_equalized(&counter, encodings);
    let rows = book
        .assignments()
        .iter()
        .map(|(gram, count, code)| Figure5Row {
            symbol: crate::common::gram_display(gram),
            quantity: *count,
            encoding: *code,
        })
        .collect();
    Figure5 {
        entries,
        encodings,
        rows,
        bucket_loads: book.bucket_loads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_matches_paper() {
        let f = run(1000, 3, 8);
        // descending quantities
        for w in f.rows.windows(2) {
            assert!(w[0].quantity >= w[1].quantity);
        }
        // the first eight symbols get codes 0..8 in order (paper: space=0,
        // A=1, E=2, …)
        for (i, row) in f.rows.iter().take(8).enumerate() {
            assert_eq!(row.encoding as usize, i, "row {row:?}");
        }
        // space and A are the two most frequent symbols in a directory
        let first_two: Vec<&str> = f.rows[..2].iter().map(|r| r.symbol.as_str()).collect();
        assert!(first_two.contains(&"␣"), "{first_two:?}");
        assert!(first_two.contains(&"A"), "{first_two:?}");
    }

    #[test]
    fn loads_are_nearly_balanced() {
        let f = run(1000, 3, 8);
        let max = *f.bucket_loads.iter().max().unwrap() as f64;
        let min = *f.bucket_loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "loads {:?}", f.bucket_loads);
    }
}
