//! Search-path benchmarks: the posting-indexed scan vs the linear sweep
//! on identically loaded stores, the prepared-query protocol vs
//! per-record query decoding, and delete batching vs sequential deletes.
//! `sdds bench-search` produces the matching end-to-end numbers
//! (BENCH_search.json); this harness isolates the pieces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_core::{EncryptedIndexFilter, EncryptedSearchStore, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use sdds_lh::ScanFilter;
use std::hint::black_box;

fn loaded_store(n: usize, indexed: bool) -> EncryptedSearchStore {
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("bench")
        .bucket_capacity(512)
        .scan_index(indexed)
        .start();
    let records = DirectoryGenerator::new(20060403).generate(n);
    store
        .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
        .unwrap();
    store
}

/// The tentpole comparison: same corpus, same queries, index on vs off.
fn bench_indexed_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_path");
    g.sample_size(10);
    for n in [1000usize, 4000] {
        for (name, indexed) in [("linear", false), ("indexed", true)] {
            let store = loaded_store(n, indexed);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(store.search("MARTINEZ").unwrap()));
            });
            store.shutdown();
        }
    }
    g.finish();
}

/// Decode-once (prepare) vs decode-per-record (the pre-protocol cost) on
/// a realistic query, evaluated over many record bodies.
fn bench_prepared_query(c: &mut Criterion) {
    let store = loaded_store(500, true);
    let query = store.pipeline().build_query("MARTINEZ").unwrap();
    let wire = query.encode();
    let records = DirectoryGenerator::new(20060403).generate(500);
    // realistic bodies: the first index record of each directory entry
    let mut bodies: Vec<(u64, Vec<u8>)> = Vec::with_capacity(records.len());
    for r in &records {
        if let Some(ir) = store
            .pipeline()
            .index_records_for(r.rid, &r.rc)
            .into_iter()
            .next()
        {
            let tag = store.pipeline().tag(ir.chunking, ir.site);
            bodies.push((store.pipeline().lh_key(r.rid, tag), ir.body));
        }
    }
    let filter = EncryptedIndexFilter::new(
        store.pipeline().config().element_bytes(),
        store.pipeline().config().tag_bits(),
    );
    let mut g = c.benchmark_group("query_protocol");
    g.bench_function("decode_per_record", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (k, body) in &bodies {
                if filter.matches(*k, body, &wire) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("prepare_once", |b| {
        b.iter(|| {
            let prepared = filter.prepare(&wire);
            let mut hits = 0usize;
            for (k, body) in &bodies {
                if prepared.matches(*k, body) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    g.finish();
    store.shutdown();
}

/// Sequential per-key deletes vs the pipelined batch path, on a file
/// wide enough that the batch fans out over many bucket threads. Each
/// iteration re-inserts then deletes the same records; the insert cost
/// is identical in both variants, so the measured difference is the
/// delete round-trip batching.
fn bench_delete_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("delete_path");
    g.sample_size(10);
    let records = DirectoryGenerator::new(20060403).generate(256);
    let reload = |store: &EncryptedSearchStore| {
        store
            .insert_many(records.iter().map(|r| (r.rid, r.rc.as_str())))
            .unwrap();
    };
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 4).unwrap())
        .passphrase("bench")
        .bucket_capacity(64)
        .scan_index(true)
        .start();
    reload(&store);
    g.bench_function("delete_sequential", |b| {
        b.iter(|| {
            reload(&store);
            for r in &records {
                black_box(store.delete(r.rid).unwrap());
            }
        });
    });
    g.bench_function("delete_many_batched", |b| {
        b.iter(|| {
            reload(&store);
            black_box(store.delete_many(records.iter().map(|r| r.rid)).unwrap());
        });
    });
    g.finish();
    store.shutdown();
}

criterion_group!(
    benches,
    bench_indexed_vs_linear,
    bench_prepared_query,
    bench_delete_batching
);
criterion_main!(benches);
