//! System benchmarks over live clusters: LH\* key operations as the file
//! scales, and the headline comparison — parallel encrypted substring
//! search vs the SWP word baseline vs the naive fetch-decrypt-scan client
//! (time and bytes moved).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdds_baseline::{naive::NaiveStore, swp::SwpStore};
use sdds_cipher::MasterKey;
use sdds_core::{EncryptedSearchStore, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use sdds_lh::{ClusterConfig, LhCluster};
use std::hint::black_box;

fn bench_lh_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("lh_star");
    g.sample_size(20);
    for n in [100u64, 1000, 5000] {
        // pre-populate a cluster with n records, then measure lookups
        let cluster = LhCluster::start(ClusterConfig {
            bucket_capacity: 64,
            ..ClusterConfig::default()
        });
        let client = cluster.client();
        for key in 0..n {
            client.insert(key, vec![0u8; 32]).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            let mut key = 0u64;
            b.iter(|| {
                key = (key + 7919) % n;
                black_box(client.lookup(key).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("insert_overwrite", n), &n, |b, &n| {
            let mut key = 0u64;
            b.iter(|| {
                key = (key + 7919) % n;
                client.insert(key, vec![1u8; 32]).unwrap()
            });
        });
        cluster.shutdown();
    }
    g.finish();
}

fn bench_search_comparison(c: &mut Criterion) {
    let records = DirectoryGenerator::new(7).generate(500);
    let mut g = c.benchmark_group("search_500_records");
    g.sample_size(10);

    // the encrypted scheme (basic configuration)
    let store = EncryptedSearchStore::builder(SchemeConfig::basic(4, 2).unwrap())
        .passphrase("bench")
        .bucket_capacity(128)
        .start();
    for r in &records {
        store.insert(r.rid, &r.rc).unwrap();
    }
    g.bench_function("encrypted_scheme", |b| {
        b.iter(|| black_box(store.search("MARTINEZ").unwrap()));
    });
    // report bytes per search for EXPERIMENTS.md
    store.cluster().network().stats().reset();
    let _ = store.search("MARTINEZ").unwrap();
    eprintln!(
        "[bytes-per-search] encrypted_scheme: {} bytes, {} messages",
        store.cluster().network().stats().bytes(),
        store.cluster().network().stats().messages()
    );
    store.shutdown();

    // SWP word-level baseline
    let swp = SwpStore::start(&MasterKey::new([2; 16]), 128);
    for r in &records {
        swp.insert(r.rid, &r.rc).unwrap();
    }
    g.bench_function("swp_word_baseline", |b| {
        b.iter(|| black_box(swp.search_word("MARTINEZ").unwrap()));
    });
    swp.cluster().network().stats().reset();
    let _ = swp.search_word("MARTINEZ").unwrap();
    eprintln!(
        "[bytes-per-search] swp_word_baseline: {} bytes, {} messages",
        swp.cluster().network().stats().bytes(),
        swp.cluster().network().stats().messages()
    );
    swp.shutdown();

    // naive fetch-decrypt-scan baseline
    let naive = NaiveStore::start(&MasterKey::new([2; 16]), 128);
    for r in &records {
        naive.insert(r.rid, &r.rc).unwrap();
    }
    g.bench_function("naive_fetch_all", |b| {
        b.iter(|| black_box(naive.search("MARTINEZ").unwrap()));
    });
    naive.cluster().network().stats().reset();
    let _ = naive.search("MARTINEZ").unwrap();
    eprintln!(
        "[bytes-per-search] naive_fetch_all: {} bytes, {} messages",
        naive.cluster().network().stats().bytes(),
        naive.cluster().network().stats().messages()
    );
    naive.shutdown();

    g.finish();
}

fn bench_scheme_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_insert");
    g.sample_size(10);
    for (name, cfg) in [
        ("basic_4x2", SchemeConfig::basic(4, 2).unwrap()),
        ("paper_recommended", SchemeConfig::paper_recommended()),
    ] {
        let training: Vec<String> = DirectoryGenerator::new(8)
            .generate(200)
            .into_iter()
            .map(|r| r.rc)
            .collect();
        let store = EncryptedSearchStore::builder(cfg)
            .passphrase("bench")
            .bucket_capacity(256)
            .train(training.clone())
            .start();
        let mut rid = 0u64;
        g.bench_function(BenchmarkId::new("insert", name), |b| {
            b.iter(|| {
                rid += 1;
                store
                    .insert(rid, &training[(rid as usize) % training.len()])
                    .unwrap()
            });
        });
        store.shutdown();
    }
    g.finish();
}

/// LH*RS ablation: insert cost with and without parity maintenance, and
/// the wall-clock of recovering a crashed bucket.
fn bench_parity(c: &mut Criterion) {
    use sdds_lh::ParityConfig;
    let mut g = c.benchmark_group("lh_star_rs");
    g.sample_size(10);
    for (name, parity) in [
        ("no_parity", None),
        (
            "parity_m1",
            Some(ParityConfig {
                group_size: 4,
                parity_count: 1,
                slot_size: 64,
            }),
        ),
        (
            "parity_m2",
            Some(ParityConfig {
                group_size: 4,
                parity_count: 2,
                slot_size: 64,
            }),
        ),
    ] {
        let cluster = LhCluster::start(ClusterConfig {
            bucket_capacity: 1024,
            parity,
            ..ClusterConfig::default()
        });
        let client = cluster.client();
        let mut key = 0u64;
        g.bench_function(BenchmarkId::new("insert", name), |b| {
            b.iter(|| {
                key += 1;
                client.insert(key, vec![0u8; 32]).unwrap()
            });
        });
        cluster.shutdown();
    }
    // recovery wall-clock for a 2000-record file
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 64,
        parity: Some(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 64,
        }),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    for key in 0..2000u64 {
        client.insert(key, vec![0u8; 32]).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    let t0 = std::time::Instant::now();
    cluster.kill_bucket(1);
    cluster.recover_bucket(1).unwrap();
    eprintln!(
        "[recovery] bucket 1 of a 2000-record file recovered in {:?}",
        t0.elapsed()
    );
    cluster.shutdown();
    g.finish();
}

/// Scan latency as the file scales out — the paper's parallel-search
/// claim: more sites, roughly constant per-site work.
fn bench_scan_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_scaling");
    g.sample_size(10);
    for n in [250u64, 1000, 4000] {
        let cluster = LhCluster::start(ClusterConfig {
            bucket_capacity: 32,
            ..ClusterConfig::default()
        });
        let client = cluster.client();
        for key in 0..n {
            client
                .insert(key, format!("RECORD NUMBER {key} PAYLOAD").into_bytes())
                .unwrap();
        }
        let buckets = cluster.num_buckets();
        g.bench_with_input(
            BenchmarkId::new(format!("{buckets}_buckets"), n),
            &n,
            |b, _| {
                b.iter(|| black_box(client.scan(b"NUMBER 7", true).unwrap()));
            },
        );
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lh_ops,
    bench_search_comparison,
    bench_scheme_insert,
    bench_parity,
    bench_scan_scaling
);
criterion_main!(benches);
