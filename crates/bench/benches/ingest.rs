//! Batched ingest benchmarks: the allocation-lean scratch path vs the
//! allocating one, and the parallel transform at several pool widths.
//! `sdds bench-load --sweep 1,2,4` produces the matching end-to-end
//! numbers (BENCH_ingest.json); this harness isolates the transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdds_cipher::{KeyMaterial, MasterKey};
use sdds_core::{IndexPipeline, IngestScratch, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use sdds_par::Pool;
use std::hint::black_box;

fn keys() -> KeyMaterial {
    KeyMaterial::new(MasterKey::new([5; 16]))
}

fn sample(n: usize) -> Vec<(u64, String)> {
    DirectoryGenerator::new(20060403)
        .generate(n)
        .into_iter()
        .map(|r| (r.rid, r.rc))
        .collect()
}

/// Allocating (`index_records_for`) vs scratch-buffer
/// (`index_records_into`) transform over the same corpus.
fn bench_scratch_reuse(c: &mut Criterion) {
    let records = sample(200);
    let total_bytes: u64 = records.iter().map(|(_, rc)| rc.len() as u64).sum();
    let pipeline = IndexPipeline::new(SchemeConfig::paper_recommended(), keys(), None).unwrap();
    let mut g = c.benchmark_group("ingest_transform");
    g.throughput(Throughput::Bytes(total_bytes));
    g.bench_function("allocating", |b| {
        b.iter(|| {
            for (rid, rc) in &records {
                black_box(pipeline.index_records_for(*rid, black_box(rc)));
            }
        });
    });
    g.bench_function("scratch", |b| {
        let mut scratch = IngestScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            for (rid, rc) in &records {
                pipeline.index_records_into(*rid, black_box(rc), &mut scratch, &mut out);
                black_box(&out);
            }
        });
    });
    g.finish();
}

/// The parallel batch transform at several pool widths (on a single-core
/// host the >1 widths measure pure coordination overhead).
fn bench_parallel_batch(c: &mut Criterion) {
    let records = sample(400);
    let pairs: Vec<(u64, &str)> = records
        .iter()
        .map(|(rid, rc)| (*rid, rc.as_str()))
        .collect();
    let total_bytes: u64 = records.iter().map(|(_, rc)| rc.len() as u64).sum();
    let pipeline = IndexPipeline::new(SchemeConfig::paper_recommended(), keys(), None).unwrap();
    let mut g = c.benchmark_group("ingest_batch");
    g.throughput(Throughput::Bytes(total_bytes));
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        g.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| black_box(pipeline.index_records_batch(black_box(&pairs), pool)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scratch_reuse, bench_parallel_batch);
criterion_main!(benches);
