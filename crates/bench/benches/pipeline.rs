//! Pipeline benchmarks and the DESIGN.md ablations: cost of producing
//! index records and queries per stage combination, number of chunkings,
//! and partial-chunk policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdds_chunk::PartialChunkPolicy;
use sdds_cipher::{KeyMaterial, MasterKey};
use sdds_core::{EncodingConfig, IndexPipeline, PrecompressionConfig, SchemeConfig};
use sdds_corpus::DirectoryGenerator;
use sdds_encode::PairCompressor;
use std::hint::black_box;

fn keys() -> KeyMaterial {
    KeyMaterial::new(MasterKey::new([5; 16]))
}

fn sample_rcs(n: usize) -> Vec<String> {
    DirectoryGenerator::new(99)
        .generate(n)
        .into_iter()
        .map(|r| r.rc)
        .collect()
}

/// Stage ablation: chunk-only vs +encoding vs +dispersion vs full.
fn bench_stage_ablation(c: &mut Criterion) {
    let rcs = sample_rcs(200);
    let total_bytes: u64 = rcs.iter().map(|r| r.len() as u64).sum();
    let mut g = c.benchmark_group("ablation_stages");
    g.throughput(Throughput::Bytes(total_bytes));

    let make = |encoding: bool, dispersion: Option<usize>| {
        let mut cfg = SchemeConfig::basic(4, 2).unwrap();
        if encoding {
            cfg.encoding = Some(EncodingConfig::whole_chunk(256));
        }
        cfg.dispersion = dispersion;
        let cfg = cfg.validated().unwrap();
        let book = cfg
            .encoding
            .map(|_| IndexPipeline::train_codebook(&cfg, rcs.iter().map(|s| s.as_str())));
        IndexPipeline::new(cfg, keys(), book).unwrap()
    };

    let variants = [
        ("stage1_only", make(false, None)),
        ("stage1_2", make(true, None)),
        ("stage1_3_k4", make(false, Some(4))),
        ("stage1_2_3_k4", make(true, Some(4))),
    ];
    for (name, pipeline) in &variants {
        g.bench_with_input(
            BenchmarkId::new("index_records", *name),
            pipeline,
            |b, p| {
                b.iter(|| {
                    for rc in &rcs {
                        black_box(p.index_records(black_box(rc)));
                    }
                });
            },
        );
    }
    g.finish();
}

/// Ablation: number of chunkings (full s vs s/2 vs 2) — the §2.5
/// storage/false-positive trade-off, measured as index build cost.
fn bench_chunking_count(c: &mut Criterion) {
    let rcs = sample_rcs(200);
    let mut g = c.benchmark_group("ablation_chunkings");
    for chunkings in [8usize, 4, 2, 1] {
        let cfg = SchemeConfig::basic(8, chunkings).unwrap();
        let p = IndexPipeline::new(cfg, keys(), None).unwrap();
        g.bench_with_input(BenchmarkId::new("index_records", chunkings), &p, |b, p| {
            b.iter(|| {
                for rc in &rcs {
                    black_box(p.index_records(black_box(rc)));
                }
            });
        });
    }
    g.finish();
}

/// Ablation: storing vs dropping padded boundary chunks (§2.1).
fn bench_partial_policy(c: &mut Criterion) {
    let rcs = sample_rcs(200);
    let mut g = c.benchmark_group("ablation_partial_chunks");
    for (name, policy) in [
        ("store", PartialChunkPolicy::Store),
        ("drop", PartialChunkPolicy::Drop),
    ] {
        let mut cfg = SchemeConfig::basic(4, 4).unwrap();
        cfg.partial_chunks = policy;
        let p = IndexPipeline::new(cfg.validated().unwrap(), keys(), None).unwrap();
        g.bench_with_input(BenchmarkId::new("index_records", name), &p, |b, p| {
            b.iter(|| {
                for rc in &rcs {
                    black_box(p.index_records(black_box(rc)));
                }
            });
        });
    }
    g.finish();
}

/// Query compilation cost per search mode and dispersion degree.
fn bench_query_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_build");
    for k in [1usize, 2, 4] {
        let mut cfg = SchemeConfig::basic(4, 4).unwrap();
        cfg.dispersion = if k == 1 { None } else { Some(k) };
        let p = IndexPipeline::new(cfg.validated().unwrap(), keys(), None).unwrap();
        g.bench_with_input(BenchmarkId::new("dispersion_k", k), &p, |b, p| {
            b.iter(|| black_box(p.build_query(black_box("MARTINEZ JOSE"))).unwrap());
        });
    }
    g.finish();
}

/// Stage-0 searchable compression: raw throughput and end-to-end index
/// cost with pre-compression on/off.
fn bench_precompression(c: &mut Criterion) {
    let rcs = sample_rcs(500);
    let streams: Vec<Vec<u16>> = rcs
        .iter()
        .map(|s| s.bytes().map(u16::from).collect())
        .collect();
    let total_bytes: u64 = rcs.iter().map(|r| r.len() as u64).sum();
    let mut g = c.benchmark_group("precompression");
    g.throughput(Throughput::Bytes(total_bytes));
    let compressor = PairCompressor::train(streams.iter().map(|v| v.as_slice()), 256, 128);
    // report the achieved ratio once
    let compressed: usize = streams.iter().map(|s| compressor.compress(s).len()).sum();
    let raw: usize = streams.iter().map(Vec::len).sum();
    eprintln!(
        "[pair-compression] {} pairs, ratio {:.3} ({} -> {} symbols)",
        compressor.num_pairs(),
        compressed as f64 / raw as f64,
        raw,
        compressed
    );
    g.bench_function("compress", |b| {
        b.iter(|| {
            for s in &streams {
                black_box(compressor.compress(black_box(s)));
            }
        });
    });
    // end-to-end: index build with Stage 0 on vs off
    let mut pre_cfg = SchemeConfig::basic(4, 2).unwrap();
    pre_cfg.precompression = Some(PrecompressionConfig { max_pairs: 128 });
    let pre_cfg = pre_cfg.validated().unwrap();
    let pre = IndexPipeline::with_precompressor(
        pre_cfg,
        keys(),
        None,
        Some(IndexPipeline::train_precompressor(
            &pre_cfg,
            rcs.iter().map(|s| s.as_str()),
        )),
    )
    .unwrap();
    let plain = IndexPipeline::new(SchemeConfig::basic(4, 2).unwrap(), keys(), None).unwrap();
    for (name, p) in [
        ("index_with_stage0", &pre),
        ("index_without_stage0", &plain),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                for rc in &rcs {
                    black_box(p.index_records(black_box(rc)));
                }
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stage_ablation,
    bench_chunking_count,
    bench_partial_policy,
    bench_query_build,
    bench_precompression
);
criterion_main!(benches);
