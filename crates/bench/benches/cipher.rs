//! Cipher-substrate microbenchmarks: AES-128 primitives and the
//! arbitrary-width chunk PRP across the paper's chunk sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdds_cipher::{modes, Aes128, ChunkPrp};
use std::hint::black_box;

fn bench_aes(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes128");
    let aes = Aes128::new(&[7; 16]);
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        let mut block = [0xABu8; 16];
        b.iter(|| {
            aes.encrypt_block(black_box(&mut block));
        });
    });
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("cbc_encrypt", size), &data, |b, data| {
            b.iter(|| modes::cbc_encrypt(&aes, &[1; 16], black_box(data)));
        });
        g.bench_with_input(BenchmarkId::new("ctr_xor", size), &data, |b, data| {
            let mut buf = data.clone();
            b.iter(|| modes::ctr_xor(&aes, &[1; 16], black_box(&mut buf)));
        });
    }
    g.finish();
}

fn bench_chunk_prp(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_prp");
    // widths for the paper's chunk sizes: s=2,4,6,8 ASCII symbols and the
    // 12-bit compressed chunks of the recommended configuration
    for width in [12u32, 16, 32, 48, 64, 128] {
        let prp = ChunkPrp::new(&[3; 16], width).unwrap();
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("encrypt", width), &prp, |b, prp| {
            let mut x =
                0x1234_5678_9ABCu128 & ((1u128 << (width - 1)) | ((1u128 << (width - 1)) - 1));
            b.iter(|| {
                x = prp.encrypt(black_box(x));
                x
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aes, bench_chunk_prp);
criterion_main!(benches);
