//! Dense matrices over GF(2^g).
//!
//! The dispersion stage of the paper (§4) multiplies each chunk — viewed as
//! a row vector over GF(2^g) — by an invertible k×k matrix **E** and stores
//! component *i* of the product on dispersion site *i*. The paper remarks
//! that "a good **E** seems to be one where all coefficients are nonzero
//! (… such matrices exist in abundance, e.g. as Cauchy matrices or
//! Vandermonde matrices)". This module supplies exactly those constructors,
//! plus Gauss–Jordan inversion so decoders can reassemble chunks.

use crate::field::Field;
use rand::Rng;
use std::fmt;

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Attempted to invert or decompose a singular matrix.
    Singular,
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Left operand shape `(rows, cols)`.
        left: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        right: (usize, usize),
    },
    /// Construction parameters exceed the field size (e.g. a Cauchy matrix
    /// needs `rows + cols` distinct field elements).
    FieldTooSmall {
        /// Elements required.
        needed: usize,
        /// Field order available.
        available: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::FieldTooSmall { needed, available } => write!(
                f,
                "field too small: construction needs {needed} distinct elements, \
                 field has {available}"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense `rows x cols` matrix over GF(2^g), stored row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:4x}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the n×n identity matrix.
    pub fn identity(_field: &Field, n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from row-major data. Panics if the element count
    /// does not match the shape.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u16>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u16 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u16) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u16] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A `rows(sel) x cols` matrix assembled from the selected rows.
    pub fn select_rows(&self, sel: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(sel.len() * self.cols);
        for &r in sel {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: sel.len(),
            cols: self.cols,
            data,
        }
    }

    /// True if every coefficient is non-zero — the paper's heuristic for a
    /// "good" dispersion matrix (every share then depends on the whole
    /// chunk, hampering per-share frequency analysis).
    pub fn all_nonzero(&self) -> bool {
        self.data.iter().all(|&v| v != 0)
    }

    /// Cauchy matrix `M[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i` and `y_j = rows + j`. Every square submatrix of a Cauchy
    /// matrix is invertible, and every coefficient is non-zero.
    pub fn cauchy(field: &Field, rows: usize, cols: usize) -> Result<Matrix, MatrixError> {
        let needed = rows + cols;
        if needed > field.order() as usize {
            return Err(MatrixError::FieldTooSmall {
                needed,
                available: field.order() as usize,
            });
        }
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let x = i as u16;
                let y = (rows + j) as u16;
                m.set(i, j, field.inv(field.add(x, y)));
            }
        }
        Ok(m)
    }

    /// Vandermonde matrix `M[i][j] = x_i ^ j` with `x_i = exp(i)` (the
    /// powers of the generator), guaranteeing distinct non-zero evaluation
    /// points so any `cols` rows with distinct points are independent.
    pub fn vandermonde(field: &Field, rows: usize, cols: usize) -> Result<Matrix, MatrixError> {
        if rows > field.order() as usize - 1 {
            return Err(MatrixError::FieldTooSmall {
                needed: rows,
                available: field.order() as usize - 1,
            });
        }
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = field.exp(i as u32);
            for j in 0..cols {
                m.set(i, j, field.pow(x, j as u32));
            }
        }
        Ok(m)
    }

    /// Samples random square matrices until one is invertible, optionally
    /// insisting (like the paper) that all coefficients be non-zero.
    ///
    /// Rejection sampling terminates fast: a random matrix over GF(q) is
    /// non-singular with probability `prod (1 - q^-i) > 0.28` even for q=2.
    pub fn random_nonsingular<R: Rng + ?Sized>(
        field: &Field,
        n: usize,
        require_all_nonzero: bool,
        rng: &mut R,
    ) -> Matrix {
        let mask = field.mask();
        loop {
            let mut m = Matrix::zero(n, n);
            for r in 0..n {
                for c in 0..n {
                    let v = if require_all_nonzero {
                        loop {
                            let v = rng.gen::<u16>() & mask;
                            if v != 0 {
                                break v;
                            }
                        }
                    } else {
                        rng.gen::<u16>() & mask
                    };
                    m.set(r, c, v);
                }
            }
            if m.clone().inverse(field).is_ok() {
                return m;
            }
        }
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, field: &Field, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = field.mul(a, rhs.get(k, j));
                    out.set(i, j, field.add(out.get(i, j), prod));
                }
            }
        }
        Ok(out)
    }

    /// Row-vector × matrix product, the dispersion hot path:
    /// `d = c · E` for a chunk `c`.
    pub fn vec_mul(&self, field: &Field, v: &[u16]) -> Result<Vec<u16>, MatrixError> {
        let mut out = vec![0u16; self.cols];
        self.vec_mul_into(field, v, &mut out)?;
        Ok(out)
    }

    /// [`vec_mul`](Self::vec_mul) into a caller-provided buffer of length
    /// `cols` — the allocation-free form for per-chunk hot loops.
    pub fn vec_mul_into(
        &self,
        field: &Field,
        v: &[u16],
        out: &mut [u16],
    ) -> Result<(), MatrixError> {
        if v.len() != self.rows || out.len() != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: (1, v.len()),
                right: (self.rows, self.cols),
            });
        }
        out.fill(0);
        for (i, &vi) in v.iter().enumerate() {
            if vi != 0 {
                field.mul_acc_slice(out, self.row(i), vi);
            }
        }
        Ok(())
    }

    /// Precomputes the scalar-multiplication tables of every row — see
    /// [`RowTables`].
    pub fn row_tables(&self, field: &Field) -> RowTables {
        RowTables::new(field, self)
    }

    /// In-place Gauss–Jordan inversion. Returns the inverse, consuming the
    /// working copy; `Err(Singular)` if no inverse exists.
    pub fn inverse(mut self, field: &Field) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.cols, self.rows),
            });
        }
        let n = self.rows;
        let mut inv = Matrix::identity(field, n);
        for col in 0..n {
            // find pivot
            let pivot = (col..n)
                .find(|&r| self.get(r, col) != 0)
                .ok_or(MatrixError::Singular)?;
            if pivot != col {
                self.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // normalize pivot row
            let pv = self.get(col, col);
            if pv != 1 {
                let ipv = field.inv(pv);
                field.scale_slice(self.row_mut(col), ipv);
                field.scale_slice(inv.row_mut(col), ipv);
            }
            // eliminate other rows
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = self.get(r, col);
                if factor == 0 {
                    continue;
                }
                // row_r ^= factor * row_col  (for both matrices)
                let (src, dst) = row_pair(&mut self.data, self.cols, col, r);
                field.mul_acc_slice(dst, src, factor);
                let (src, dst) = row_pair(&mut inv.data, inv.cols, col, r);
                field.mul_acc_slice(dst, src, factor);
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn row_mut(&mut self, r: usize) -> &mut [u16] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Per-row GF scalar-multiplication tables of a fixed matrix: for every
/// row `i` and field element `x`, the products `x · M[i][j]` for all
/// columns `j` are stored contiguously, so a row-vector multiply is `rows`
/// table-row XORs with **zero** log/antilog arithmetic — one 2^g-entry
/// lookup family per matrix row, the "small tables" trick of §4 taken one
/// step further for the dispersal hot loop where **E** never changes.
///
/// Memory: `rows · cols · 2^g` `u16`s (k = 4, g = 8 → 4 KiB; the worst
/// supported case k = 16, g = 16 is 32 MiB, still built once per
/// disperser).
#[derive(Clone)]
pub struct RowTables {
    rows: usize,
    cols: usize,
    order: usize,
    /// `data[(i · order + x) · cols + j] = x · M[i][j]`.
    data: Vec<u16>,
}

impl fmt::Debug for RowTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowTables")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("order", &self.order)
            .finish()
    }
}

impl RowTables {
    /// Builds the tables for `matrix` over `field`.
    pub fn new(field: &Field, matrix: &Matrix) -> RowTables {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let order = field.order() as usize;
        let mut data = vec![0u16; rows * order * cols];
        for i in 0..rows {
            for j in 0..cols {
                let table = field.mul_table(matrix.get(i, j));
                for (x, &prod) in table.iter().enumerate() {
                    data[(i * order + x) * cols + j] = prod;
                }
            }
        }
        RowTables {
            rows,
            cols,
            order,
            data,
        }
    }

    /// Number of matrix rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns covered.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-vector × matrix product through the tables:
    /// `out[j] = Σ_i v[i] · M[i][j]`, written into a caller buffer of
    /// length `cols`. Equivalent to [`Matrix::vec_mul_into`] but each
    /// row's contribution is a single contiguous table row XOR.
    pub fn vec_mul_into(&self, v: &[u16], out: &mut [u16]) -> Result<(), MatrixError> {
        if v.len() != self.rows || out.len() != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: (1, v.len()),
                right: (self.rows, self.cols),
            });
        }
        out.fill(0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0 {
                continue;
            }
            debug_assert!((vi as usize) < self.order, "element out of field range");
            let base = (i * self.order + vi as usize) * self.cols;
            let row = &self.data[base..base + self.cols];
            for (o, &p) in out.iter_mut().zip(row.iter()) {
                *o ^= p;
            }
        }
        Ok(())
    }
}

/// Splits the backing store into one immutable source row and one mutable
/// destination row (distinct indices required).
fn row_pair(data: &mut [u16], cols: usize, src: usize, dst: usize) -> (&[u16], &mut [u16]) {
    assert_ne!(src, dst);
    if src < dst {
        let (head, tail) = data.split_at_mut(dst * cols);
        (&head[src * cols..(src + 1) * cols], &mut tail[..cols])
    } else {
        let (head, tail) = data.split_at_mut(src * cols);
        (&tail[..cols], &mut head[dst * cols..(dst + 1) * cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn f8() -> Field {
        Field::new(8).unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let f = f8();
        let id = Matrix::identity(&f, 5);
        assert_eq!(id.clone().inverse(&f).unwrap(), id);
        assert_eq!(id.mul(&f, &id).unwrap(), id);
    }

    #[test]
    fn mul_shape_mismatch() {
        let f = f8();
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(matches!(
            a.mul(&f, &b),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn cauchy_all_nonzero_and_invertible() {
        let f = f8();
        for n in 1..=8 {
            let m = Matrix::cauchy(&f, n, n).unwrap();
            assert!(m.all_nonzero());
            let inv = m.clone().inverse(&f).unwrap();
            let prod = m.mul(&f, &inv).unwrap();
            assert_eq!(prod, Matrix::identity(&f, n));
        }
    }

    #[test]
    fn cauchy_field_too_small() {
        let f = Field::new(2).unwrap(); // 4 elements
        assert!(matches!(
            Matrix::cauchy(&f, 3, 3),
            Err(MatrixError::FieldTooSmall { .. })
        ));
    }

    #[test]
    fn vandermonde_square_invertible() {
        let f = f8();
        for n in 1..=6 {
            let m = Matrix::vandermonde(&f, n, n).unwrap();
            let inv = m.clone().inverse(&f).unwrap();
            assert_eq!(m.mul(&f, &inv).unwrap(), Matrix::identity(&f, n));
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let f = f8();
        // two identical rows
        let m = Matrix::from_rows(2, 2, vec![1, 2, 1, 2]);
        assert_eq!(m.inverse(&f), Err(MatrixError::Singular));
        // zero matrix
        let z = Matrix::zero(3, 3);
        assert_eq!(z.inverse(&f), Err(MatrixError::Singular));
    }

    #[test]
    fn random_nonsingular_inverts_and_respects_nonzero_flag() {
        let f = Field::new(2).unwrap(); // worst case: GF(4), paper's k=4 on 8-bit chunks
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..20 {
            let m = Matrix::random_nonsingular(&f, 4, true, &mut rng);
            assert!(m.all_nonzero());
            let inv = m.clone().inverse(&f).unwrap();
            assert_eq!(m.mul(&f, &inv).unwrap(), Matrix::identity(&f, 4));
        }
    }

    #[test]
    fn vec_mul_matches_matrix_mul() {
        let f = f8();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = Matrix::random_nonsingular(&f, 6, false, &mut rng);
        let v: Vec<u16> = (0..6).map(|i| (i * 40 + 3) as u16).collect();
        let as_row = Matrix::from_rows(1, 6, v.clone());
        let expect = as_row.mul(&f, &m).unwrap();
        let got = m.vec_mul(&f, &v).unwrap();
        assert_eq!(got, expect.row(0));
    }

    #[test]
    fn row_tables_match_vec_mul_across_fields() {
        for g in [1u32, 2, 4, 8, 10] {
            let f = Field::new(g).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(31 + g as u64);
            for n in [1usize, 2, 4] {
                let m = Matrix::random_nonsingular(&f, n, false, &mut rng);
                let tables = m.row_tables(&f);
                let mask = f.mask();
                for trial in 0..40u16 {
                    let v: Vec<u16> = (0..n)
                        .map(|i| (trial.wrapping_mul(113).wrapping_add(i as u16 * 7)) & mask)
                        .collect();
                    let expect = m.vec_mul(&f, &v).unwrap();
                    let mut got = vec![0u16; n];
                    tables.vec_mul_into(&v, &mut got).unwrap();
                    assert_eq!(got, expect, "g={g} n={n} v={v:?}");
                }
            }
        }
    }

    #[test]
    fn row_tables_reject_bad_shapes() {
        let f = f8();
        let m = Matrix::identity(&f, 3);
        let t = m.row_tables(&f);
        let mut out = vec![0u16; 3];
        assert!(t.vec_mul_into(&[1, 2], &mut out).is_err());
        let mut short = vec![0u16; 2];
        assert!(t.vec_mul_into(&[1, 2, 3], &mut short).is_err());
    }

    #[test]
    fn vec_mul_into_matches_vec_mul() {
        let f = f8();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let m = Matrix::random_nonsingular(&f, 5, false, &mut rng);
        let v: Vec<u16> = (0..5).map(|i| (i * 51 + 2) as u16).collect();
        let mut out = vec![0xFFFFu16; 5]; // must be overwritten, not accumulated
        m.vec_mul_into(&f, &v, &mut out).unwrap();
        assert_eq!(out, m.vec_mul(&f, &v).unwrap());
    }

    #[test]
    fn vec_mul_roundtrips_through_inverse() {
        // Dispersion correctness: c · E · E^-1 == c.
        let f = Field::new(4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let e = Matrix::random_nonsingular(&f, 4, true, &mut rng);
        let einv = e.clone().inverse(&f).unwrap();
        for trial in 0..50u16 {
            let c: Vec<u16> = (0..4)
                .map(|i| (trial.wrapping_mul(7).wrapping_add(i)) & 0xF)
                .collect();
            let d = e.vec_mul(&f, &c).unwrap();
            let back = einv.vec_mul(&f, &d).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn select_rows_picks_expected() {
        let m = Matrix::from_rows(3, 2, vec![1, 2, 3, 4, 5, 6]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5, 6]);
        assert_eq!(s.row(1), &[1, 2]);
    }

    #[test]
    fn any_square_submatrix_of_cauchy_extension_is_invertible() {
        // The property Cauchy–RS relies on: [I; C] has every k×k row subset
        // invertible. Spot-check several subsets for k=4, m=3.
        let f = f8();
        let k = 4;
        let m = 3;
        let mut gen = Matrix::zero(k + m, k);
        for i in 0..k {
            gen.set(i, i, 1);
        }
        let c = Matrix::cauchy(&f, m, k).unwrap();
        for i in 0..m {
            for j in 0..k {
                gen.set(k + i, j, c.get(i, j));
            }
        }
        let subsets: &[&[usize]] = &[
            &[0, 1, 2, 3],
            &[0, 1, 2, 4],
            &[0, 1, 4, 5],
            &[0, 4, 5, 6],
            &[3, 4, 5, 6],
            &[1, 2, 5, 6],
        ];
        for sel in subsets {
            let sub = gen.select_rows(sel);
            assert!(sub.inverse(&f).is_ok(), "subset {sel:?} singular");
        }
    }
}
