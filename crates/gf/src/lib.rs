//! Galois-field arithmetic, matrices and Reed–Solomon erasure coding.
//!
//! This crate is the algebraic substrate of the ICDE'06 encrypted
//! searchable SDDS reproduction. It provides:
//!
//! * [`Field`] — arithmetic in GF(2^g) for `1 <= g <= 16`, backed by
//!   log/antilog tables built from a primitive polynomial (§4 of the paper:
//!   "We construct a Galois field Φ = GF(2^g) … Multiplication and division
//!   are more involved operations, but there exist a number of good methods
//!   to implement them in the literature").
//! * [`Matrix`] — dense matrices over a field with multiplication,
//!   Gauss–Jordan inversion, and the Cauchy / Vandermonde constructors the
//!   paper suggests for dispersion matrices **E**.
//! * [`rs`] — systematic Cauchy–Reed–Solomon erasure coding used by the
//!   LH\*<sub>RS</sub> high-availability substrate \[LMS05\].
//!
//! # Example
//!
//! ```
//! use sdds_gf::{Field, Matrix};
//!
//! let f = Field::new(8).unwrap();             // GF(256)
//! let a = f.mul(0x57, 0x83);                  // field multiplication
//! assert_eq!(f.div(a, 0x83), 0x57);           // and its inverse
//!
//! // The identity matrix is its own inverse.
//! let m = Matrix::identity(&f, 4);
//! assert_eq!(m.clone().inverse(&f).unwrap(), m);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod matrix;
pub mod rs;

pub use field::{Field, FieldError};
pub use matrix::{Matrix, MatrixError, RowTables};
