//! Arithmetic in the binary extension fields GF(2^g), `1 <= g <= 16`.
//!
//! Elements are represented as the low `g` bits of a `u16`. Addition and
//! subtraction are XOR; multiplication and division go through log/antilog
//! tables built once per field from a primitive polynomial, so that a
//! multiply is two table lookups and an addition — the "small tables" fast
//! path the paper relies on for dispersion to be cheap (§4).

use std::fmt;

/// Primitive polynomials for GF(2^g), `g = 1..=16`, written with the
/// implicit leading term included (e.g. `0x11B = x^8+x^4+x^3+x+1`, the
/// AES/Rijndael polynomial for g = 8).
///
/// All polynomials below are primitive, so the element `x` (i.e. `2`)
/// generates the full multiplicative group — a requirement for the
/// log/antilog construction. (The g = 8 entry is `0x11D`, the polynomial
/// conventionally used by Reed–Solomon implementations; the AES polynomial
/// `0x11B` is irreducible but *not* primitive and lives in
/// [`Field::new_with_poly`]-land for callers that need it.)
const PRIMITIVE_POLY: [u32; 17] = [
    0,          // unused (g = 0)
    0b11,       // g=1:  x + 1 (GF(2) degenerate)
    0b111,      // g=2:  x^2 + x + 1
    0b1011,     // g=3:  x^3 + x + 1
    0b10011,    // g=4:  x^4 + x + 1
    0b100101,   // g=5:  x^5 + x^2 + 1
    0b1000011,  // g=6:  x^6 + x + 1
    0b10001001, // g=7:  x^7 + x^3 + 1
    0x11D,      // g=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,      // g=9:  x^9 + x^4 + 1
    0x409,      // g=10: x^10 + x^3 + 1
    0x805,      // g=11: x^11 + x^2 + 1
    0x1053,     // g=12: x^12 + x^6 + x^4 + x + 1
    0x201B,     // g=13: x^13 + x^4 + x^3 + x + 1
    0x402B,     // g=14: x^14 + x^5 + x^3 + x + 1
    0x8003,     // g=15: x^15 + x + 1
    0x1002D,    // g=16: x^16 + x^5 + x^3 + x^2 + 1
];

/// Errors from field construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// The requested field width is outside `1..=16`.
    UnsupportedWidth(u32),
    /// The supplied reduction polynomial does not have the expected degree.
    BadPolynomial {
        /// Field width `g` requested.
        width: u32,
        /// Offending polynomial.
        poly: u32,
    },
    /// The polynomial is reducible or not primitive: `x` failed to generate
    /// the whole multiplicative group.
    NotPrimitive(u32),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::UnsupportedWidth(g) => {
                write!(f, "unsupported field width g={g}; need 1 <= g <= 16")
            }
            FieldError::BadPolynomial { width, poly } => {
                write!(f, "polynomial {poly:#x} does not have degree {width}")
            }
            FieldError::NotPrimitive(p) => {
                write!(f, "polynomial {p:#x} is not primitive over GF(2)")
            }
        }
    }
}

impl std::error::Error for FieldError {}

/// A binary extension field GF(2^g) with log/antilog multiplication tables.
///
/// Field elements are `u16` values with only the low `g` bits used. The
/// zero element is `0`; the multiplicative identity is `1`.
#[derive(Clone)]
pub struct Field {
    g: u32,
    order: u32,    // 2^g
    poly: u32,     // reduction polynomial incl. leading term
    log: Vec<u16>, // log[a] for a in 1..order
    exp: Vec<u16>, // exp[i] for i in 0..2*(order-1): doubled to skip a mod
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field")
            .field("g", &self.g)
            .field("poly", &format_args!("{:#x}", self.poly))
            .finish()
    }
}

impl PartialEq for Field {
    fn eq(&self, other: &Self) -> bool {
        self.g == other.g && self.poly == other.poly
    }
}
impl Eq for Field {}

impl Field {
    /// Builds GF(2^g) using the crate's default primitive polynomial.
    pub fn new(g: u32) -> Result<Field, FieldError> {
        if !(1..=16).contains(&g) {
            return Err(FieldError::UnsupportedWidth(g));
        }
        Field::new_with_poly(g, PRIMITIVE_POLY[g as usize])
    }

    /// Builds GF(2^g) with a caller-supplied primitive polynomial of
    /// degree `g` (leading term included).
    pub fn new_with_poly(g: u32, poly: u32) -> Result<Field, FieldError> {
        if !(1..=16).contains(&g) {
            return Err(FieldError::UnsupportedWidth(g));
        }
        if poly >> g != 1 {
            return Err(FieldError::BadPolynomial { width: g, poly });
        }
        let order: u32 = 1 << g;
        let mut log = vec![0u16; order as usize];
        let mut exp = vec![0u16; 2 * (order as usize - 1)];
        // Generate powers of x (= 2). For g = 1 the group is trivial.
        let mut value: u32 = 1;
        for i in 0..(order - 1) {
            exp[i as usize] = value as u16;
            if value != 1 && log[value as usize] != 0 {
                // revisited an element before exhausting the group
                return Err(FieldError::NotPrimitive(poly));
            }
            log[value as usize] = i as u16;
            value <<= 1;
            if value & order != 0 {
                value ^= poly;
            }
        }
        if value != 1 {
            // x^(order-1) must return to 1 for a primitive polynomial
            return Err(FieldError::NotPrimitive(poly));
        }
        for i in 0..(order as usize - 1) {
            exp[i + order as usize - 1] = exp[i];
        }
        Ok(Field {
            g,
            order,
            poly,
            log,
            exp,
        })
    }

    /// Field width `g` in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.g
    }

    /// Number of elements, `2^g`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The reduction polynomial, leading term included.
    #[inline]
    pub fn polynomial(&self) -> u32 {
        self.poly
    }

    /// Bit mask selecting the low `g` bits.
    #[inline]
    pub fn mask(&self) -> u16 {
        (self.order - 1) as u16
    }

    #[inline]
    fn check(&self, a: u16) {
        debug_assert!(
            (a as u32) < self.order,
            "element {a:#x} out of range for GF(2^{})",
            self.g
        );
    }

    /// Addition — XOR, as in every characteristic-2 field.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        a ^ b
    }

    /// Subtraction — identical to addition in characteristic 2.
    #[inline]
    pub fn sub(&self, a: u16, b: u16) -> u16 {
        self.add(a, b)
    }

    /// Multiplication through the log/antilog tables.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        if a == 0 || b == 0 {
            return 0;
        }
        let ia = self.log[a as usize] as usize;
        let ib = self.log[b as usize] as usize;
        self.exp[ia + ib]
    }

    /// Division. Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        self.check(a);
        self.check(b);
        assert!(b != 0, "division by zero in GF(2^{})", self.g);
        if a == 0 {
            return 0;
        }
        let ia = self.log[a as usize] as usize;
        let ib = self.log[b as usize] as usize;
        let n = self.order as usize - 1;
        self.exp[ia + n - ib]
    }

    /// Multiplicative inverse. Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        self.div(1, a)
    }

    /// Exponentiation `a^e` (with `0^0 = 1`).
    pub fn pow(&self, a: u16, e: u32) -> u16 {
        self.check(a);
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let n = (self.order - 1) as u64;
        let ia = self.log[a as usize] as u64;
        let idx = (ia * e as u64) % n;
        self.exp[idx as usize]
    }

    /// Discrete logarithm base `x` of a non-zero element.
    pub fn log(&self, a: u16) -> Option<u16> {
        self.check(a);
        if a == 0 {
            None
        } else {
            Some(self.log[a as usize])
        }
    }

    /// `x^i` — the antilog table.
    pub fn exp(&self, i: u32) -> u16 {
        self.exp[(i as usize) % (self.order as usize - 1)]
    }

    /// Multiplies a slice in place by a scalar — the inner loop of
    /// Reed–Solomon encoding and of index-record dispersion.
    pub fn scale_slice(&self, data: &mut [u16], scalar: u16) {
        if scalar == 0 {
            data.fill(0);
            return;
        }
        if scalar == 1 {
            return;
        }
        let is = self.log[scalar as usize] as usize;
        for v in data.iter_mut() {
            if *v != 0 {
                *v = self.exp[self.log[*v as usize] as usize + is];
            }
        }
    }

    /// The full multiplication table of `scalar`: entry `x` holds
    /// `scalar * x` for every field element `x`. Turns a multiply into a
    /// single indexed load (no log/antilog pair) — the building block of
    /// the dispersion row tables, where each matrix coefficient is fixed
    /// for the life of the disperser.
    pub fn mul_table(&self, scalar: u16) -> Vec<u16> {
        self.check(scalar);
        let mut table = vec![0u16; self.order as usize];
        if scalar == 0 {
            return table;
        }
        let is = self.log[scalar as usize] as usize;
        for (x, slot) in table.iter_mut().enumerate().skip(1) {
            *slot = self.exp[self.log[x] as usize + is];
        }
        table
    }

    /// `acc[i] ^= scalar * src[i]` — fused multiply-accumulate over slices.
    pub fn mul_acc_slice(&self, acc: &mut [u16], src: &[u16], scalar: u16) {
        assert_eq!(acc.len(), src.len(), "slice length mismatch");
        if scalar == 0 {
            return;
        }
        let is = self.log[scalar as usize] as usize;
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            if s != 0 {
                *a ^= self.exp[self.log[s as usize] as usize + is];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_default_widths_construct() {
        for g in 1..=16 {
            let f = Field::new(g).unwrap();
            assert_eq!(f.order(), 1 << g);
        }
    }

    #[test]
    fn rejects_bad_width() {
        assert_eq!(Field::new(0).unwrap_err(), FieldError::UnsupportedWidth(0));
        assert_eq!(
            Field::new(17).unwrap_err(),
            FieldError::UnsupportedWidth(17)
        );
    }

    #[test]
    fn rejects_wrong_degree_poly() {
        assert!(matches!(
            Field::new_with_poly(8, 0x1B).unwrap_err(),
            FieldError::BadPolynomial { .. }
        ));
    }

    #[test]
    fn rejects_non_primitive_poly() {
        // x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) is irreducible
        // but not primitive: x has order 51, not 255.
        assert_eq!(
            Field::new_with_poly(8, 0x11B).unwrap_err(),
            FieldError::NotPrimitive(0x11B)
        );
        // x^4 + x^3 + x^2 + x + 1 divides x^5 - 1, so x has order 5 != 15.
        assert_eq!(
            Field::new_with_poly(4, 0b11111).unwrap_err(),
            FieldError::NotPrimitive(0b11111)
        );
    }

    #[test]
    fn gf256_known_products() {
        // Known values for the 0x11D (Reed–Solomon) polynomial.
        let f = Field::new(8).unwrap();
        assert_eq!(f.mul(0, 7), 0);
        assert_eq!(f.mul(1, 7), 7);
        assert_eq!(f.mul(2, 0x80), 0x1D); // x * x^7 = x^8 = poly tail
        assert_eq!(f.mul(0x80, 2), 0x1D);
    }

    #[test]
    fn gf16_full_multiplication_table_against_carryless_reference() {
        // Cross-check table-driven mul against shift-and-reduce for GF(16).
        let f = Field::new(4).unwrap();
        let slow = |mut a: u32, mut b: u32| -> u16 {
            let mut acc = 0u32;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x10 != 0 {
                    a ^= 0b10011;
                }
                b >>= 1;
            }
            acc as u16
        };
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(f.mul(a, b), slow(a as u32, b as u32), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn division_and_inverse_roundtrip() {
        let f = Field::new(8).unwrap();
        for a in 1..256u16 {
            let inv = f.inv(a);
            assert_eq!(f.mul(a, inv), 1, "a={a}");
            for b in 1..256u16 {
                assert_eq!(f.mul(f.div(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let f = Field::new(4).unwrap();
        f.div(3, 0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = Field::new(6).unwrap();
        for a in 0..64u16 {
            let mut acc = 1u16;
            for e in 0..130u32 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn exp_log_are_inverse_bijections() {
        let f = Field::new(10).unwrap();
        for a in 1..1024u16 {
            assert_eq!(f.exp(f.log(a).unwrap() as u32), a);
        }
        assert_eq!(f.log(0), None);
    }

    #[test]
    fn scale_slice_matches_pointwise_mul() {
        let f = Field::new(8).unwrap();
        let src: Vec<u16> = (0..256).map(|i| (i * 37 % 256) as u16).collect();
        for scalar in [0u16, 1, 2, 0x53, 0xFF] {
            let mut scaled = src.clone();
            f.scale_slice(&mut scaled, scalar);
            for (s, &orig) in scaled.iter().zip(src.iter()) {
                assert_eq!(*s, f.mul(orig, scalar));
            }
        }
    }

    #[test]
    fn mul_table_matches_mul_for_every_pair() {
        for g in [1u32, 2, 4, 8, 11] {
            let f = Field::new(g).unwrap();
            for scalar in 0..f.order() as u16 {
                let t = f.mul_table(scalar);
                assert_eq!(t.len(), f.order() as usize);
                for x in 0..f.order() as u16 {
                    assert_eq!(t[x as usize], f.mul(scalar, x), "g={g} s={scalar} x={x}");
                }
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_pointwise() {
        let f = Field::new(8).unwrap();
        let src: Vec<u16> = (0..100).map(|i| (i * 31 % 256) as u16).collect();
        let base: Vec<u16> = (0..100).map(|i| (i * 7 % 256) as u16).collect();
        let mut acc = base.clone();
        f.mul_acc_slice(&mut acc, &src, 0x1D);
        for i in 0..100 {
            assert_eq!(acc[i], base[i] ^ f.mul(src[i], 0x1D));
        }
    }

    #[test]
    fn gf2_degenerate_field_works() {
        let f = Field::new(1).unwrap();
        assert_eq!(f.mul(1, 1), 1);
        assert_eq!(f.add(1, 1), 0);
        assert_eq!(f.inv(1), 1);
    }
}
