//! Systematic Cauchy–Reed–Solomon erasure coding over GF(2^8).
//!
//! LH\*<sub>RS</sub> \[LMS05\] — the high-availability SDDS the paper names
//! as its storage substrate — groups `k` data buckets with `m` parity
//! buckets so that any `k` surviving buckets of the `k + m` group recover
//! the rest. This module implements that code: a systematic generator
//! `G = [I_k ; C]` with `C` an `m×k` Cauchy matrix, which guarantees every
//! `k×k` row subset of `G` is invertible.
//!
//! Shares are byte strings of equal length; encoding and decoding work
//! column-wise over bytes.

use crate::field::Field;
use crate::matrix::{Matrix, MatrixError};
use std::fmt;

/// Errors from Reed–Solomon encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Parameters out of range (`k = 0`, or `k + m > 256`).
    BadParameters {
        /// Data shares.
        k: usize,
        /// Parity shares.
        m: usize,
    },
    /// Input shares differ in length or the wrong number was supplied.
    ShapeMismatch(String),
    /// Fewer than `k` shares available.
    NotEnoughShares {
        /// Shares required.
        needed: usize,
        /// Shares available.
        have: usize,
    },
    /// Internal matrix failure (should not happen for valid share sets).
    Matrix(MatrixError),
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::BadParameters { k, m } => {
                write!(f, "bad RS parameters k={k}, m={m} (need k>=1, k+m<=256)")
            }
            RsError::ShapeMismatch(msg) => write!(f, "share shape mismatch: {msg}"),
            RsError::NotEnoughShares { needed, have } => {
                write!(f, "not enough shares: need {needed}, have {have}")
            }
            RsError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for RsError {}

impl From<MatrixError> for RsError {
    fn from(e: MatrixError) -> Self {
        RsError::Matrix(e)
    }
}

/// A `(k, m)` systematic Reed–Solomon erasure code: `k` data shares,
/// `m` parity shares, tolerating any `m` losses.
///
/// ```
/// use sdds_gf::rs::ReedSolomon;
///
/// let rs = ReedSolomon::new(3, 2).unwrap();
/// let data = vec![b"abc".to_vec(), b"def".to_vec(), b"ghi".to_vec()];
/// let parity = rs.encode(&data).unwrap();
/// // lose two shares, recover everything
/// let shares = vec![None, Some(data[1].clone()), None,
///                   Some(parity[0].clone()), Some(parity[1].clone())];
/// assert_eq!(rs.reconstruct(&shares).unwrap(), data);
/// ```
pub struct ReedSolomon {
    k: usize,
    m: usize,
    field: Field,
    /// Full generator, `(k+m) x k`: first `k` rows are the identity.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a `(k, m)` code over GF(2^8). Requires `k >= 1` and
    /// `k + m <= 256` (Cauchy points must be distinct field elements).
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, RsError> {
        if k == 0 || k + m > 256 {
            return Err(RsError::BadParameters { k, m });
        }
        // lint: allow(panic-freedom) -- width 8 is a compile-time constant in Field's valid 1..=16 range
        let field = Field::new(8).expect("GF(256) always constructs");
        let mut generator = Matrix::zero(k + m, k);
        for i in 0..k {
            generator.set(i, i, 1);
        }
        if m > 0 {
            let c = Matrix::cauchy(&field, m, k)?;
            for i in 0..m {
                for j in 0..k {
                    generator.set(k + i, j, c.get(i, j));
                }
            }
        }
        Ok(ReedSolomon {
            k,
            m,
            field,
            generator,
        })
    }

    /// Number of data shares.
    pub fn data_shares(&self) -> usize {
        self.k
    }

    /// Number of parity shares.
    pub fn parity_shares(&self) -> usize {
        self.m
    }

    /// The generator coefficient `coef(p, i)` multiplying data share `i`
    /// in parity share `p` — exposed so incremental schemes (LH\*RS slot
    /// deltas) can update parity without re-encoding whole shares:
    /// `parity_p ^= coef(p, i) · delta_i`.
    pub fn parity_coefficient(&self, parity_index: usize, data_index: usize) -> u16 {
        assert!(parity_index < self.m, "parity index out of range");
        assert!(data_index < self.k, "data index out of range");
        self.generator.get(self.k + parity_index, data_index)
    }

    /// Scales a byte string by a field scalar (pointwise GF(256) multiply).
    pub fn scale_bytes(&self, data: &[u8], scalar: u16) -> Vec<u8> {
        data.iter()
            .map(|&b| self.field.mul(scalar, b as u16) as u8)
            .collect()
    }

    /// Computes the `m` parity shares for `k` equal-length data shares.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::ShapeMismatch(format!(
                "expected {} data shares, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(RsError::ShapeMismatch(
                "data shares differ in length".into(),
            ));
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (pi, p) in parity.iter_mut().enumerate() {
            let grow = self.generator.row(self.k + pi);
            for (di, d) in data.iter().enumerate() {
                let coef = grow[di];
                if coef == 0 {
                    continue;
                }
                for (pb, &db) in p.iter_mut().zip(d.iter()) {
                    *pb ^= self.field.mul(coef, db as u16) as u8;
                }
            }
        }
        Ok(parity)
    }

    /// Recovers all `k` data shares from any `k` available shares.
    ///
    /// `shares` holds `k + m` optional share bodies indexed by share id
    /// (`0..k` data, `k..k+m` parity); `None` marks an erasure. All present
    /// shares must have equal length.
    pub fn reconstruct(&self, shares: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, RsError> {
        if shares.len() != self.k + self.m {
            return Err(RsError::ShapeMismatch(format!(
                "expected {} share slots, got {}",
                self.k + self.m,
                shares.len()
            )));
        }
        // Carry each surviving body with its share id so no later lookup
        // has to re-unwrap an Option (panic-free by construction).
        let avail: Vec<(usize, &Vec<u8>)> = shares
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|body| (i, body)))
            .collect();
        if avail.len() < self.k {
            return Err(RsError::NotEnoughShares {
                needed: self.k,
                have: avail.len(),
            });
        }
        let picked = &avail[..self.k];
        let len = picked[0].1.len();
        if picked.iter().any(|(_, body)| body.len() != len) {
            return Err(RsError::ShapeMismatch("shares differ in length".into()));
        }
        // Fast path: all data shares survived.
        if picked.iter().map(|&(i, _)| i).eq(0..self.k) {
            return Ok(picked.iter().map(|&(_, body)| body.clone()).collect());
        }
        let use_rows: Vec<usize> = picked.iter().map(|&(i, _)| i).collect();
        let sub = self.generator.select_rows(&use_rows);
        let inv = sub.inverse(&self.field)?;
        // data_j = sum_i inv[j][i] * shares[use_rows[i]]
        let mut out = vec![vec![0u8; len]; self.k];
        for (j, o) in out.iter_mut().enumerate() {
            for (i, &(_, body)) in picked.iter().enumerate() {
                let coef = inv.get(j, i);
                if coef == 0 {
                    continue;
                }
                for (ob, &sb) in o.iter_mut().zip(body.iter()) {
                    *ob ^= self.field.mul(coef, sb as u16) as u8;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(200, 100).is_err());
        assert!(ReedSolomon::new(1, 0).is_ok());
    }

    #[test]
    fn parity_count_matches() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let parity = rs.encode(&sample_data(4, 64)).unwrap();
        assert_eq!(parity.len(), 2);
        assert!(parity.iter().all(|p| p.len() == 64));
    }

    #[test]
    fn reconstruct_with_no_losses_is_identity() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 32);
        let parity = rs.encode(&data).unwrap();
        let mut shares: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let got = rs.reconstruct(&shares).unwrap();
        assert_eq!(got, data);
        // Also when extra parity present but data intact with holes in parity.
        shares[4] = None;
        assert_eq!(rs.reconstruct(&shares).unwrap(), data);
    }

    #[test]
    fn recovers_from_every_single_and_double_erasure() {
        let k = 4;
        let m = 2;
        let rs = ReedSolomon::new(k, m).unwrap();
        let data = sample_data(k, 40);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        for lost1 in 0..k + m {
            for lost2 in 0..k + m {
                let mut shares: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shares[lost1] = None;
                shares[lost2] = None;
                let got = rs.reconstruct(&shares).unwrap();
                assert_eq!(got, data, "lost {lost1},{lost2}");
            }
        }
    }

    #[test]
    fn too_many_erasures_fail() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let data = sample_data(2, 8);
        let parity = rs.encode(&data).unwrap();
        let shares = vec![None, None, Some(parity[0].clone())];
        assert!(matches!(
            rs.reconstruct(&shares),
            Err(RsError::NotEnoughShares { needed: 2, have: 1 })
        ));
    }

    #[test]
    fn mismatched_share_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let data = vec![vec![1, 2, 3], vec![4, 5]];
        assert!(matches!(rs.encode(&data), Err(RsError::ShapeMismatch(_))));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = vec![vec![]; 3];
        let parity = rs.encode(&data).unwrap();
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn wide_group_recovers_from_worst_case_losses() {
        // LH*RS-sized group: 8 data + 3 parity, lose 3 data buckets.
        let rs = ReedSolomon::new(8, 3).unwrap();
        let data = sample_data(8, 128);
        let parity = rs.encode(&data).unwrap();
        let mut shares: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shares[0] = None;
        shares[3] = None;
        shares[7] = None;
        assert_eq!(rs.reconstruct(&shares).unwrap(), data);
    }
}
