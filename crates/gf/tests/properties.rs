//! Property-based tests for the GF(2^g) field axioms, matrix algebra and
//! Reed–Solomon recovery invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdds_gf::{rs::ReedSolomon, Field, Matrix};

fn elem(g: u32) -> impl Strategy<Value = u16> {
    0u16..(1u16 << g)
}

proptest! {
    #[test]
    fn field_axioms_gf256(a in elem(8), b in elem(8), c in elem(8)) {
        let f = Field::new(8).unwrap();
        // commutativity
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // associativity
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        // distributivity
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // identities
        prop_assert_eq!(f.add(a, 0), a);
        prop_assert_eq!(f.mul(a, 1), a);
        // additive inverse (characteristic 2: self-inverse)
        prop_assert_eq!(f.add(a, a), 0);
    }

    #[test]
    fn field_axioms_small_widths(g in 1u32..=12, seed in any::<u64>()) {
        let f = Field::new(g).unwrap();
        let mask = f.mask();
        let a = (seed as u16) & mask;
        let b = ((seed >> 16) as u16) & mask;
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        if b != 0 {
            prop_assert_eq!(f.mul(f.div(a, b), b), a);
        }
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    fn matrix_inverse_roundtrip(seed in any::<u64>(), n in 1usize..=6) {
        let f = Field::new(8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = Matrix::random_nonsingular(&f, n, false, &mut rng);
        let inv = m.clone().inverse(&f).unwrap();
        prop_assert_eq!(m.mul(&f, &inv).unwrap(), Matrix::identity(&f, n));
        prop_assert_eq!(inv.mul(&f, &m).unwrap(), Matrix::identity(&f, n));
    }

    #[test]
    fn matrix_mul_associative(seed in any::<u64>()) {
        let f = Field::new(8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::random_nonsingular(&f, 4, false, &mut rng);
        let b = Matrix::random_nonsingular(&f, 4, false, &mut rng);
        let c = Matrix::random_nonsingular(&f, 4, false, &mut rng);
        let left = a.mul(&f, &b).unwrap().mul(&f, &c).unwrap();
        let right = a.mul(&f, &b.mul(&f, &c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn dispersion_vector_roundtrip(seed in any::<u64>(), g in 2u32..=8, k in 2usize..=4) {
        // c · E recoverable via E^-1 for the paper's dispersion parameters.
        let f = Field::new(g).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let e = Matrix::random_nonsingular(&f, k, true, &mut rng);
        let einv = e.clone().inverse(&f).unwrap();
        let mask = f.mask();
        let c: Vec<u16> = (0..k).map(|i| ((seed >> (i * 8)) as u16) & mask).collect();
        let d = e.vec_mul(&f, &c).unwrap();
        prop_assert_eq!(einv.vec_mul(&f, &d).unwrap(), c);
    }

    #[test]
    fn rs_recovers_any_erasure_pattern(
        seed in any::<u64>(),
        k in 1usize..=6,
        m in 0usize..=3,
        len in 0usize..64,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let data: Vec<Vec<u8>> = (0..k).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        // erase up to m shares chosen by the seed
        let mut shares: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        let mut erased = 0;
        let mut idx = (seed % (k + m) as u64) as usize;
        while erased < m {
            shares[idx % (k + m)] = None;
            idx = idx.wrapping_mul(31).wrapping_add(7);
            erased += 1;
        }
        prop_assert_eq!(rs.reconstruct(&shares).unwrap(), data);
    }
}
