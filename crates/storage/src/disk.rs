//! The durable bucket backend: snapshot + WAL generations.
//!
//! A bucket directory holds at most one live *generation* `g`:
//!
//! ```text
//! bucket-<addr>/
//!   snap-<g>.dat   # full state at the moment generation g began (absent for g=0)
//!   wal-<g>.log    # every batch applied since
//! ```
//!
//! Opening loads the newest valid snapshot, replays its WAL (truncating a
//! torn tail), and deletes any other generation's files. Compaction
//! rotates generations once the WAL outgrows
//! [`DiskOptions::compact_wal_bytes`]:
//!
//! 1. write `snap-<g+1>.tmp` (full state, CRC-framed), fsync it
//! 2. rename to `snap-<g+1>.dat`, fsync the directory — **commit point**
//! 3. create empty `wal-<g+1>.log`
//! 4. delete generation `g`'s files
//!
//! A crash at any step leaves either generation `g` fully usable (before
//! the rename) or generation `g+1` fully usable (after it — a missing
//! `wal-<g+1>.log` just replays as empty), so recovery never needs to
//! merge generations.

use crate::wal::{self, FsyncPolicy, WalWriter};
use crate::{apply_ops, BatchOp, StorageEngine, StorageError, WriteBatch};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Records per CRC frame in a snapshot file: bounds the blast radius of a
/// bad sector without paying per-record header overhead.
const SNAPSHOT_CHUNK: usize = 256;

/// Tuning knobs for [`DiskEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskOptions {
    /// Group-commit policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh snapshot once the WAL exceeds this many bytes.
    pub compact_wal_bytes: u64,
}

impl Default for DiskOptions {
    fn default() -> Self {
        DiskOptions {
            fsync: FsyncPolicy::default(),
            compact_wal_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Durable storage engine for one bucket. Reads are served from an
/// in-memory image; every mutation is WAL-logged before it is applied.
#[derive(Debug)]
pub struct DiskEngine {
    dir: PathBuf,
    map: BTreeMap<u64, Vec<u8>>,
    /// `None` after `destroy()`: the engine degrades to memory-only.
    wal: Option<WalWriter>,
    generation: u64,
    options: DiskOptions,
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.dat"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// fsync a directory so renames/creates inside it are durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| StorageError::io("dir fsync", e))
}

/// What `scan_generations` finds on disk.
#[derive(Debug, Default)]
struct DirListing {
    snaps: Vec<u64>,
    wals: Vec<u64>,
    tmps: Vec<PathBuf>,
}

fn scan_generations(dir: &Path) -> Result<DirListing, StorageError> {
    let mut listing = DirListing::default();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io("read bucket dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io("read bucket dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".dat"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            listing.snaps.push(g);
        } else if let Some(g) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            listing.wals.push(g);
        } else if name.ends_with(".tmp") {
            listing.tmps.push(entry.path());
        }
    }
    listing.snaps.sort_unstable();
    listing.wals.sort_unstable();
    Ok(listing)
}

impl DiskEngine {
    /// Open the engine at `dir`, creating it fresh or recovering whatever
    /// a previous process — possibly killed mid-write — left behind.
    pub fn open(dir: &Path, options: DiskOptions) -> Result<DiskEngine, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("create bucket dir", e))?;
        let listing = scan_generations(dir)?;
        // leftovers from an interrupted compaction are never authoritative
        for tmp in &listing.tmps {
            let _ = std::fs::remove_file(tmp);
        }
        // newest snapshot that loads cleanly wins; a snapshot that fails
        // validation is ignored in favor of an older generation
        let mut map = BTreeMap::new();
        let mut generation = 0u64;
        for &g in listing.snaps.iter().rev() {
            match Self::load_snapshot(&snap_path(dir, g)) {
                Ok(state) => {
                    map = state;
                    generation = g;
                    break;
                }
                Err(_) => {
                    sdds_obs::counter("storage.snapshot_rejects").inc();
                }
            }
        }
        wal::replay(&wal_path(dir, generation), |ops| apply_ops(&mut map, &ops))?;
        // everything outside the chosen generation is dead weight
        for &g in &listing.snaps {
            if g != generation {
                let _ = std::fs::remove_file(snap_path(dir, g));
            }
        }
        for &g in &listing.wals {
            if g != generation {
                let _ = std::fs::remove_file(wal_path(dir, g));
            }
        }
        let wal = WalWriter::open(&wal_path(dir, generation), options.fsync)?;
        sync_dir(dir)?;
        Ok(DiskEngine {
            dir: dir.to_path_buf(),
            map,
            wal: Some(wal),
            generation,
            options,
        })
    }

    /// The directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot/WAL generation (testing and diagnostics).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// fsyncs issued on the current WAL (bench/diagnostics; resets on
    /// rotation and reopen).
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.as_ref().map_or(0, WalWriter::fsyncs)
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, WalWriter::bytes)
    }

    fn load_snapshot(path: &Path) -> Result<BTreeMap<u64, Vec<u8>>, StorageError> {
        let mut map = BTreeMap::new();
        for ops in wal::read_strict(path)? {
            apply_ops(&mut map, &ops);
        }
        Ok(map)
    }

    /// Log `ops` as one atomic frame, apply them to the image, and
    /// compact if the WAL has outgrown its budget.
    fn commit(&mut self, ops: &[BatchOp]) -> Result<(), StorageError> {
        if ops.is_empty() {
            return Ok(());
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.append(ops)?;
        }
        apply_ops(&mut self.map, ops);
        self.maybe_compact()?;
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), StorageError> {
        let due = self
            .wal
            .as_ref()
            .is_some_and(|w| w.bytes() > self.options.compact_wal_bytes);
        if due {
            self.compact()?;
        }
        Ok(())
    }

    /// Rotate to a fresh generation: full snapshot, empty WAL.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        if self.wal.is_none() {
            return Ok(());
        }
        let t0 = Instant::now();
        let next = self.generation + 1;
        let tmp = self.dir.join(format!("snap-{next}.tmp"));
        {
            let mut file =
                File::create(&tmp).map_err(|e| StorageError::io("snapshot create", e))?;
            let records: Vec<(&u64, &Vec<u8>)> = self.map.iter().collect();
            for chunk in records.chunks(SNAPSHOT_CHUNK) {
                let ops: Vec<BatchOp> = chunk
                    .iter()
                    .map(|(k, v)| BatchOp::Put {
                        key: **k,
                        value: (*v).clone(),
                    })
                    .collect();
                let framed = wal::frame(&wal::encode_ops(&ops));
                file.write_all(&framed)
                    .map_err(|e| StorageError::io("snapshot write", e))?;
            }
            file.sync_all()
                .map_err(|e| StorageError::io("snapshot fsync", e))?;
        }
        // the rename is the commit point for generation `next`
        std::fs::rename(&tmp, snap_path(&self.dir, next))
            .map_err(|e| StorageError::io("snapshot rename", e))?;
        sync_dir(&self.dir)?;
        let new_wal = WalWriter::open(&wal_path(&self.dir, next), self.options.fsync)?;
        sync_dir(&self.dir)?;
        let old = self.generation;
        self.wal = Some(new_wal);
        self.generation = next;
        let _ = std::fs::remove_file(wal_path(&self.dir, old));
        let _ = std::fs::remove_file(snap_path(&self.dir, old));
        sdds_obs::counter("storage.snapshots").inc();
        sdds_obs::counter("storage.compactions").inc();
        sdds_obs::histogram("storage.compact_seconds").observe_duration(t0.elapsed());
        Ok(())
    }
}

impl StorageEngine for DiskEngine {
    fn get_ref(&self, key: u64) -> Option<&[u8]> {
        self.map.get(&key).map(Vec::as_slice)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn keys(&self) -> Vec<u64> {
        self.map.keys().copied().collect()
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, &[u8])) {
        for (k, v) in &self.map {
            f(*k, v);
        }
    }

    fn range_scan(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, &[u8])) {
        for (k, v) in self.map.range(lo..=hi) {
            f(*k, v);
        }
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        let old = self.map.get(&key).cloned();
        self.commit(&[BatchOp::Put {
            key,
            value: value.to_vec(),
        }])?;
        Ok(old)
    }

    fn delete(&mut self, key: u64) -> Result<Option<Vec<u8>>, StorageError> {
        let old = self.map.get(&key).cloned();
        if old.is_some() {
            self.commit(&[BatchOp::Delete { key }])?;
        }
        Ok(old)
    }

    fn apply_batch(&mut self, batch: &WriteBatch) -> Result<(), StorageError> {
        self.commit(batch.ops())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        match self.wal.as_mut() {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    fn destroy(&mut self) -> Result<(), StorageError> {
        self.map.clear();
        self.wal = None; // close the handle before unlinking
        std::fs::remove_dir_all(&self.dir).map_err(|e| StorageError::io("destroy", e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdds-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts_always() -> DiskOptions {
        DiskOptions {
            fsync: FsyncPolicy::Always,
            compact_wal_bytes: u64::MAX,
        }
    }

    #[test]
    fn puts_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
            e.put(1, b"one").unwrap();
            e.put(2, b"two").unwrap();
            e.delete(1).unwrap();
            e.put(3, b"three").unwrap();
        } // dropped without any explicit close
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(2), Some(b"two".to_vec()));
        assert_eq!(e.get(3), Some(b"three".to_vec()));
        assert_eq!(e.get(1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_batch_is_all_or_nothing_across_torn_tail() {
        let dir = tmpdir("atomic");
        {
            let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
            let mut b = WriteBatch::new();
            b.put(1, b"a".to_vec());
            b.put(2, b"b".to_vec());
            e.apply_batch(&b).unwrap();
        }
        // tear the tail: append half a frame, as a crash mid-batch would
        let wal = wal_path(&dir, 0);
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
            let mut partial = wal::frame(&wal::encode_ops(&[BatchOp::Put {
                key: 3,
                value: b"c".to_vec(),
            }]));
            partial.truncate(partial.len() - 3);
            f.write_all(&partial).unwrap();
        }
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.keys(), vec![1, 2], "torn batch must not half-apply");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rotates_generation_and_preserves_state() {
        let dir = tmpdir("compact");
        let opts = DiskOptions {
            fsync: FsyncPolicy::Always,
            compact_wal_bytes: 256,
        };
        let mut e = DiskEngine::open(&dir, opts.clone()).unwrap();
        for i in 0..50u64 {
            e.put(i, format!("value-{i}").as_bytes()).unwrap();
        }
        e.delete(7).unwrap();
        assert!(e.generation() > 0, "small budget must force compaction");
        let gen = e.generation();
        assert!(snap_path(&dir, gen).exists());
        assert!(wal_path(&dir, gen).exists());
        // older generations are gone
        assert!(!wal_path(&dir, 0).exists());
        drop(e);
        let e = DiskEngine::open(&dir, opts).unwrap();
        assert_eq!(e.len(), 49);
        assert_eq!(e.get(8), Some(b"value-8".to_vec()));
        assert_eq!(e.get(7), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_compact_then_more_writes_reopen_correctly() {
        let dir = tmpdir("compact2");
        let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
        e.put(1, b"a").unwrap();
        e.compact().unwrap();
        e.put(2, b"b").unwrap(); // lands in the new generation's WAL
        drop(e);
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.keys(), vec![1, 2]);
        assert_eq!(e.generation(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_tmp_file_is_ignored() {
        let dir = tmpdir("tmpfile");
        {
            let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
            e.put(1, b"a").unwrap();
        }
        // a crash before the rename leaves a .tmp; it must be discarded
        std::fs::write(dir.join("snap-1.tmp"), b"garbage").unwrap();
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.keys(), vec![1]);
        assert_eq!(e.generation(), 0);
        assert!(!dir.join("snap-1.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_after_rename_uses_new_snapshot() {
        let dir = tmpdir("postrename");
        {
            let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
            e.put(1, b"a").unwrap();
            e.put(2, b"b").unwrap();
            e.compact().unwrap();
        }
        // simulate dying right after the rename: delete the new WAL, put
        // the old one back — the snapshot alone must carry the state
        std::fs::remove_file(wal_path(&dir, 1)).unwrap();
        std::fs::write(wal_path(&dir, 0), b"").unwrap();
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.keys(), vec![1, 2]);
        assert_eq!(e.generation(), 1);
        assert!(!wal_path(&dir, 0).exists(), "stale wal removed on open");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_generation() {
        let dir = tmpdir("badsnap");
        {
            let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
            e.put(1, b"a").unwrap();
            e.compact().unwrap(); // generation 1: snap-1 holds key 1
            e.put(2, b"b").unwrap();
            e.compact().unwrap(); // generation 2: snap-2 holds keys 1,2
        }
        // mangle snap-2; recovery must fall back to snap-1 (+ its missing
        // wal, i.e. just key 1) rather than refuse to open
        let snap2 = snap_path(&dir, 2);
        let mut bytes = std::fs::read(&snap2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap2, &bytes).unwrap();
        // keep snap-1 around to fall back to
        let keep = snap_path(&dir, 1);
        assert!(!keep.exists(), "normal path deletes older snapshots");
        // recreate an older generation by hand: a snapshot is just frames
        let ops = vec![BatchOp::Put {
            key: 1,
            value: b"a".to_vec(),
        }];
        std::fs::write(&keep, wal::frame(&wal::encode_ops(&ops))).unwrap();
        let e = DiskEngine::open(&dir, opts_always()).unwrap();
        assert_eq!(e.keys(), vec![1], "fell back past the corrupt snapshot");
        assert_eq!(e.generation(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn destroy_removes_directory_and_engine_keeps_working_in_memory() {
        let dir = tmpdir("destroy");
        let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
        e.put(1, b"a").unwrap();
        e.destroy().unwrap();
        assert!(!dir.exists());
        assert!(e.is_empty());
        // post-destroy the engine is memory-only but functional
        e.put(2, b"b").unwrap();
        assert_eq!(e.get(2), Some(b"b".to_vec()));
        e.flush().unwrap();
        assert!(!dir.exists());
    }

    #[test]
    fn delete_of_absent_key_writes_nothing() {
        let dir = tmpdir("noop");
        let mut e = DiskEngine::open(&dir, opts_always()).unwrap();
        let before = std::fs::metadata(wal_path(&dir, 0)).unwrap().len();
        assert_eq!(e.delete(42).unwrap(), None);
        e.apply_batch(&WriteBatch::new()).unwrap();
        let after = std::fs::metadata(wal_path(&dir, 0)).unwrap().len();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
