//! Append-only CRC-framed write-ahead log.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload: payload_len bytes]
//! ```
//!
//! The payload is one serialized op batch: `op_count: u32` followed by
//! `op_count` tagged ops (`0 = Put{key u64, vlen u32, value}`,
//! `1 = Delete{key u64}`, `2 = Clear`). One frame == one atomic batch:
//! replay applies a frame only if its length, checksum, and payload all
//! validate, and *physically truncates* the log at the first frame that
//! does not — a torn tail from a crash mid-append can therefore never
//! half-apply a batch or poison later appends.
//!
//! Durability is group-committed: [`FsyncPolicy`] decides whether `append`
//! fsyncs every frame, every N frames, or never (leaving durability to the
//! OS page cache, as a benchmark baseline).

use crate::{BatchOp, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::time::Instant;

/// Frame header size: length + checksum words.
const FRAME_HEADER: usize = 8;

/// Upper bound accepted for a single frame payload (64 MiB). Anything
/// larger is treated as corruption: it exceeds what any bucket transfer
/// can legitimately produce and protects replay from absurd allocations.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// When `append` forces bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every frame: an acknowledged write is durable.
    Always,
    /// Group commit: fsync once every `n` frames (and on explicit flush).
    /// `EveryN(1)` is equivalent to `Always`.
    EveryN(u32),
    /// Never fsync from the engine; durability rides on the OS cache.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `never`, or a group size number.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            n => n.parse::<u32>().ok().filter(|&n| n > 0).map(|n| {
                if n == 1 {
                    FsyncPolicy::Always
                } else {
                    FsyncPolicy::EveryN(n)
                }
            }),
        }
    }
}

/// Serialize a batch of ops into one frame payload.
pub(crate) fn encode_ops(ops: &[BatchOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * ops.len() + 4);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            BatchOp::Put { key, value } => {
                out.push(0);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            BatchOp::Delete { key } => {
                out.push(1);
                out.extend_from_slice(&key.to_le_bytes());
            }
            BatchOp::Clear => out.push(2),
        }
    }
    out
}

/// Decode one frame payload back into ops. `None` on any malformation:
/// truncated fields, unknown tags, or trailing garbage.
pub(crate) fn decode_ops(payload: &[u8]) -> Option<Vec<BatchOp>> {
    let mut at = 0usize;
    let count = read_u32(payload, &mut at)? as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let tag = *payload.get(at)?;
        at += 1;
        match tag {
            0 => {
                let key = read_u64(payload, &mut at)?;
                let vlen = read_u32(payload, &mut at)? as usize;
                let value = payload.get(at..at.checked_add(vlen)?)?.to_vec();
                at += vlen;
                ops.push(BatchOp::Put { key, value });
            }
            1 => {
                let key = read_u64(payload, &mut at)?;
                ops.push(BatchOp::Delete { key });
            }
            2 => ops.push(BatchOp::Clear),
            _ => return None,
        }
    }
    if at != payload.len() {
        return None;
    }
    Some(ops)
}

fn read_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(*at..*at + 4)?.try_into().ok()?;
    *at += 4;
    Some(u32::from_le_bytes(bytes))
}

fn read_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(*at..*at + 8)?.try_into().ok()?;
    *at += 8;
    Some(u64::from_le_bytes(bytes))
}

/// Frame a payload: header + body, ready to append.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Walk frames in `data`, yielding each valid payload slice. Returns the
/// byte offset of the first invalid frame (== `data.len()` when the whole
/// buffer parses).
pub(crate) fn walk_frames<'a>(data: &'a [u8], mut on_payload: impl FnMut(&'a [u8])) -> usize {
    let mut at = 0usize;
    loop {
        let Some(header) = data.get(at..at + FRAME_HEADER) else {
            return at; // clean EOF or torn header
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let want = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_PAYLOAD {
            return at;
        }
        let body_start = at + FRAME_HEADER;
        let Some(payload) = data.get(body_start..body_start + len as usize) else {
            return at; // torn payload
        };
        if crc32(payload) != want {
            return at;
        }
        on_payload(payload);
        at = body_start + len as usize;
    }
}

/// Statistics from one [`replay`] pass, surfaced to obs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ReplayStats {
    /// Valid frames applied.
    pub frames: u64,
    /// Bytes discarded past the first invalid frame (0 for a clean log).
    pub truncated: u64,
}

/// Read `path`, decode every valid frame in order, and truncate the file
/// at the first invalid frame so subsequent appends extend a clean log.
/// A missing file replays as empty.
pub(crate) fn replay(
    path: &Path,
    mut on_batch: impl FnMut(Vec<BatchOp>),
) -> Result<ReplayStats, StorageError> {
    let t0 = Instant::now();
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StorageError::io("wal read", e)),
    };
    let mut stats = ReplayStats::default();
    let good = walk_frames(&data, |payload| {
        // A checksummed-but-undecodable payload can't come from our own
        // writer; skip it rather than abort replay of later good frames.
        if let Some(ops) = decode_ops(payload) {
            stats.frames += 1;
            on_batch(ops);
        }
    });
    if good < data.len() {
        stats.truncated = (data.len() - good) as u64;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io("wal truncate open", e))?;
        file.set_len(good as u64)
            .map_err(|e| StorageError::io("wal truncate", e))?;
        file.sync_all()
            .map_err(|e| StorageError::io("wal truncate sync", e))?;
    }
    sdds_obs::counter("storage.wal_replayed_frames").add(stats.frames);
    sdds_obs::counter("storage.wal_truncated_bytes").add(stats.truncated);
    sdds_obs::histogram("storage.replay_seconds").observe_duration(t0.elapsed());
    Ok(stats)
}

/// Strictly read a frame file (used for snapshots): every byte must parse,
/// otherwise the whole file is rejected.
pub(crate) fn read_strict(path: &Path) -> Result<Vec<Vec<BatchOp>>, StorageError> {
    let mut file = File::open(path).map_err(|e| StorageError::io("snapshot open", e))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| StorageError::io("snapshot read", e))?;
    let mut batches = Vec::new();
    let mut bad_payload = false;
    let good = walk_frames(&data, |payload| match decode_ops(payload) {
        Some(ops) => batches.push(ops),
        None => bad_payload = true,
    });
    if good != data.len() || bad_payload {
        return Err(StorageError::Corruption(format!(
            "snapshot {} invalid at byte {good} of {}",
            path.display(),
            data.len()
        )));
    }
    Ok(batches)
}

/// The append side of the log: owns the file handle and the group-commit
/// bookkeeping.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    unsynced: u32,
    bytes: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Open `path` for appending (creating it if absent).
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<WalWriter, StorageError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StorageError::io("wal open", e))?;
        let bytes = file
            .metadata()
            .map_err(|e| StorageError::io("wal metadata", e))?
            .len();
        Ok(WalWriter {
            file,
            policy,
            unsynced: 0,
            bytes,
            fsyncs: 0,
        })
    }

    /// Append one batch as a single frame, honoring the fsync policy.
    pub fn append(&mut self, ops: &[BatchOp]) -> Result<(), StorageError> {
        let t0 = Instant::now();
        let framed = frame(&encode_ops(ops));
        self.file
            .write_all(&framed)
            .map_err(|e| StorageError::io("wal append", e))?;
        self.bytes += framed.len() as u64;
        sdds_obs::counter("storage.wal_appends").inc();
        sdds_obs::histogram("storage.append_seconds").observe_duration(t0.elapsed());
        self.unsynced += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Force buffered frames to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let t0 = Instant::now();
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("wal fsync", e))?;
        self.unsynced = 0;
        self.fsyncs += 1;
        sdds_obs::counter("storage.wal_fsyncs").inc();
        sdds_obs::histogram("storage.fsync_seconds").observe_duration(t0.elapsed());
        Ok(())
    }

    /// Current log size in bytes (compaction trigger input).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// fsyncs issued by this writer since open (group-commit accounting).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdds-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn put(key: u64, v: &[u8]) -> BatchOp {
        BatchOp::Put {
            key,
            value: v.to_vec(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ops_roundtrip_through_payload() {
        let ops = vec![
            put(7, b"hello"),
            BatchOp::Delete { key: 9 },
            BatchOp::Clear,
            put(u64::MAX, b""),
        ];
        assert_eq!(decode_ops(&encode_ops(&ops)).unwrap(), ops);
        // malformed payloads are rejected, not panicked on
        assert!(decode_ops(&[]).is_none());
        assert!(decode_ops(&[9, 9, 9]).is_none());
        let mut trailing = encode_ops(&ops);
        trailing.push(0);
        assert!(decode_ops(&trailing).is_none());
    }

    #[test]
    fn append_then_replay_recovers_batches() {
        let path = tmpfile("roundtrip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        w.append(&[put(1, b"a"), put(2, b"b")]).unwrap();
        w.append(&[BatchOp::Delete { key: 1 }]).unwrap();
        drop(w);
        let mut batches = Vec::new();
        let stats = replay(&path, |b| batches.push(b)).unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.truncated, 0);
        assert_eq!(batches[0], vec![put(1, b"a"), put(2, b"b")]);
        assert_eq!(batches[1], vec![BatchOp::Delete { key: 1 }]);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let path = tmpfile("torn");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        w.append(&[put(1, b"a")]).unwrap();
        w.append(&[put(2, b"b")]).unwrap();
        drop(w);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // simulate a crash mid-append: a torn header + garbage
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 5]).unwrap();
        }
        let mut batches = Vec::new();
        let stats = replay(&path, |b| batches.push(b)).unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.truncated, 5);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // and the log accepts appends after repair
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        w.append(&[put(3, b"c")]).unwrap();
        drop(w);
        let mut again = Vec::new();
        let stats = replay(&path, |b| again.push(b)).unwrap();
        assert_eq!(stats.frames, 3);
        assert_eq!(again[2], vec![put(3, b"c")]);
    }

    #[test]
    fn corrupt_crc_mid_log_discards_that_frame_and_everything_after() {
        let path = tmpfile("midcrc");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always).unwrap();
        w.append(&[put(1, b"aaaa")]).unwrap();
        let first_frame_end = w.bytes();
        w.append(&[put(2, b"bbbb")]).unwrap();
        w.append(&[put(3, b"cccc")]).unwrap();
        drop(w);
        // flip one payload byte inside the second frame
        let mut data = std::fs::read(&path).unwrap();
        let victim = first_frame_end as usize + FRAME_HEADER + 2;
        data[victim] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let mut batches = Vec::new();
        let stats = replay(&path, |b| batches.push(b)).unwrap();
        assert_eq!(stats.frames, 1);
        assert_eq!(batches, vec![vec![put(1, b"aaaa")]]);
        assert!(stats.truncated > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            first_frame_end,
            "log must be cut back to the last good frame"
        );
    }

    #[test]
    fn group_commit_policy_counts_fsyncs() {
        let path = tmpfile("group");
        let mut w = WalWriter::open(&path, FsyncPolicy::EveryN(4)).unwrap();
        for i in 0..7 {
            w.append(&[put(i, b"x")]).unwrap();
        }
        assert_eq!(w.fsyncs(), 1, "7 appends at N=4 -> one fsync");
        w.sync().unwrap();
        assert_eq!(w.fsyncs(), 2);
        w.sync().unwrap(); // idempotent when nothing is pending
        assert_eq!(w.fsyncs(), 2);
        let mut never = WalWriter::open(&path, FsyncPolicy::Never).unwrap();
        never.append(&[put(99, b"x")]).unwrap();
        assert_eq!(never.fsyncs(), 0);
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = tmpfile("missing");
        let stats = replay(&path, |_| {}).unwrap();
        assert_eq!(stats, ReplayStats::default());
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("1"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("64"), Some(FsyncPolicy::EveryN(64)));
        assert_eq!(FsyncPolicy::parse("0"), None);
        assert_eq!(FsyncPolicy::parse("banana"), None);
    }
}
