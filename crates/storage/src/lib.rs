//! Pluggable per-bucket storage engines for the SDDS.
//!
//! A bucket site owns exactly one [`StorageEngine`]. The trait is the
//! narrow waist between LH\*RS bucket logic and persistence: point reads,
//! ordered iteration, and — crucially — *atomic write batches*, so that a
//! split/merge `TransferBatch` or a recovery `Adopt` either lands entirely
//! or not at all across a crash.
//!
//! Two backends ship:
//!
//! * [`MemEngine`] — the original in-memory `BTreeMap`, refactored onto the
//!   trait with zero behavior change (and zero I/O failure modes).
//! * [`DiskEngine`] — a from-scratch, std-only durable backend: an
//!   append-only CRC-framed write-ahead log with group-commit fsync
//!   batching, periodic snapshots, crash-recovery replay that truncates at
//!   the first corrupt frame, and generational segment compaction.
//!
//! Engines are deliberately *not* `Sync`: each bucket thread owns its
//! engine exclusively, exactly like the map it replaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod wal;

pub use disk::{DiskEngine, DiskOptions};
pub use wal::FsyncPolicy;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Error surface of a storage engine. The in-memory backend never returns
/// one; the disk backend maps I/O and corruption failures here.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure, tagged with the operation that hit it.
    Io {
        /// What the engine was doing ("wal append", "snapshot rename", ...).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// On-disk bytes failed validation beyond what replay can repair.
    Corruption(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, source } => write!(f, "storage i/o during {op}: {source}"),
            StorageError::Corruption(detail) => write!(f, "storage corruption: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Corruption(_) => None,
        }
    }
}

impl StorageError {
    pub(crate) fn io(op: &'static str, source: std::io::Error) -> Self {
        StorageError::Io { op, source }
    }
}

/// One logical mutation inside a [`WriteBatch`] (and one WAL frame entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key`.
    Put {
        /// Record key.
        key: u64,
        /// Record body (opaque encrypted bytes).
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Delete {
        /// Record key.
        key: u64,
    },
    /// Drop every record. Used by recovery `Adopt` as its first op so the
    /// adopted image replaces — never merges with — stale local state.
    Clear,
}

/// An ordered group of mutations applied atomically: the disk backend
/// writes the whole batch as a single CRC-framed WAL record, so replay
/// sees all of it or none of it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// A new, empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insert/overwrite.
    pub fn put(&mut self, key: u64, value: Vec<u8>) {
        self.ops.push(BatchOp::Put { key, value });
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: u64) {
        self.ops.push(BatchOp::Delete { key });
    }

    /// Queue a clear-all (subsequent ops in the batch still apply).
    pub fn clear_all(&mut self) {
        self.ops.push(BatchOp::Clear);
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued (applying is then a no-op).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued ops, in application order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Consume the batch, yielding its ops.
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }
}

impl From<Vec<BatchOp>> for WriteBatch {
    fn from(ops: Vec<BatchOp>) -> Self {
        WriteBatch { ops }
    }
}

/// Apply a slice of ops to a map view, in order. Shared by both backends
/// and by WAL replay so the semantics cannot drift.
pub(crate) fn apply_ops(map: &mut BTreeMap<u64, Vec<u8>>, ops: &[BatchOp]) {
    for op in ops {
        match op {
            BatchOp::Put { key, value } => {
                map.insert(*key, value.clone());
            }
            BatchOp::Delete { key } => {
                map.remove(key);
            }
            BatchOp::Clear => map.clear(),
        }
    }
}

/// The storage interface a bucket runs against.
///
/// Reads are infallible (both backends serve reads from an in-memory
/// image); writes are fallible because the disk backend may hit I/O
/// errors. `put`/`delete` return the previous value so callers can keep
/// posting-index and parity bookkeeping exact on overwrites.
pub trait StorageEngine: Send {
    /// Borrow the value stored under `key`, if any. Both backends keep an
    /// in-memory image, so reads never copy.
    fn get_ref(&self, key: u64) -> Option<&[u8]>;

    /// Fetch an owned copy of the value stored under `key`, if any.
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.get_ref(key).map(<[u8]>::to_vec)
    }

    /// True when `key` is present.
    fn contains(&self, key: u64) -> bool {
        self.get_ref(key).is_some()
    }

    /// Number of records.
    fn len(&self) -> usize;

    /// True when no records are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys in ascending order.
    fn keys(&self) -> Vec<u64>;

    /// Visit every record in ascending key order.
    fn for_each(&self, f: &mut dyn FnMut(u64, &[u8]));

    /// Visit records with `lo <= key <= hi` in ascending key order.
    fn range_scan(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, &[u8]));

    /// Insert or overwrite; returns the previous value if any.
    fn put(&mut self, key: u64, value: &[u8]) -> Result<Option<Vec<u8>>, StorageError>;

    /// Delete; returns the removed value if any.
    fn delete(&mut self, key: u64) -> Result<Option<Vec<u8>>, StorageError>;

    /// Apply every op in `batch` atomically with respect to crashes.
    /// Borrows the batch so callers can keep using its staged values for
    /// post-write bookkeeping instead of holding a second owned copy.
    fn apply_batch(&mut self, batch: &WriteBatch) -> Result<(), StorageError>;

    /// Force everything written so far to stable storage.
    fn flush(&mut self) -> Result<(), StorageError>;

    /// Irrevocably discard all state, including on-disk files. The engine
    /// stays usable afterwards but is empty and memory-only.
    fn destroy(&mut self) -> Result<(), StorageError>;
}

/// The in-memory backend: the bucket's original `BTreeMap`, verbatim.
#[derive(Debug, Default)]
pub struct MemEngine {
    map: BTreeMap<u64, Vec<u8>>,
}

impl MemEngine {
    /// A fresh, empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageEngine for MemEngine {
    fn get_ref(&self, key: u64) -> Option<&[u8]> {
        self.map.get(&key).map(Vec::as_slice)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn keys(&self) -> Vec<u64> {
        self.map.keys().copied().collect()
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, &[u8])) {
        for (k, v) in &self.map {
            f(*k, v);
        }
    }

    fn range_scan(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, &[u8])) {
        for (k, v) in self.map.range(lo..=hi) {
            f(*k, v);
        }
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.map.insert(key, value.to_vec()))
    }

    fn delete(&mut self, key: u64) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.map.remove(&key))
    }

    fn apply_batch(&mut self, batch: &WriteBatch) -> Result<(), StorageError> {
        apply_ops(&mut self.map, batch.ops());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn destroy(&mut self) -> Result<(), StorageError> {
        self.map.clear();
        Ok(())
    }
}

/// Which backend a cluster opens for its buckets, plus where.
#[derive(Debug, Clone, Default)]
pub enum StorageConfig {
    /// Volatile in-memory buckets (the original behavior).
    #[default]
    Mem,
    /// Durable on-disk buckets under `data_dir/bucket-<addr>/`.
    Disk {
        /// Root directory holding one subdirectory per bucket.
        data_dir: PathBuf,
        /// WAL/snapshot tuning knobs.
        options: DiskOptions,
    },
}

impl StorageConfig {
    /// Disk config with default options.
    pub fn disk(data_dir: impl Into<PathBuf>) -> Self {
        StorageConfig::Disk {
            data_dir: data_dir.into(),
            options: DiskOptions::default(),
        }
    }

    /// Disk config with explicit options.
    pub fn disk_with(data_dir: impl Into<PathBuf>, options: DiskOptions) -> Self {
        StorageConfig::Disk {
            data_dir: data_dir.into(),
            options,
        }
    }

    /// True for the durable backend.
    pub fn is_disk(&self) -> bool {
        matches!(self, StorageConfig::Disk { .. })
    }

    /// The directory bucket `addr` lives in (disk only).
    pub fn bucket_dir(&self, addr: u64) -> Option<PathBuf> {
        match self {
            StorageConfig::Mem => None,
            StorageConfig::Disk { data_dir, .. } => Some(data_dir.join(format!("bucket-{addr}"))),
        }
    }

    /// Open (creating or recovering as needed) the engine for bucket `addr`.
    pub fn open_bucket(&self, addr: u64) -> Result<Box<dyn StorageEngine>, StorageError> {
        match self {
            StorageConfig::Mem => Ok(Box::new(MemEngine::new())),
            StorageConfig::Disk { data_dir, options } => {
                let dir = data_dir.join(format!("bucket-{addr}"));
                Ok(Box::new(DiskEngine::open(&dir, options.clone())?))
            }
        }
    }

    /// Bucket addresses that already have on-disk state (ascending).
    /// Empty for the in-memory backend or a data dir that does not exist.
    pub fn existing_bucket_addrs(&self) -> Result<Vec<u64>, StorageError> {
        let data_dir = match self {
            StorageConfig::Mem => return Ok(Vec::new()),
            StorageConfig::Disk { data_dir, .. } => data_dir,
        };
        list_bucket_addrs(data_dir)
    }
}

/// Scan `data_dir` for `bucket-<addr>` subdirectories.
fn list_bucket_addrs(data_dir: &Path) -> Result<Vec<u64>, StorageError> {
    if !data_dir.exists() {
        return Ok(Vec::new());
    }
    let entries = std::fs::read_dir(data_dir).map_err(|e| StorageError::io("read data dir", e))?;
    let mut addrs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io("read data dir entry", e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("bucket-") {
            if let Ok(addr) = rest.parse::<u64>() {
                addrs.push(addr);
            }
        }
    }
    addrs.sort_unstable();
    Ok(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdds-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_engine_roundtrip_and_batch() {
        let mut e = MemEngine::new();
        assert_eq!(e.put(3, b"c").unwrap(), None);
        assert_eq!(e.put(1, b"a").unwrap(), None);
        assert_eq!(e.put(1, b"A").unwrap(), Some(b"a".to_vec()));
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(1), Some(b"A".to_vec()));
        assert_eq!(e.keys(), vec![1, 3]);
        let mut seen = Vec::new();
        e.for_each(&mut |k, v| seen.push((k, v.to_vec())));
        assert_eq!(seen, vec![(1, b"A".to_vec()), (3, b"c".to_vec())]);
        let mut ranged = Vec::new();
        e.range_scan(2, 9, &mut |k, _| ranged.push(k));
        assert_eq!(ranged, vec![3]);

        let mut batch = WriteBatch::new();
        batch.clear_all();
        batch.put(7, b"g".to_vec());
        batch.delete(7);
        batch.put(8, b"h".to_vec());
        e.apply_batch(&batch).unwrap();
        assert_eq!(e.keys(), vec![8]);
        e.destroy().unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn storage_config_opens_and_lists_buckets() {
        let dir = tmpdir("cfg");
        let cfg = StorageConfig::disk(&dir);
        assert!(cfg.is_disk());
        assert_eq!(cfg.existing_bucket_addrs().unwrap(), Vec::<u64>::new());
        {
            let mut b0 = cfg.open_bucket(0).unwrap();
            b0.put(10, b"x").unwrap();
            b0.flush().unwrap();
            let mut b3 = cfg.open_bucket(3).unwrap();
            b3.put(11, b"y").unwrap();
            b3.flush().unwrap();
        }
        assert_eq!(cfg.existing_bucket_addrs().unwrap(), vec![0, 3]);
        let reopened = cfg.open_bucket(0).unwrap();
        assert_eq!(reopened.get(10), Some(b"x".to_vec()));
        assert!(StorageConfig::Mem
            .existing_bucket_addrs()
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
