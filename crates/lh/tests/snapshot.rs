//! Snapshot / restore: an LH\* file survives a full process restart.

use sdds_lh::{ClusterConfig, FileSnapshot, LhCluster, ParityConfig};

fn populated_cluster(n: u64) -> LhCluster {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 16,
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    for key in 0..n {
        client
            .insert(key, format!("value {key}").into_bytes())
            .unwrap();
    }
    cluster
}

#[test]
fn snapshot_captures_everything() {
    let cluster = populated_cluster(300);
    let snap = cluster.snapshot().unwrap();
    assert_eq!(snap.record_count(), 300);
    assert_eq!(snap.buckets.len() as u64, (1u64 << snap.level) + snap.split);
    // bucket contents are disjoint and address-ordered
    let mut all_keys: Vec<u64> = snap
        .buckets
        .iter()
        .flat_map(|b| b.records.iter().map(|(k, _)| *k))
        .collect();
    all_keys.sort_unstable();
    assert_eq!(all_keys, (0..300).collect::<Vec<u64>>());
    cluster.shutdown();
}

#[test]
fn restore_reproduces_the_file() {
    let cluster = populated_cluster(250);
    let snap = cluster.snapshot().unwrap();
    cluster.shutdown();

    let restored = LhCluster::restore(
        ClusterConfig {
            bucket_capacity: 16,
            ..ClusterConfig::default()
        },
        &snap,
    )
    .unwrap();
    let client = restored.client();
    // same extent
    assert_eq!(client.refresh_image().unwrap(), snap.buckets.len() as u64);
    // every record intact
    for key in 0..250u64 {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(format!("value {key}").into_bytes()),
            "key {key}"
        );
    }
    // and the file keeps working: grow it further
    for key in 1000..1100u64 {
        client.insert(key, vec![1]).unwrap();
    }
    assert_eq!(client.lookup(1050).unwrap(), Some(vec![1]));
    restored.shutdown();
}

#[test]
fn snapshot_roundtrips_through_json() {
    let cluster = populated_cluster(100);
    let snap = cluster.snapshot().unwrap();
    cluster.shutdown();
    let json = serde_json::to_string(&snap).unwrap();
    let back: FileSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn restore_can_enable_parity_on_old_data() {
    // snapshot a plain file, restore into a parity-enabled cluster: the
    // replay rebuilds parity, so the restored file tolerates bucket loss.
    let cluster = populated_cluster(120);
    let snap = cluster.snapshot().unwrap();
    cluster.shutdown();

    let restored = LhCluster::restore(
        ClusterConfig {
            bucket_capacity: 16,
            parity: Some(ParityConfig {
                group_size: 2,
                parity_count: 1,
                slot_size: 64,
            }),
            ..ClusterConfig::default()
        },
        &snap,
    )
    .unwrap();
    let client = restored.client();
    // wait for replay + parity streams to drain
    std::thread::sleep(std::time::Duration::from_millis(300));
    restored.kill_bucket(1);
    restored.recover_bucket(1).unwrap();
    for key in 0..120u64 {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(format!("value {key}").into_bytes()),
            "key {key} after restore + crash + recovery"
        );
    }
    restored.shutdown();
}
