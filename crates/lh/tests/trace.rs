//! Causal tracing across the LH\* protocol: forwarded requests chain one
//! span per hop under the client's span, and client retransmissions over a
//! lossy network stay inside the operation's single trace.

use sdds_lh::{ClusterConfig, LhCluster};
use sdds_obs::trace::{self, SpanRecord};
use std::collections::{HashMap, HashSet};

/// Spans of the traces rooted by `root_name`, grouped per trace.
fn trees_rooted_at(spans: &[SpanRecord], root_name: &str) -> Vec<Vec<SpanRecord>> {
    let roots: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == root_name && s.parent_span_id == 0)
        .collect();
    roots
        .iter()
        .map(|root| {
            spans
                .iter()
                .filter(|s| s.trace_id == root.trace_id)
                .copied()
                .collect()
        })
        .collect()
}

/// Asserts every span of `tree` parent-links (transitively) to its root.
fn assert_connected(tree: &[SpanRecord]) {
    let by_id: HashMap<u64, &SpanRecord> = tree.iter().map(|s| (s.span_id, s)).collect();
    for span in tree {
        let mut cursor = span;
        let mut steps = 0;
        while cursor.parent_span_id != 0 {
            cursor = by_id
                .get(&cursor.parent_span_id)
                .unwrap_or_else(|| panic!("span {:?} has a dangling parent", span.name));
            steps += 1;
            assert!(steps <= tree.len(), "parent cycle at {:?}", span.name);
        }
    }
}

/// One combined test: the flight recorder is process-global, and parallel
/// `#[test]` functions draining it would steal each other's spans.
#[test]
fn forwards_and_retries_stay_inside_one_trace() {
    // Phase 1 — forward chains. Grow the file, then read it back through a
    // brand-new client whose primordial image mis-addresses most keys, so
    // requests hop bucket-to-bucket before landing.
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 8,
        ..ClusterConfig::default()
    });
    // Neutralize the `trace` feature's on-by-default gate for the load
    // phase, so the drained set holds exactly the lookup traces.
    trace::set_tracing(false);
    let writer = cluster.client();
    for key in 0..300u64 {
        writer.insert(key, vec![key as u8]).unwrap();
    }
    let reader = cluster.client();
    let _ = trace::drain_spans();
    trace::set_tracing(true);
    for key in 0..300u64 {
        assert_eq!(reader.lookup(key).unwrap(), Some(vec![key as u8]));
    }
    trace::set_tracing(false);
    cluster.shutdown();
    let spans = trace::drain_spans();
    assert!(
        reader.hop_count() > 0,
        "stale image should have caused forwards"
    );
    let trees = trees_rooted_at(&spans, "lh.request");
    assert_eq!(trees.len(), 300, "one trace per lookup");
    let mut chained = 0;
    for tree in &trees {
        assert_connected(tree);
        let root_id = tree
            .iter()
            .find(|s| s.parent_span_id == 0)
            .expect("root")
            .span_id;
        let hops: Vec<&SpanRecord> = tree.iter().filter(|s| s.name == "bucket.request").collect();
        assert!(!hops.is_empty(), "every lookup reaches a bucket");
        // A forwarded request shows up as a bucket span parented under
        // another bucket span rather than under the client.
        if hops.len() > 1 {
            let hop_ids: HashSet<u64> = hops.iter().map(|s| s.span_id).collect();
            assert!(
                hops.iter()
                    .any(|s| s.parent_span_id != root_id && hop_ids.contains(&s.parent_span_id)),
                "multi-hop trace lacks a bucket→bucket parent link"
            );
            chained += 1;
        }
    }
    assert!(chained > 0, "no forwarded request produced a hop chain");

    // Phase 2 — retries. Messages vanish; the client retransmits under the
    // *same* open span, so late/duplicate bucket spans still parent into
    // the one trace and no extra roots appear.
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 100_000,
        net: sdds_net::NetConfig {
            drop_probability: 0.05,
            fault_seed: 11,
            ..Default::default()
        },
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    client.set_timeout(std::time::Duration::from_millis(1000));
    for key in 0..60u64 {
        client.insert(key, vec![key as u8]).unwrap();
    }
    let _ = trace::drain_spans();
    trace::set_tracing(true);
    for key in 0..60u64 {
        assert_eq!(client.lookup(key).unwrap(), Some(vec![key as u8]));
    }
    trace::set_tracing(false);
    let dropped = cluster.network().stats().dropped();
    cluster.shutdown();
    let spans = trace::drain_spans();
    assert!(dropped > 0, "fault injection should have dropped messages");
    let trees = trees_rooted_at(&spans, "lh.request");
    assert_eq!(
        trees.len(),
        60,
        "retries reuse the operation's trace instead of opening new roots"
    );
    for tree in &trees {
        assert_connected(tree);
        assert!(tree.iter().any(|s| s.name == "bucket.request"));
    }
    // Dropped envelopes that carried a context leave a net.drop event
    // inside an existing trace, never a fresh root.
    let trace_ids: HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    for drop_event in spans.iter().filter(|s| s.name == "net.drop") {
        assert!(trace_ids.contains(&drop_event.trace_id));
        assert_ne!(drop_event.parent_span_id, 0);
    }
}
