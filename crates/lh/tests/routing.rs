//! The LH\* routing theorem, checked exhaustively and by property test:
//! starting from ANY address a client with a not-ahead image could compute,
//! the forwarding rule ("re-address with the receiving bucket's level")
//! reaches the key's home bucket in at most two hops.
//!
//! This is the paper's performance foundation — "constant speed operations
//! …, independent of the number of nodes" (§1) — verified as pure
//! addressing logic, independent of threads and channels.

use proptest::prelude::*;
use sdds_lh::{address, ClientImage};

/// Level of bucket `addr` in a file at `(level, split)`.
fn bucket_level(addr: u64, level: u8, split: u64) -> u8 {
    if addr < split || addr >= (1 << level) {
        level + 1
    } else {
        level
    }
}

fn h(key: u64, level: u8) -> u64 {
    key & ((1u64 << level) - 1)
}

/// Simulates the bucket-side forwarding rule (A1 of \[LNS96\], as
/// implemented by `BucketState::handle_request`); returns (home, hops).
fn route(key: u64, mut addr: u64, level: u8, split: u64) -> (u64, u32) {
    let extent = (1u64 << level) + split;
    let mut hops = 0;
    loop {
        let j = bucket_level(addr, level, split);
        let mut target = h(key, j);
        if target != addr && j > 0 {
            let conservative = h(key, j - 1);
            if conservative > addr && conservative < target {
                target = conservative;
            }
        }
        if target == addr {
            return (addr, hops);
        }
        assert!(target < extent, "forwarded to nonexistent bucket {target}");
        addr = target;
        hops += 1;
        assert!(hops <= 8, "routing diverged");
    }
}

#[test]
fn exhaustive_two_hop_bound_small_files() {
    for level in 0..6u8 {
        for split in 0..(1u64 << level) {
            let extent = (1u64 << level) + split;
            for key in 0..512u64 {
                let home = address(key, level, split);
                // from every client-computable start address
                for img_level in 0..=level {
                    for img_split in 0..(1u64 << img_level) {
                        let img = ClientImage {
                            level: img_level,
                            split: img_split,
                        };
                        if img.extent() > extent {
                            continue; // image may never be ahead of the file
                        }
                        let start = img.address(key);
                        let (reached, hops) = route(key, start, level, split);
                        assert_eq!(
                            reached, home,
                            "key {key} from {start} in file ({level},{split})"
                        );
                        assert!(
                            hops <= 2,
                            "LH* bound violated: {hops} hops for key {key} from \
                             {start} in file ({level},{split})"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn two_hop_bound_large_files(
        key in any::<u64>(),
        level in 6u8..20,
        split_frac in 0.0f64..1.0,
        img_level_back in 0u8..6,
        img_split_frac in 0.0f64..1.0,
    ) {
        let split = ((1u64 << level) as f64 * split_frac) as u64 % (1u64 << level);
        let extent = (1u64 << level) + split;
        let home = address(key, level, split);
        // a stale image up to img_level_back levels behind
        let img_level = level - img_level_back;
        let img_split =
            ((1u64 << img_level) as f64 * img_split_frac) as u64 % (1u64 << img_level);
        let img = ClientImage { level: img_level, split: img_split };
        prop_assume!(img.extent() <= extent);
        let start = img.address(key);
        let (reached, hops) = route(key, start, level, split);
        prop_assert_eq!(reached, home);
        prop_assert!(hops <= 2, "{} hops", hops);
    }

    #[test]
    fn home_bucket_accepts_and_every_bucket_reaches_it(
        key in any::<u64>(),
        level in 1u8..16,
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((1u64 << level) as f64 * split_frac) as u64 % (1u64 << level);
        let home = address(key, level, split);
        // the home bucket serves without forwarding
        let (reached, hops) = route(key, home, level, split);
        prop_assert_eq!(reached, home);
        prop_assert_eq!(hops, 0);
    }
}
