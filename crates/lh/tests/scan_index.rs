//! Posting-index consistency at the LH\* layer: scans answered from the
//! per-bucket inverted index must be byte-identical to a linear sweep,
//! through every record-movement path (splits, merges, overwrites,
//! deletes, recovery adoption).

use sdds_lh::{ClusterConfig, LhClient, LhCluster, ParityConfig, PreparedQuery, ScanFilter};
use std::sync::Arc;

const W: usize = 2;

/// Element-equality filter over `W`-byte elements: the query is a single
/// element, and a record matches when its body holds that element at any
/// aligned offset. Declares a posting index of width `W`, so indexed
/// buckets answer probes instead of sweeping.
#[derive(Debug, Clone, Copy)]
struct ElementFilter;

fn element_match(value: &[u8], query: &[u8]) -> bool {
    query.len() == W && value.len().is_multiple_of(W) && value.chunks_exact(W).any(|e| e == query)
}

struct PreparedElement {
    query: Vec<u8>,
    probes: Vec<Vec<u8>>,
}

impl PreparedQuery for PreparedElement {
    fn matches(&self, _key: u64, value: &[u8]) -> bool {
        element_match(value, &self.query)
    }
    fn probes(&self) -> Option<&[Vec<u8>]> {
        Some(&self.probes)
    }
}

impl ScanFilter for ElementFilter {
    fn matches(&self, _key: u64, value: &[u8], query: &[u8]) -> bool {
        element_match(value, query)
    }
    fn prepare<'q>(&'q self, query: &'q [u8]) -> Box<dyn PreparedQuery + 'q> {
        let probes = if query.len() == W {
            vec![query.to_vec()]
        } else {
            Vec::new() // malformed queries match nothing
        };
        Box::new(PreparedElement {
            query: query.to_vec(),
            probes,
        })
    }
    fn index_element_bytes(&self) -> Option<usize> {
        Some(W)
    }
}

fn indexed_config(capacity: usize) -> ClusterConfig {
    ClusterConfig {
        bucket_capacity: capacity,
        filter: Arc::new(ElementFilter),
        ..ClusterConfig::default()
    }
}

/// A record body: three elements derived from the key, so different
/// queries select overlapping but distinct subsets of the file.
fn body(key: u64) -> Vec<u8> {
    vec![
        (key % 17) as u8,
        0xA0,
        (key % 5) as u8,
        0xB0,
        ((key * 31) % 23) as u8,
        0xC0,
    ]
}

fn query(b0: u8, b1: u8) -> Vec<u8> {
    vec![b0, b1]
}

/// The linear oracle over the client's view of the file: which of the
/// inserted keys should the scan report.
fn oracle(keys: &[u64], q: &[u8]) -> Vec<u64> {
    keys.iter()
        .copied()
        .filter(|&k| element_match(&body(k), q))
        .collect()
}

fn scan_keys(client: &LhClient, q: &[u8]) -> Vec<u64> {
    let mut out: Vec<u64> = client
        .scan(q, true)
        .unwrap()
        .into_iter()
        .map(|m| m.key)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn indexed_scan_matches_linear_oracle_through_splits() {
    let probes0 = sdds_obs::counter("lh.scan_index_probes").get();
    let fallback0 = sdds_obs::counter("lh.scan_fallback_linear").get();
    let cluster = LhCluster::start(indexed_config(8));
    let client = cluster.client();
    let keys: Vec<u64> = (0..400).collect();
    for &k in &keys {
        client.insert(k, body(k)).unwrap();
    }
    assert!(cluster.num_buckets() > 4, "the load must force splits");
    for q in [query(3, 0xA0), query(0, 0xB0), query(7, 0xC0), query(9, 9)] {
        assert_eq!(scan_keys(&client, &q), oracle(&keys, &q), "query {q:?}");
    }
    // full-value scans agree with the stored bodies
    for m in client.scan(&query(3, 0xA0), false).unwrap() {
        assert_eq!(m.value, Some(body(m.key)));
    }
    assert!(
        sdds_obs::counter("lh.scan_index_probes").get() > probes0,
        "scans must go through the posting index"
    );
    assert_eq!(
        sdds_obs::counter("lh.scan_fallback_linear").get(),
        fallback0,
        "no indexed scan may fall back to a linear sweep"
    );
    cluster.shutdown();
}

#[test]
fn deletes_and_merges_leave_no_stale_postings() {
    let cluster = LhCluster::start(indexed_config(8));
    let client = cluster.client();
    let all: Vec<u64> = (0..300).collect();
    for &k in &all {
        client.insert(k, body(k)).unwrap();
    }
    let grown = cluster.num_buckets();
    assert!(grown > 4);
    // delete enough to trigger underflow merges
    let keep: Vec<u64> = all.iter().copied().filter(|k| k % 10 == 0).collect();
    for &k in &all {
        if !keep.contains(&k) {
            assert!(client.delete(k).unwrap());
        }
    }
    for q in [query(3, 0xA0), query(0, 0xB0), query(7, 0xC0)] {
        assert_eq!(
            scan_keys(&client, &q),
            oracle(&keep, &q),
            "stale postings after delete/merge for query {q:?}"
        );
    }
    cluster.shutdown();
}

#[test]
fn overwrites_replace_postings() {
    let cluster = LhCluster::start(indexed_config(64));
    let client = cluster.client();
    client.insert(1, vec![0x11, 0x22]).unwrap();
    assert_eq!(scan_keys(&client, &[0x11, 0x22]), vec![1]);
    // overwrite with a different body: old element must stop matching
    client.insert(1, vec![0x33, 0x44]).unwrap();
    assert!(scan_keys(&client, &[0x11, 0x22]).is_empty());
    assert_eq!(scan_keys(&client, &[0x33, 0x44]), vec![1]);
    cluster.shutdown();
}

#[test]
fn recovery_adoption_rebuilds_the_index() {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 16,
        parity: Some(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 64,
        }),
        filter: Arc::new(ElementFilter),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    let keys: Vec<u64> = (0..120).collect();
    for &k in &keys {
        client.insert(k, body(k)).unwrap();
    }
    let q = query(3, 0xA0);
    let expect = oracle(&keys, &q);
    assert_eq!(scan_keys(&client, &q), expect);
    // kill a bucket and let parity recovery repopulate it via Adopt
    cluster.kill_bucket(1);
    cluster.recover_bucket(1).unwrap();
    assert_eq!(
        scan_keys(&client, &q),
        expect,
        "the adopted bucket must rebuild its posting index"
    );
    cluster.shutdown();
}

#[test]
fn delete_batch_reports_per_key_existence() {
    let cluster = LhCluster::start(indexed_config(8));
    let client = cluster.client();
    for k in 0..100u64 {
        client.insert(k, body(k)).unwrap();
    }
    let existed = client.delete_batch(vec![5, 999, 6, 7, 5_000]).unwrap();
    assert_eq!(existed, vec![true, false, true, true, false]);
    assert_eq!(client.lookup(5).unwrap(), None);
    // the postings went with the records
    let keep: Vec<u64> = (0..100).filter(|k| ![5, 6, 7].contains(k)).collect();
    let q = query(5 % 5, 0xB0);
    assert_eq!(scan_keys(&client, &q), oracle(&keep, &q));
    cluster.shutdown();
}
