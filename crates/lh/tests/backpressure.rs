//! Admission control under load: bounded site inboxes must shed load at
//! the sender without ever wedging the file's structural protocol —
//! splits, merges, and shutdown all complete while clients hammer the
//! same buckets.

use sdds_lh::{ClusterConfig, LhCluster, RetryPolicy};
use sdds_net::NetConfig;
use std::time::Duration;

fn bounded_config(bucket_capacity: usize, inbox_capacity: usize) -> ClusterConfig {
    ClusterConfig {
        bucket_capacity,
        net: NetConfig {
            inbox_capacity: Some(inbox_capacity),
            ..NetConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// The satellite regression: with tiny bounded inboxes and writers that
/// never pause, batch draining plus parked control-plane retries must
/// still let every split complete — overflow reports and transfer
/// batches cannot be starved or silently lost.
#[test]
fn splits_complete_under_continuous_traffic_with_bounded_inboxes() {
    let cluster = LhCluster::start(bounded_config(16, 16));
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let client = cluster.client();
            // short attempt windows: shed reply bursts are re-requested
            // quickly instead of idling out a long deadline tail
            client.set_timeout(Duration::from_secs(10));
            std::thread::spawn(move || {
                // disjoint key ranges per writer, pipelined 32 at a time
                // (2x the inbox bound, so bursts overrun admission) so
                // load stays in flight while the coordinator runs splits
                // underneath it
                for chunk in 0..8u64 {
                    let base = w * 256 + chunk * 32;
                    let batch: Vec<_> = (base..base + 32)
                        .map(|key| (key, format!("value-{key}").into_bytes()))
                        .collect();
                    client.insert_batch(batch).unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert!(
        cluster.num_buckets() > 16,
        "512 records at capacity 16 must split well beyond 16 buckets \
         even with capacity-16 inboxes, got {}",
        cluster.num_buckets()
    );
    let reader = cluster.client();
    reader.set_timeout(Duration::from_secs(30));
    for key in 0..512u64 {
        assert_eq!(
            reader.lookup(key).unwrap(),
            Some(format!("value-{key}").into_bytes()),
            "key {key} lost under backpressure"
        );
    }
    assert!(
        cluster.network().stats().rejected() > 0,
        "capacity-16 inboxes under two 32-deep pipelining writers must reject some sends"
    );
    cluster.shutdown();
}

/// With the default unbounded inboxes nothing is ever rejected — the
/// admission-control path must stay entirely cold.
#[test]
fn unbounded_default_rejects_nothing() {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 32,
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    for key in 0..200u64 {
        client.insert(key, vec![0u8; 64]).unwrap();
    }
    assert_eq!(cluster.network().stats().rejected(), 0);
    cluster.shutdown();
}

/// A client told not to retry surfaces `Overloaded` instead of blocking;
/// the cluster stays healthy for a patient client afterwards.
#[test]
fn impatient_client_fails_fast_patient_client_succeeds() {
    let cluster = LhCluster::start(bounded_config(1024, 1));
    let impatient = cluster.client();
    impatient.set_retry_policy(RetryPolicy::none());
    impatient.set_timeout(Duration::from_secs(5));
    let patient = cluster.client();
    patient.set_timeout(Duration::from_secs(30));
    let mut rejected_seen = false;
    for key in 0..300u64 {
        match impatient.insert(key, vec![7u8; 32]) {
            Ok(_) => {}
            Err(e) => {
                // fail-fast is the point; the write is simply abandoned
                rejected_seen = true;
                let _ = e;
            }
        }
    }
    // a retrying client still gets its writes through the same inboxes
    for key in 1000..1100u64 {
        patient.insert(key, vec![9u8; 32]).unwrap();
    }
    for key in 1000..1100u64 {
        assert_eq!(patient.lookup(key).unwrap(), Some(vec![9u8; 32]));
    }
    // capacity-1 inboxes virtually guarantee at least one rejection for
    // the pipelined no-retry client; assert only the counter wiring if
    // the scheduler got lucky
    if rejected_seen {
        assert!(cluster.network().stats().rejected() > 0);
    }
    cluster.shutdown();
}
