//! End-to-end LH\* cluster tests: real site threads, real messages.

use sdds_lh::{ClusterConfig, LhCluster, ParityConfig, SubstringFilter};
use std::sync::Arc;

fn small_bucket_config(capacity: usize) -> ClusterConfig {
    ClusterConfig {
        bucket_capacity: capacity,
        ..ClusterConfig::default()
    }
}

#[test]
fn insert_lookup_delete_roundtrip() {
    let cluster = LhCluster::start(ClusterConfig::default());
    let client = cluster.client();
    assert!(!client.insert(1, b"one".to_vec()).unwrap());
    assert!(
        client.insert(1, b"uno".to_vec()).unwrap(),
        "overwrite reported"
    );
    assert_eq!(client.lookup(1).unwrap(), Some(b"uno".to_vec()));
    assert_eq!(client.lookup(2).unwrap(), None);
    assert!(client.delete(1).unwrap());
    assert!(!client.delete(1).unwrap());
    assert_eq!(client.lookup(1).unwrap(), None);
    cluster.shutdown();
}

#[test]
fn file_scales_out_under_load() {
    let cluster = LhCluster::start(small_bucket_config(16));
    let client = cluster.client();
    let n = 1000u64;
    for key in 0..n {
        client
            .insert(key, format!("value-{key}").into_bytes())
            .unwrap();
    }
    assert!(
        cluster.num_buckets() > 16,
        "1000 records at capacity 16 must split well beyond 16 buckets, got {}",
        cluster.num_buckets()
    );
    // every record still reachable after all the splits
    for key in 0..n {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(format!("value-{key}").into_bytes()),
            "key {key} lost"
        );
    }
    cluster.shutdown();
}

#[test]
fn stale_client_still_reaches_everything() {
    let cluster = LhCluster::start(small_bucket_config(8));
    let writer = cluster.client();
    for key in 0..400u64 {
        writer.insert(key, vec![key as u8]).unwrap();
    }
    // a brand-new client starts with the primordial image
    let reader = cluster.client();
    assert_eq!(reader.image().extent(), 1);
    for key in 0..400u64 {
        assert_eq!(reader.lookup(key).unwrap(), Some(vec![key as u8]));
    }
    // the image converged via IAMs
    assert!(reader.image().extent() > 1, "image never adjusted");
    assert!(reader.iam_count() > 0);
    cluster.shutdown();
}

#[test]
fn forwarding_stays_within_lh_star_bound() {
    let cluster = LhCluster::start(small_bucket_config(8));
    let writer = cluster.client();
    for key in 0..500u64 {
        writer.insert(key, vec![0]).unwrap();
    }
    let reader = cluster.client();
    let mut total_requests = 0u64;
    for key in 0..500u64 {
        reader.lookup(key).unwrap();
        total_requests += 1;
    }
    // LH* theorem: at most 2 hops per request, and few requests hop at all
    // once the image converges.
    assert!(
        reader.hop_count() <= 2 * total_requests,
        "hop bound violated: {} hops for {} requests",
        reader.hop_count(),
        total_requests
    );
    cluster.shutdown();
}

#[test]
fn parallel_substring_scan_finds_matches_across_buckets() {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 8,
        filter: Arc::new(SubstringFilter),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    let names = [
        "SCHWARZ THOMAS",
        "TSUI PETER",
        "LITWIN WITOLD",
        "SCHWARTZ X",
    ];
    for (i, name) in names.iter().enumerate() {
        client.insert(i as u64, name.as_bytes().to_vec()).unwrap();
    }
    for filler in 10..200u64 {
        client
            .insert(filler, format!("FILLER {filler}").into_bytes())
            .unwrap();
    }
    let hits = client.scan(b"SCHWAR", false).unwrap();
    let keys: Vec<u64> = hits.iter().map(|m| m.key).collect();
    assert_eq!(keys, vec![0, 3]);
    assert_eq!(hits[0].value.as_deref(), Some(b"SCHWARZ THOMAS".as_slice()));
    // keys-only scan omits values
    let hits = client.scan(b"LITWIN", true).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].key, 2);
    assert!(hits[0].value.is_none());
    cluster.shutdown();
}

#[test]
fn concurrent_clients_do_not_interfere() {
    let cluster = LhCluster::start(small_bucket_config(16));
    let nthreads = 4;
    let per_thread = 200u64;
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let client = cluster.client();
            scope.spawn(move || {
                let base = t as u64 * 10_000;
                for i in 0..per_thread {
                    client
                        .insert(base + i, (base + i).to_le_bytes().to_vec())
                        .unwrap();
                }
                for i in 0..per_thread {
                    assert_eq!(
                        client.lookup(base + i).unwrap(),
                        Some((base + i).to_le_bytes().to_vec())
                    );
                }
            });
        }
    });
    cluster.shutdown();
}

#[test]
fn file_shrinks_after_mass_deletion() {
    let cluster = LhCluster::start(small_bucket_config(16));
    let client = cluster.client();
    let n = 600u64;
    for key in 0..n {
        client.insert(key, vec![0u8; 16]).unwrap();
    }
    client.refresh_image().unwrap();
    let grown = client.image().extent();
    assert!(grown > 8, "file should have grown: {grown}");
    // delete almost everything; underflow reports drive merges
    for key in 0..n {
        client.delete(key).unwrap();
    }
    // merges are asynchronous; poll the coordinator's view
    let mut shrunk = grown;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        shrunk = client.refresh_image().unwrap();
        if shrunk <= grown / 2 {
            break;
        }
    }
    assert!(
        shrunk <= grown / 2,
        "file should shrink after deleting everything: {grown} -> {shrunk}"
    );
    // the file still works: inserts and lookups route correctly
    for key in 0..50u64 {
        client.insert(key, vec![1]).unwrap();
        assert_eq!(client.lookup(key).unwrap(), Some(vec![1]));
    }
    cluster.shutdown();
}

#[test]
fn data_survives_shrinking() {
    let cluster = LhCluster::start(small_bucket_config(16));
    let client = cluster.client();
    // grow with 500 keys, then delete all but 20 survivors
    for key in 0..500u64 {
        client.insert(key, key.to_le_bytes().to_vec()).unwrap();
    }
    for key in 20..500u64 {
        client.delete(key).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(400)); // let merges run
    for key in 0..20u64 {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(key.to_le_bytes().to_vec()),
            "survivor {key} lost during shrinking"
        );
    }
    cluster.shutdown();
}

#[test]
fn traffic_is_accounted() {
    let cluster = LhCluster::start(ClusterConfig::default());
    let client = cluster.client();
    client.insert(1, b"x".to_vec()).unwrap();
    client.lookup(1).unwrap();
    let stats = cluster.network().stats();
    assert!(stats.messages() >= 4, "2 requests + 2 responses minimum");
    assert!(stats.bytes() > 0);
    assert!(cluster.network().simulated_time() > std::time::Duration::ZERO);
    cluster.shutdown();
}

#[test]
fn stale_image_never_overshoots_the_file() {
    // Regression test for the A1 h_{j-1} guard: grow the file to a state
    // with split > 0, then look up keys whose h_{level+1} image points past
    // the file's extent, from a primordial-image client. Without the guard
    // bucket 0 (at level i+1) forwards toward a nonexistent bucket and the
    // lookup misses.
    let cluster = LhCluster::start(small_bucket_config(4));
    let writer = cluster.client();
    // grow until the file sits mid-level (split > 0)
    let mut n = 0u64;
    let img = loop {
        writer.insert(n, vec![n as u8]).unwrap();
        n += 1;
        writer.refresh_image().unwrap();
        let img = writer.image();
        if img.level >= 3 && img.split > 0 {
            break img;
        }
        assert!(n < 500, "file never reached a mid-level state");
    };
    // a fresh client starts at bucket 0 for every key
    let reader = cluster.client();
    for key in 0..n {
        assert_eq!(
            reader.lookup(key).unwrap(),
            Some(vec![key as u8]),
            "key {key} missed through the stale image (file {img:?})"
        );
    }
    cluster.shutdown();
}

#[test]
fn batch_insert_is_equivalent_and_cheaper_in_roundtrips() {
    let cluster = LhCluster::start(small_bucket_config(64));
    let client = cluster.client();
    let items: Vec<(u64, Vec<u8>)> = (0..200u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
    client.insert_batch(items.clone()).unwrap();
    for (k, v) in &items {
        assert_eq!(client.lookup(*k).unwrap().as_ref(), Some(v));
    }
    // overwrite through a second batch
    let items2: Vec<(u64, Vec<u8>)> = (0..200u64).map(|k| (k, vec![9u8])).collect();
    client.insert_batch(items2).unwrap();
    assert_eq!(client.lookup(7).unwrap(), Some(vec![9u8]));
    cluster.shutdown();
}

#[test]
fn batch_insert_survives_losses() {
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 100_000,
        net: sdds_repro_netcfg(0.05, 11),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    client.set_timeout(std::time::Duration::from_millis(2500));
    let items: Vec<(u64, Vec<u8>)> = (0..150u64).map(|k| (k, vec![k as u8])).collect();
    client.insert_batch(items).unwrap();
    for k in 0..150u64 {
        assert_eq!(client.lookup(k).unwrap(), Some(vec![k as u8]), "key {k}");
    }
    cluster.shutdown();
}

#[test]
fn operations_survive_a_lossy_network() {
    // 5% of all messages vanish; client retransmissions mask the loss.
    // Capacity is high so no splits run during the lossy phase (protocol
    // messages between coordinator and buckets are not retried — as in
    // LH*, the file structure protocol assumes reliable transport).
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 100_000,
        net: sdds_repro_netcfg(0.03, 7),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    client.set_timeout(std::time::Duration::from_millis(1500));
    for key in 0..300u64 {
        client.insert(key, vec![key as u8]).unwrap();
    }
    for key in 0..300u64 {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(vec![key as u8]),
            "key {key}"
        );
    }
    // scans also retry per bucket
    let all = client.scan(&[], true).unwrap();
    assert_eq!(all.len(), 300);
    assert!(
        cluster.network().stats().dropped() > 0,
        "fault injection should actually have dropped messages"
    );
    cluster.shutdown();
}

fn sdds_repro_netcfg(drop_probability: f64, fault_seed: u64) -> sdds_net::NetConfig {
    sdds_net::NetConfig {
        drop_probability,
        fault_seed,
        ..Default::default()
    }
}

// ---------- LH*RS high availability ----------

fn parity_config() -> ClusterConfig {
    ClusterConfig {
        bucket_capacity: 8,
        parity: Some(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 64,
        }),
        ..ClusterConfig::default()
    }
}

#[test]
fn bucket_recovery_restores_all_records() {
    let cluster = LhCluster::start(parity_config());
    let client = cluster.client();
    let n = 120u64;
    for key in 0..n {
        client
            .insert(key, format!("payload-{key}").into_bytes())
            .unwrap();
    }
    let buckets = cluster.num_buckets() as u64;
    assert!(buckets >= 4, "need several buckets, got {buckets}");
    // let parity updates drain before the crash
    std::thread::sleep(std::time::Duration::from_millis(200));
    // crash bucket 1 and recover it from parity
    cluster.kill_bucket(1);
    cluster.recover_bucket(1).unwrap();
    for key in 0..n {
        assert_eq!(
            client.lookup(key).unwrap(),
            Some(format!("payload-{key}").into_bytes()),
            "key {key} lost after recovery"
        );
    }
    cluster.shutdown();
}

#[test]
fn recovery_preserves_updates_and_deletes() {
    let cluster = LhCluster::start(parity_config());
    let client = cluster.client();
    for key in 0..60u64 {
        client.insert(key, vec![1u8; 8]).unwrap();
    }
    // mutate: overwrite some, delete some
    for key in (0..60u64).step_by(3) {
        client.insert(key, vec![2u8; 12]).unwrap();
    }
    for key in (1..60u64).step_by(3) {
        client.delete(key).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(200));
    cluster.kill_bucket(0);
    cluster.recover_bucket(0).unwrap();
    for key in 0..60u64 {
        let expect = match key % 3 {
            0 => Some(vec![2u8; 12]),
            1 => None,
            _ => Some(vec![1u8; 8]),
        };
        assert_eq!(client.lookup(key).unwrap(), expect, "key {key}");
    }
    cluster.shutdown();
}

#[test]
fn scan_over_dead_bucket_reports_incomplete_not_partial() {
    // Regression: the scan used to drop unreachable buckets from its
    // outstanding set and return Ok with a silently partial result. It
    // must instead fail with the missing addresses — and succeed again
    // once the bucket is recovered.
    let cluster = LhCluster::start(ClusterConfig {
        bucket_capacity: 8,
        filter: Arc::new(SubstringFilter),
        parity: Some(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 64,
        }),
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    let n = 100u64;
    for key in 0..n {
        client
            .insert(key, format!("RECORD {key}").into_bytes())
            .unwrap();
    }
    assert!(cluster.num_buckets() >= 4, "need several buckets");
    // full scan works while everyone is alive
    assert_eq!(client.scan(b"RECORD", true).unwrap().len(), n as usize);
    // let parity updates drain, then crash a bucket
    std::thread::sleep(std::time::Duration::from_millis(200));
    cluster.kill_bucket(1);
    client.set_timeout(std::time::Duration::from_millis(300));
    match client.scan(b"RECORD", true) {
        Err(sdds_lh::LhError::ScanIncomplete { missing }) => {
            assert!(
                missing.contains(&1),
                "dead bucket not reported: {missing:?}"
            );
        }
        other => panic!("expected ScanIncomplete, got {other:?}"),
    }
    // recovery makes the scan whole again
    client.set_timeout(std::time::Duration::from_secs(5));
    cluster.recover_bucket(1).unwrap();
    assert_eq!(client.scan(b"RECORD", true).unwrap().len(), n as usize);
    cluster.shutdown();
}

#[test]
fn oversized_value_rejected_when_parity_on() {
    let cluster = LhCluster::start(parity_config());
    let client = cluster.client();
    let err = client.insert(1, vec![0u8; 100]).unwrap_err();
    assert!(matches!(err, sdds_lh::LhError::Rejected(_)), "{err:?}");
    // slot_size - 2 bytes is the maximum and fits
    client.insert(1, vec![0u8; 62]).unwrap();
    cluster.shutdown();
}

#[test]
fn recovery_without_parity_is_rejected() {
    let cluster = LhCluster::start(ClusterConfig::default());
    let err = cluster.recover_bucket(0).unwrap_err();
    assert!(matches!(err, sdds_lh::LhError::Rejected(_)));
    cluster.shutdown();
}
