//! The cluster facade: spawns sites, wires the directory, manages
//! lifecycle, and exposes LH\*<sub>RS</sub> recovery.

use crate::bucket::{run_bucket, BucketCtx, BucketState};
use crate::client::{LhClient, LhError};
use crate::coordinator::{run_coordinator, BucketSpawner};
use crate::filter::{ScanFilter, SubstringFilter};
use crate::hash::{address, ClientImage};
use crate::messages::{ParityRow, Wire};
use crate::parity::{reconstruct_member, run_parity, ParityState};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use sdds_net::{Endpoint, NetConfig, NetError, Network, SiteId};
use sdds_storage::{MemEngine, StorageConfig, StorageEngine, WriteBatch};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps bucket addresses and parity groups to network sites. The LH\*
/// papers assume a computable address→node mapping known to all parties;
/// the directory models that static naming service. It is *not* consulted
/// for file state — clients still learn levels and split pointers only via
/// IAMs, which is the protocol under test.
pub struct Directory {
    buckets: RwLock<Vec<Option<SiteId>>>,
    parity: RwLock<HashMap<u64, Vec<SiteId>>>,
    /// Static addressing (TCP transport): bucket `addr` *is* site id
    /// `addr`; the registry's modular partition decides which process
    /// hosts it, so no dynamic site table is needed — only the set of
    /// addresses retired by merges.
    static_addrs: bool,
    retired: RwLock<std::collections::HashSet<u64>>,
}

impl Directory {
    pub(crate) fn new() -> Directory {
        Directory {
            buckets: RwLock::new(Vec::new()),
            parity: RwLock::new(HashMap::new()),
            static_addrs: false,
            retired: RwLock::new(std::collections::HashSet::new()),
        }
    }

    /// A directory whose address→site mapping is the identity: used by
    /// the TCP transport, where bucket sites register under their bucket
    /// address and the registry routes by id.
    pub(crate) fn new_static() -> Directory {
        Directory {
            static_addrs: true,
            ..Directory::new()
        }
    }

    pub(crate) fn set_bucket(&self, addr: u64, site: SiteId) {
        if self.static_addrs {
            self.retired.write().remove(&addr);
            return;
        }
        let mut v = self.buckets.write();
        if v.len() <= addr as usize {
            v.resize(addr as usize + 1, None);
        }
        v[addr as usize] = Some(site);
    }

    pub(crate) fn clear_bucket(&self, addr: u64) {
        if self.static_addrs {
            self.retired.write().insert(addr);
            return;
        }
        if let Some(slot) = self.buckets.write().get_mut(addr as usize) {
            *slot = None;
        }
    }

    pub(crate) fn bucket_site(&self, addr: u64) -> Option<SiteId> {
        if self.static_addrs {
            if self.retired.read().contains(&addr) {
                return None;
            }
            return Some(SiteId(addr as u32));
        }
        self.buckets.read().get(addr as usize).copied().flatten()
    }

    /// Number of bucket addresses ever materialised.
    pub(crate) fn num_buckets(&self) -> usize {
        self.buckets.read().len()
    }

    pub(crate) fn set_parity(&self, group: u64, sites: Vec<SiteId>) {
        self.parity.write().insert(group, sites);
    }

    pub(crate) fn parity_sites(&self, group: u64) -> Vec<SiteId> {
        self.parity.read().get(&group).cloned().unwrap_or_default()
    }
}

/// A consistent snapshot of an LH\* file: file state plus all bucket
/// contents. Serializable, so files survive process restarts
/// (`serde_json::to_writer` / `from_reader`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FileSnapshot {
    /// File level at snapshot time.
    pub level: u8,
    /// Split pointer at snapshot time.
    pub split: u64,
    /// Per-bucket contents, address-ordered.
    pub buckets: Vec<BucketSnapshot>,
}

impl FileSnapshot {
    /// Total records across all buckets.
    pub fn record_count(&self) -> usize {
        self.buckets.iter().map(|b| b.records.len()).sum()
    }
}

/// One bucket's part of a [`FileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BucketSnapshot {
    /// Bucket address.
    pub addr: u64,
    /// Bucket level at snapshot time.
    pub level: u8,
    /// All records of the bucket.
    pub records: Vec<(u64, Vec<u8>)>,
}

/// LH\*<sub>RS</sub> parity parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityConfig {
    /// Data buckets per parity group (`k`).
    pub group_size: usize,
    /// Parity sites per group (`m`) — failures survivable per group.
    pub parity_count: usize,
    /// Fixed record slot size in bytes (values may be at most
    /// `slot_size - 2` bytes).
    pub slot_size: usize,
}

impl Default for ParityConfig {
    fn default() -> ParityConfig {
        ParityConfig {
            group_size: 4,
            parity_count: 1,
            slot_size: 256,
        }
    }
}

/// Observability options for a served rank's host control loop (the
/// periodic tick that feeds the snapshot ring, refreshes the loop-health
/// watchdog gauge, and optionally flushes the flight recorder).
#[derive(Debug, Clone)]
pub struct ObsOptions {
    /// Interval between observability ticks.
    pub tick: Duration,
    /// Snapshot-ring capacity: how many timestamped metrics snapshots the
    /// rank retains for post-hoc scraping (`HostMsg::ObsPull` with
    /// `history`). 0 disables the ring.
    pub history: usize,
    /// When set, each tick drains the rank's flight recorder to this
    /// JSONL file, so traces survive a SIGKILL up to the last flush.
    /// Mutually exclusive in practice with span scraping: both drain the
    /// same process-global recorder, so a scrape after a flush returns
    /// only the spans recorded since.
    pub trace_flush: Option<std::path::PathBuf>,
}

impl Default for ObsOptions {
    fn default() -> ObsOptions {
        ObsOptions {
            tick: Duration::from_millis(500),
            history: 64,
            trace_flush: None,
        }
    }
}

/// Cluster construction parameters.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Records per bucket before an overflow is reported (LH\* splits keep
    /// the load near this bound).
    pub bucket_capacity: usize,
    /// Enables LH\*<sub>RS</sub> record-group parity.
    pub parity: Option<ParityConfig>,
    /// Scan filter installed at every bucket.
    pub filter: Arc<dyn ScanFilter>,
    /// Latency model for the simulated network.
    pub net: NetConfig,
    /// Storage backend for bucket records: volatile in-memory (the
    /// default) or durable WAL+snapshot directories.
    pub storage: StorageConfig,
    /// Messages each site event loop dispatches per wakeup (batch
    /// draining; see `sdds_lh::DEFAULT_DRAIN_BUDGET`). 1 restores the
    /// historical one-message-per-wakeup dispatch.
    pub drain_budget: usize,
    /// Total per-operation timeout handed to every client this cluster
    /// creates (spread over the client's retransmit attempts). Short
    /// timeouts make clients re-request shed replies quickly — the right
    /// trade under bounded inboxes, where replies are dropped rather than
    /// queued without limit.
    pub client_timeout: Duration,
    /// Host-loop observability: snapshot-ring tick, history depth, and
    /// optional periodic trace flush (served ranks only; the in-process
    /// transport has no host loop to run the tick).
    pub obs: ObsOptions,
}

impl fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("bucket_capacity", &self.bucket_capacity)
            .field("parity", &self.parity)
            .field("storage", &self.storage)
            .field("drain_budget", &self.drain_budget)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            bucket_capacity: 64,
            parity: None,
            filter: Arc::new(SubstringFilter),
            net: NetConfig::default(),
            storage: StorageConfig::Mem,
            drain_budget: crate::drain::DEFAULT_DRAIN_BUDGET,
            client_timeout: Duration::from_secs(10),
            obs: ObsOptions::default(),
        }
    }
}

/// A running LH\* file: coordinator + bucket sites (+ parity sites), all on
/// the simulated multicomputer.
pub struct LhCluster {
    network: Network,
    directory: Arc<Directory>,
    coordinator: SiteId,
    config: ClusterConfig,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Sites that accept [`Wire::Shutdown`].
    shutdown_sites: Arc<Mutex<Vec<SiteId>>>,
    spawner: Mutex<BucketSpawner>,
}

impl LhCluster {
    /// Starts a cluster with one bucket and its coordinator.
    pub fn start(config: ClusterConfig) -> LhCluster {
        let network = Network::new(config.net.clone());
        let directory = Arc::new(Directory::new());
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown_sites: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));

        let coordinator_ep = network.register();
        let coordinator = coordinator_ep.id();
        shutdown_sites.lock().push(coordinator);

        let mut spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        // bucket 0 — the primordial file
        spawner(0, 0);

        // the coordinator gets its own spawner instance
        let coord_spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        let dir = directory.clone();
        let lookup = Box::new(move |addr: u64| dir.bucket_site(addr));
        let dir = directory.clone();
        let retirer = Box::new(move |addr: u64| dir.clear_bucket(addr));
        let budget = config.drain_budget;
        let h = std::thread::spawn(move || {
            run_coordinator(coordinator_ep, coord_spawner, retirer, lookup, budget)
        });
        handles.lock().push(h);

        LhCluster {
            network,
            directory,
            coordinator,
            config,
            handles,
            shutdown_sites,
            spawner: Mutex::new(spawner),
        }
    }

    /// Reopens a durable file from the bucket directories under the
    /// config's data dir. Falls back to [`start`](Self::start) when no
    /// buckets exist yet (including the in-memory backend).
    ///
    /// LH\* file state is never persisted separately: it is *derived* from
    /// the number of bucket directories via the split invariant
    /// `n = 2^level + split`. A crash mid-transfer can leave records in a
    /// bucket the derived state no longer maps them to (or in two buckets
    /// at once), so before any site thread starts, a re-address pass moves
    /// every record to its home bucket — preferring the home copy when the
    /// crash left duplicates, since the home copy was the one durably
    /// acknowledged.
    pub fn open(config: ClusterConfig) -> Result<LhCluster, LhError> {
        let addrs = config
            .storage
            .existing_bucket_addrs()
            .map_err(|e| LhError::Storage(e.to_string()))?;
        let n = match addrs.iter().max() {
            // fresh data dir (or Mem backend): nothing to recover
            None => return Ok(LhCluster::start(config)),
            Some(&hi) => hi + 1,
        };
        if n == 1 {
            // a single-bucket file is exactly what `start` builds; bucket
            // 0's spawner reopens the directory and `startup` rebuilds the
            // in-memory bookkeeping
            return Ok(LhCluster::start(config));
        }
        let level = (63 - n.leading_zeros()) as u8;
        let split = n - (1u64 << level);
        let image = ClientImage { level, split };

        // Re-address pass, strictly before any site thread exists (the
        // engines are opened exclusively here and dropped again).
        let mut engines: Vec<Box<dyn StorageEngine>> = Vec::with_capacity(n as usize);
        for addr in 0..n {
            let engine = config
                .storage
                .open_bucket(addr)
                .map_err(|e| LhError::Storage(format!("bucket {addr}: {e}")))?;
            engines.push(engine);
        }
        // (source bucket, key, value, home bucket)
        let mut strays: Vec<(usize, u64, Vec<u8>, usize)> = Vec::new();
        for (addr, engine) in engines.iter().enumerate() {
            engine.for_each(&mut |key, value| {
                let home = address(key, level, split) as usize;
                if home != addr {
                    strays.push((addr, key, value.to_vec(), home));
                }
            });
        }
        if !strays.is_empty() {
            sdds_obs::counter("storage.readdressed_records").add(strays.len() as u64);
            let mut batches: Vec<WriteBatch> = (0..n).map(|_| WriteBatch::new()).collect();
            for (from, key, value, home) in strays {
                // A transfer that crashed after the target's durable apply
                // but before the source's delete leaves two copies; the
                // home one was acknowledged, so it wins.
                if !engines[home].contains(key) {
                    batches[home].put(key, value);
                }
                batches[from].delete(key);
            }
            for (addr, batch) in batches.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let engine = &mut engines[addr];
                engine
                    .apply_batch(&batch)
                    .and_then(|()| engine.flush())
                    .map_err(|e| LhError::Storage(format!("bucket {addr}: {e}")))?;
            }
        }
        // release the WAL handles before the bucket sites reopen them
        drop(engines);

        let network = Network::new(config.net.clone());
        let directory = Arc::new(Directory::new());
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown_sites: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));

        let coordinator_ep = network.register();
        let coordinator = coordinator_ep.id();
        shutdown_sites.lock().push(coordinator);

        let builder = SiteBuilder::new(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        let coord_spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        let dir = directory.clone();
        let lookup = Box::new(move |addr: u64| dir.bucket_site(addr));
        let dir = directory.clone();
        let retirer = Box::new(move |addr: u64| dir.clear_bucket(addr));
        let budget = config.drain_budget;
        let h = std::thread::spawn(move || {
            run_coordinator(coordinator_ep, coord_spawner, retirer, lookup, budget)
        });
        handles.lock().push(h);

        // The coordinator must adopt the derived file state before any
        // recovered bucket can report an overflow; mailbox delivery is
        // FIFO, so sending this before the bucket threads exist
        // guarantees it.
        let control = network.register();
        send_control(
            &control,
            coordinator,
            Wire::AdoptFileState { level, split }.encode(),
        )?;

        // Two-phase spawn: every directory entry must be published before
        // any site thread runs. An early bucket's startup overflow report
        // can trigger a split whose victim the coordinator looks up in the
        // directory — launching as we register would race that lookup
        // against the rest of this loop.
        let endpoints: Vec<(u64, Endpoint)> =
            (0..n).map(|addr| (addr, builder.register(addr))).collect();
        for (addr, ep) in endpoints {
            builder.launch(addr, bucket_level(addr, image), ep);
        }
        let spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );

        Ok(LhCluster {
            network,
            directory,
            coordinator,
            config,
            handles,
            shutdown_sites,
            spawner: Mutex::new(spawner),
        })
    }

    /// Registers a new client of the file.
    pub fn client(&self) -> LhClient {
        let client = LhClient::new(
            self.network.register(),
            self.directory.clone(),
            self.coordinator,
        );
        client.set_timeout(self.config.client_timeout);
        client
    }

    /// The underlying network (for traffic statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of bucket addresses materialised so far.
    pub fn num_buckets(&self) -> usize {
        self.directory.num_buckets()
    }

    /// Kills a bucket site (crash simulation for LH\*<sub>RS</sub> tests).
    /// The address is kept reserved; [`recover_bucket`](Self::recover_bucket)
    /// restores it.
    pub fn kill_bucket(&self, addr: u64) {
        if let Some(site) = self.directory.bucket_site(addr) {
            let control = self.network.register();
            let _ = send_control(&control, site, Wire::Shutdown.encode());
            self.directory.clear_bucket(addr);
        }
    }

    /// Recovers a killed bucket from its group's survivors and parity
    /// sites, spawning a fresh site that adopts the reconstructed state.
    ///
    /// Requires parity to be enabled and mutations to the group to be
    /// quiescent during the recovery (as in LH\*RS, where the coordinator
    /// locks the group).
    pub fn recover_bucket(&self, addr: u64) -> Result<(), LhError> {
        let cfg = self
            .config
            .parity
            .ok_or_else(|| LhError::Rejected("parity not enabled".into()))?;
        // Root of the recovery trace (unless the caller already opened
        // one): the slot-table reads, parity reads and the final Adopt all
        // carry this context.
        let mut op_span = sdds_obs::trace::child_span("client.recover");
        op_span.set_detail(addr);
        sdds_obs::counter("lh.recoveries").inc();
        let _timer = sdds_obs::histogram("lh.recovery_seconds").start_timer();
        let k = cfg.group_size;
        let m = cfg.parity_count;
        let group = addr / k as u64;
        let failed = (addr % k as u64) as usize;
        let control = self.network.register();
        let timeout = Duration::from_secs(10);
        // the true file extent distinguishes merged-away members (empty by
        // construction: the merge shipped their records out and emitted
        // the parity removals) from crashed ones
        let extent = {
            let probe = self.client();
            probe.refresh_image()?;
            probe.image()
        };
        let file_extent = extent.extent();

        // 1. survivors' slot tables
        #[allow(clippy::type_complexity)]
        let mut members: Vec<Option<Vec<Option<(u64, Vec<u8>)>>>> = vec![None; k];
        let mut awaiting: HashMap<u64, usize> = HashMap::new(); // req_id -> member
        let mut req_id = 1u64;
        #[allow(clippy::needless_range_loop)] // `member` is also arithmetic input
        for member in 0..k {
            let baddr = group * k as u64 + member as u64;
            if member == failed {
                continue;
            }
            match self.directory.bucket_site(baddr) {
                Some(site) => {
                    let msg = Wire::SlotsRead {
                        req_id,
                        client: control.id().0,
                    };
                    send_control(&control, site, msg.encode())?;
                    awaiting.insert(req_id, member);
                    req_id += 1;
                }
                // never created, or retired by a merge: holds no records
                None if baddr as usize >= self.directory.num_buckets() || baddr >= file_extent => {
                    members[member] = Some(Vec::new());
                }
                None => {
                    return Err(LhError::Rejected(format!(
                        "member bucket {baddr} is also down; need {m} or fewer failures"
                    )))
                }
            }
        }
        // 2. parity rows
        let mut parities: Vec<Option<Vec<ParityRow>>> = vec![None; m];
        let psites = self.directory.parity_sites(group);
        for site in &psites {
            let msg = Wire::ParityRead {
                req_id,
                client: control.id().0,
                group,
            };
            send_control(&control, *site, msg.encode())?;
            awaiting.insert(req_id, usize::MAX); // parity marker
            req_id += 1;
        }
        // 3. gather
        let deadline = Instant::now() + timeout;
        let mut outstanding = awaiting.len();
        while outstanding > 0 {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(LhError::Timeout)?;
            let env = match control.recv_timeout(remaining) {
                Ok(env) => env,
                Err(NetError::Timeout) => return Err(LhError::Timeout),
                Err(e) => return Err(e.into()),
            };
            match Wire::decode(&env.payload) {
                Some(Wire::SlotsState {
                    req_id: rid, slots, ..
                }) => {
                    if let Some(&member) = awaiting.get(&rid) {
                        members[member] = Some(slots);
                        outstanding -= 1;
                    }
                }
                Some(Wire::ParityState {
                    req_id: rid,
                    parity_index,
                    rows,
                }) => {
                    if awaiting.contains_key(&rid) {
                        parities[parity_index as usize] = Some(rows);
                        outstanding -= 1;
                    }
                }
                _ => continue,
            }
        }
        // 4. reconstruct
        let slots = reconstruct_member(k, m, cfg.slot_size, failed, &members, &parities)
            .map_err(LhError::Rejected)?;
        // 5. spawn a fresh site and adopt at the level the true file
        // state implies.
        let level = bucket_level(addr, extent);
        let site = (self.spawner.lock())(addr, level);
        send_control(&control, site, Wire::Adopt { addr, level, slots }.encode())?;
        Ok(())
    }

    /// Takes a consistent snapshot of the file: the coordinator's state
    /// plus every bucket's contents. Mutations must be quiescent (the
    /// classic external-backup contract). Like scans, the snapshot first
    /// waits out any split or merge still running or queued — an acked
    /// insert can leave a structural change in flight, and a `Dump` that
    /// raced its `TransferBatch` would miss the records mid-move.
    pub fn snapshot(&self) -> Result<FileSnapshot, LhError> {
        let probe = self.client();
        probe.refresh_image_quiescent()?;
        let image = probe.image();
        let control = self.network.register();
        let mut awaiting = std::collections::HashMap::new();
        for (req_id, addr) in (0..image.extent()).enumerate() {
            let Some(site) = self.directory.bucket_site(addr) else {
                return Err(LhError::Rejected(format!(
                    "bucket {addr} is down; recover it before snapshotting"
                )));
            };
            send_control(
                &control,
                site,
                Wire::Dump {
                    req_id: req_id as u64,
                    client: control.id().0,
                }
                .encode(),
            )?;
            awaiting.insert(req_id as u64, addr);
        }
        let mut buckets: Vec<BucketSnapshot> = Vec::with_capacity(awaiting.len());
        let deadline = Instant::now() + Duration::from_secs(30);
        while !awaiting.is_empty() {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(LhError::Timeout)?;
            let env = match control.recv_timeout(remaining) {
                Ok(env) => env,
                Err(NetError::Timeout) => return Err(LhError::Timeout),
                Err(e) => return Err(e.into()),
            };
            if let Some(Wire::DumpState {
                req_id,
                addr,
                level,
                records,
            }) = Wire::decode(&env.payload)
            {
                if awaiting.remove(&req_id).is_some() {
                    buckets.push(BucketSnapshot {
                        addr,
                        level,
                        records,
                    });
                }
            }
        }
        buckets.sort_by_key(|b| b.addr);
        Ok(FileSnapshot {
            level: image.level,
            split: image.split,
            buckets,
        })
    }

    /// Starts a fresh cluster and repopulates it from a snapshot: the
    /// coordinator adopts the file state, the bucket sites are spawned at
    /// their recorded levels, and contents are replayed (rebuilding
    /// LH\*<sub>RS</sub> parity when the new config enables it).
    pub fn restore(config: ClusterConfig, snapshot: &FileSnapshot) -> Result<LhCluster, LhError> {
        if let Some(p) = config.parity {
            // the replay path bypasses the insert-time size check, so an
            // oversized value would panic the bucket's slot encoder
            for b in &snapshot.buckets {
                if let Some((key, v)) = b.records.iter().find(|(_, v)| v.len() + 2 > p.slot_size) {
                    return Err(LhError::Rejected(format!(
                        "snapshot record {key} ({} bytes) exceeds the parity slot                          capacity {}; restore with a larger slot_size or without parity",
                        v.len(),
                        p.slot_size - 2
                    )));
                }
            }
        }
        let cluster = LhCluster::start(config);
        let control = cluster.network.register();
        send_control(
            &control,
            cluster.coordinator,
            Wire::AdoptFileState {
                level: snapshot.level,
                split: snapshot.split,
            }
            .encode(),
        )?;
        {
            let mut spawner = cluster.spawner.lock();
            for b in &snapshot.buckets {
                if b.addr > 0 {
                    spawner(b.addr, b.level);
                }
            }
        }
        for b in &snapshot.buckets {
            // lint: allow(panic-freedom) -- the spawner loop directly above registered every snapshot bucket
            let site = cluster.directory.bucket_site(b.addr).expect("just spawned");
            send_control(
                &control,
                site,
                Wire::TransferBatch {
                    level: b.level,
                    addr: b.addr,
                    records: b.records.clone(),
                }
                .encode(),
            )?;
        }
        Ok(cluster)
    }

    /// Stops every site thread and joins them.
    pub fn shutdown(self) {
        let control = self.network.register();
        for site in self.shutdown_sites.lock().drain(..) {
            let _ = send_control(&control, site, Wire::Shutdown.encode());
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock();
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Sends a cluster-lifecycle message, retrying briefly while the
/// destination's bounded inbox rejects it. Admission control may shed
/// client traffic freely, but shutdown/recovery/restore messages must
/// land for the cluster to make progress — and the receiving loop is
/// live and draining, so a full inbox clears within the retry window.
pub(crate) fn send_control(ep: &Endpoint, to: SiteId, payload: Bytes) -> Result<(), NetError> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match ep.send(to, payload.clone()) {
            Err(NetError::Overloaded(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_micros(200));
            }
            other => return other,
        }
    }
}

/// Level of bucket `addr` in a file whose true state is `image`.
fn bucket_level(addr: u64, image: ClientImage) -> u8 {
    if addr < image.split || addr >= (1u64 << image.level) {
        image.level + 1
    } else {
        image.level
    }
}

/// Materialises bucket sites in two phases — `register` (endpoint +
/// directory entry + lazy parity sites) and `launch` (engine + thread) —
/// so `open` can publish every recovered bucket's directory entry before
/// any site thread runs. A bucket's startup overflow report can reach the
/// coordinator while later buckets are still being set up; the split it
/// triggers looks its victim up in the directory, which must therefore be
/// complete first.
pub(crate) struct SiteBuilder {
    network: Network,
    directory: Arc<Directory>,
    capacity: usize,
    parity: Option<ParityConfig>,
    filter: Arc<dyn ScanFilter>,
    storage: StorageConfig,
    drain_budget: usize,
    coordinator: SiteId,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_sites: Arc<Mutex<Vec<SiteId>>>,
}

impl SiteBuilder {
    pub(crate) fn new(
        network: &Network,
        directory: &Arc<Directory>,
        config: &ClusterConfig,
        coordinator: SiteId,
        handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
        shutdown_sites: &Arc<Mutex<Vec<SiteId>>>,
    ) -> SiteBuilder {
        SiteBuilder {
            network: network.clone(),
            directory: directory.clone(),
            capacity: config.bucket_capacity,
            parity: config.parity,
            filter: config.filter.clone(),
            storage: config.storage.clone(),
            drain_budget: config.drain_budget,
            coordinator,
            handles: handles.clone(),
            shutdown_sites: shutdown_sites.clone(),
        }
    }

    /// Registers the bucket's endpoint and directory entry (and, lazily,
    /// its group's parity sites) without starting the site thread.
    fn register(&self, addr: u64) -> Endpoint {
        if let Some(cfg) = self.parity {
            let group = addr / cfg.group_size as u64;
            if self.directory.parity_sites(group).is_empty() {
                let mut sites = Vec::with_capacity(cfg.parity_count);
                for p in 0..cfg.parity_count {
                    let ep = self.network.register();
                    sites.push(ep.id());
                    self.shutdown_sites.lock().push(ep.id());
                    let state = ParityState::new(
                        group,
                        p as u32,
                        cfg.group_size,
                        cfg.parity_count,
                        cfg.slot_size,
                    );
                    let budget = self.drain_budget;
                    self.handles
                        .lock()
                        .push(std::thread::spawn(move || run_parity(ep, state, budget)));
                }
                self.directory.set_parity(group, sites);
            }
        }
        let ep = self.network.register();
        self.directory.set_bucket(addr, ep.id());
        self.shutdown_sites.lock().push(ep.id());
        ep
    }

    /// Opens the bucket's storage engine and starts its site thread on a
    /// previously registered endpoint.
    pub(crate) fn launch(&self, addr: u64, level: u8, ep: Endpoint) {
        let ctx = BucketCtx {
            directory: self.directory.clone(),
            coordinator: self.coordinator,
            filter: self.filter.clone(),
            parity: self.parity,
            // Each site gets its own labeled registry; updates flow into
            // the global aggregate so existing metric readers are
            // unaffected while per-site breakdowns become available.
            obs: sdds_obs::Registry::with_parent(
                format!("bucket-{addr}"),
                sdds_obs::Registry::global(),
            ),
            drain_budget: self.drain_budget,
        };
        // A spawner cannot report failure (it runs inside the
        // coordinator's split path); if durable storage cannot open,
        // degrade this bucket to volatile memory and count it rather than
        // stall the file.
        let engine = self.storage.open_bucket(addr).unwrap_or_else(|_| {
            sdds_obs::counter("storage.open_failures").inc();
            Box::new(MemEngine::new())
        });
        let state = BucketState::new(
            addr,
            level,
            self.capacity,
            self.filter.index_element_bytes(),
            engine,
        );
        self.handles
            .lock()
            .push(std::thread::spawn(move || run_bucket(ep, state, ctx)));
    }

    fn spawn(&self, addr: u64, level: u8) -> SiteId {
        let ep = self.register(addr);
        let site = ep.id();
        self.launch(addr, level, ep);
        site
    }
}

/// Builds the closure that materialises bucket sites (and, lazily, their
/// group's parity sites).
fn make_spawner(
    network: &Network,
    directory: &Arc<Directory>,
    config: &ClusterConfig,
    coordinator: SiteId,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_sites: &Arc<Mutex<Vec<SiteId>>>,
) -> BucketSpawner {
    let builder = SiteBuilder::new(
        network,
        directory,
        config,
        coordinator,
        handles,
        shutdown_sites,
    );
    Box::new(move |addr: u64, level: u8| builder.spawn(addr, level))
}
