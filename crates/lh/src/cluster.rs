//! The cluster facade: spawns sites, wires the directory, manages
//! lifecycle, and exposes LH\*<sub>RS</sub> recovery.

use crate::bucket::{run_bucket, BucketCtx, BucketState};
use crate::client::{LhClient, LhError};
use crate::coordinator::{run_coordinator, BucketSpawner};
use crate::filter::{ScanFilter, SubstringFilter};
use crate::hash::ClientImage;
use crate::messages::{ParityRow, Wire};
use crate::parity::{reconstruct_member, run_parity, ParityState};
use parking_lot::{Mutex, RwLock};
use sdds_net::{NetConfig, NetError, Network, SiteId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps bucket addresses and parity groups to network sites. The LH\*
/// papers assume a computable address→node mapping known to all parties;
/// the directory models that static naming service. It is *not* consulted
/// for file state — clients still learn levels and split pointers only via
/// IAMs, which is the protocol under test.
pub struct Directory {
    buckets: RwLock<Vec<Option<SiteId>>>,
    parity: RwLock<HashMap<u64, Vec<SiteId>>>,
}

impl Directory {
    pub(crate) fn new() -> Directory {
        Directory {
            buckets: RwLock::new(Vec::new()),
            parity: RwLock::new(HashMap::new()),
        }
    }

    pub(crate) fn set_bucket(&self, addr: u64, site: SiteId) {
        let mut v = self.buckets.write();
        if v.len() <= addr as usize {
            v.resize(addr as usize + 1, None);
        }
        v[addr as usize] = Some(site);
    }

    pub(crate) fn clear_bucket(&self, addr: u64) {
        if let Some(slot) = self.buckets.write().get_mut(addr as usize) {
            *slot = None;
        }
    }

    pub(crate) fn bucket_site(&self, addr: u64) -> Option<SiteId> {
        self.buckets.read().get(addr as usize).copied().flatten()
    }

    /// Number of bucket addresses ever materialised.
    pub(crate) fn num_buckets(&self) -> usize {
        self.buckets.read().len()
    }

    pub(crate) fn set_parity(&self, group: u64, sites: Vec<SiteId>) {
        self.parity.write().insert(group, sites);
    }

    pub(crate) fn parity_sites(&self, group: u64) -> Vec<SiteId> {
        self.parity.read().get(&group).cloned().unwrap_or_default()
    }
}

/// A consistent snapshot of an LH\* file: file state plus all bucket
/// contents. Serializable, so files survive process restarts
/// (`serde_json::to_writer` / `from_reader`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FileSnapshot {
    /// File level at snapshot time.
    pub level: u8,
    /// Split pointer at snapshot time.
    pub split: u64,
    /// Per-bucket contents, address-ordered.
    pub buckets: Vec<BucketSnapshot>,
}

impl FileSnapshot {
    /// Total records across all buckets.
    pub fn record_count(&self) -> usize {
        self.buckets.iter().map(|b| b.records.len()).sum()
    }
}

/// One bucket's part of a [`FileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BucketSnapshot {
    /// Bucket address.
    pub addr: u64,
    /// Bucket level at snapshot time.
    pub level: u8,
    /// All records of the bucket.
    pub records: Vec<(u64, Vec<u8>)>,
}

/// LH\*<sub>RS</sub> parity parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityConfig {
    /// Data buckets per parity group (`k`).
    pub group_size: usize,
    /// Parity sites per group (`m`) — failures survivable per group.
    pub parity_count: usize,
    /// Fixed record slot size in bytes (values may be at most
    /// `slot_size - 2` bytes).
    pub slot_size: usize,
}

impl Default for ParityConfig {
    fn default() -> ParityConfig {
        ParityConfig {
            group_size: 4,
            parity_count: 1,
            slot_size: 256,
        }
    }
}

/// Cluster construction parameters.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Records per bucket before an overflow is reported (LH\* splits keep
    /// the load near this bound).
    pub bucket_capacity: usize,
    /// Enables LH\*<sub>RS</sub> record-group parity.
    pub parity: Option<ParityConfig>,
    /// Scan filter installed at every bucket.
    pub filter: Arc<dyn ScanFilter>,
    /// Latency model for the simulated network.
    pub net: NetConfig,
}

impl fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("bucket_capacity", &self.bucket_capacity)
            .field("parity", &self.parity)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            bucket_capacity: 64,
            parity: None,
            filter: Arc::new(SubstringFilter),
            net: NetConfig::default(),
        }
    }
}

/// A running LH\* file: coordinator + bucket sites (+ parity sites), all on
/// the simulated multicomputer.
pub struct LhCluster {
    network: Network,
    directory: Arc<Directory>,
    coordinator: SiteId,
    config: ClusterConfig,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Sites that accept [`Wire::Shutdown`].
    shutdown_sites: Arc<Mutex<Vec<SiteId>>>,
    spawner: Mutex<BucketSpawner>,
}

impl LhCluster {
    /// Starts a cluster with one bucket and its coordinator.
    pub fn start(config: ClusterConfig) -> LhCluster {
        let network = Network::new(config.net.clone());
        let directory = Arc::new(Directory::new());
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown_sites: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));

        let coordinator_ep = network.register();
        let coordinator = coordinator_ep.id();
        shutdown_sites.lock().push(coordinator);

        let mut spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        // bucket 0 — the primordial file
        spawner(0, 0);

        // the coordinator gets its own spawner instance
        let coord_spawner = make_spawner(
            &network,
            &directory,
            &config,
            coordinator,
            &handles,
            &shutdown_sites,
        );
        let dir = directory.clone();
        let lookup = Box::new(move |addr: u64| dir.bucket_site(addr));
        let dir = directory.clone();
        let retirer = Box::new(move |addr: u64| dir.clear_bucket(addr));
        let h = std::thread::spawn(move || {
            run_coordinator(coordinator_ep, coord_spawner, retirer, lookup)
        });
        handles.lock().push(h);

        LhCluster {
            network,
            directory,
            coordinator,
            config,
            handles,
            shutdown_sites,
            spawner: Mutex::new(spawner),
        }
    }

    /// Registers a new client of the file.
    pub fn client(&self) -> LhClient {
        LhClient::new(
            self.network.register(),
            self.directory.clone(),
            self.coordinator,
        )
    }

    /// The underlying network (for traffic statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of bucket addresses materialised so far.
    pub fn num_buckets(&self) -> usize {
        self.directory.num_buckets()
    }

    /// Kills a bucket site (crash simulation for LH\*<sub>RS</sub> tests).
    /// The address is kept reserved; [`recover_bucket`](Self::recover_bucket)
    /// restores it.
    pub fn kill_bucket(&self, addr: u64) {
        if let Some(site) = self.directory.bucket_site(addr) {
            let control = self.network.register();
            let _ = control.send(site, Wire::Shutdown.encode());
            self.directory.clear_bucket(addr);
        }
    }

    /// Recovers a killed bucket from its group's survivors and parity
    /// sites, spawning a fresh site that adopts the reconstructed state.
    ///
    /// Requires parity to be enabled and mutations to the group to be
    /// quiescent during the recovery (as in LH\*RS, where the coordinator
    /// locks the group).
    pub fn recover_bucket(&self, addr: u64) -> Result<(), LhError> {
        let cfg = self
            .config
            .parity
            .ok_or_else(|| LhError::Rejected("parity not enabled".into()))?;
        // Root of the recovery trace (unless the caller already opened
        // one): the slot-table reads, parity reads and the final Adopt all
        // carry this context.
        let mut op_span = sdds_obs::trace::child_span("client.recover");
        op_span.set_detail(addr);
        sdds_obs::counter("lh.recoveries").inc();
        let _timer = sdds_obs::histogram("lh.recovery_seconds").start_timer();
        let k = cfg.group_size;
        let m = cfg.parity_count;
        let group = addr / k as u64;
        let failed = (addr % k as u64) as usize;
        let control = self.network.register();
        let timeout = Duration::from_secs(10);
        // the true file extent distinguishes merged-away members (empty by
        // construction: the merge shipped their records out and emitted
        // the parity removals) from crashed ones
        let extent = {
            let probe = self.client();
            probe.refresh_image()?;
            probe.image()
        };
        let file_extent = extent.extent();

        // 1. survivors' slot tables
        #[allow(clippy::type_complexity)]
        let mut members: Vec<Option<Vec<Option<(u64, Vec<u8>)>>>> = vec![None; k];
        let mut awaiting: HashMap<u64, usize> = HashMap::new(); // req_id -> member
        let mut req_id = 1u64;
        #[allow(clippy::needless_range_loop)] // `member` is also arithmetic input
        for member in 0..k {
            let baddr = group * k as u64 + member as u64;
            if member == failed {
                continue;
            }
            match self.directory.bucket_site(baddr) {
                Some(site) => {
                    let msg = Wire::SlotsRead {
                        req_id,
                        client: control.id().0,
                    };
                    control.send(site, msg.encode())?;
                    awaiting.insert(req_id, member);
                    req_id += 1;
                }
                // never created, or retired by a merge: holds no records
                None if baddr as usize >= self.directory.num_buckets() || baddr >= file_extent => {
                    members[member] = Some(Vec::new());
                }
                None => {
                    return Err(LhError::Rejected(format!(
                        "member bucket {baddr} is also down; need {m} or fewer failures"
                    )))
                }
            }
        }
        // 2. parity rows
        let mut parities: Vec<Option<Vec<ParityRow>>> = vec![None; m];
        let psites = self.directory.parity_sites(group);
        for site in &psites {
            let msg = Wire::ParityRead {
                req_id,
                client: control.id().0,
                group,
            };
            control.send(*site, msg.encode())?;
            awaiting.insert(req_id, usize::MAX); // parity marker
            req_id += 1;
        }
        // 3. gather
        let deadline = Instant::now() + timeout;
        let mut outstanding = awaiting.len();
        while outstanding > 0 {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(LhError::Timeout)?;
            let env = match control.recv_timeout(remaining) {
                Ok(env) => env,
                Err(NetError::Timeout) => return Err(LhError::Timeout),
                Err(e) => return Err(e.into()),
            };
            match Wire::decode(&env.payload) {
                Some(Wire::SlotsState {
                    req_id: rid, slots, ..
                }) => {
                    if let Some(&member) = awaiting.get(&rid) {
                        members[member] = Some(slots);
                        outstanding -= 1;
                    }
                }
                Some(Wire::ParityState {
                    req_id: rid,
                    parity_index,
                    rows,
                }) => {
                    if awaiting.contains_key(&rid) {
                        parities[parity_index as usize] = Some(rows);
                        outstanding -= 1;
                    }
                }
                _ => continue,
            }
        }
        // 4. reconstruct
        let slots = reconstruct_member(k, m, cfg.slot_size, failed, &members, &parities)
            .map_err(LhError::Rejected)?;
        // 5. spawn a fresh site and adopt at the level the true file
        // state implies.
        let level = bucket_level(addr, extent);
        let site = (self.spawner.lock())(addr, level);
        control.send(site, Wire::Adopt { addr, level, slots }.encode())?;
        Ok(())
    }

    /// Takes a consistent snapshot of the file: the coordinator's state
    /// plus every bucket's contents. Mutations must be quiescent (the
    /// classic external-backup contract).
    pub fn snapshot(&self) -> Result<FileSnapshot, LhError> {
        let probe = self.client();
        probe.refresh_image()?;
        let image = probe.image();
        let control = self.network.register();
        let mut awaiting = std::collections::HashMap::new();
        for (req_id, addr) in (0..image.extent()).enumerate() {
            let Some(site) = self.directory.bucket_site(addr) else {
                return Err(LhError::Rejected(format!(
                    "bucket {addr} is down; recover it before snapshotting"
                )));
            };
            control.send(
                site,
                Wire::Dump {
                    req_id: req_id as u64,
                    client: control.id().0,
                }
                .encode(),
            )?;
            awaiting.insert(req_id as u64, addr);
        }
        let mut buckets: Vec<BucketSnapshot> = Vec::with_capacity(awaiting.len());
        let deadline = Instant::now() + Duration::from_secs(30);
        while !awaiting.is_empty() {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(LhError::Timeout)?;
            let env = match control.recv_timeout(remaining) {
                Ok(env) => env,
                Err(NetError::Timeout) => return Err(LhError::Timeout),
                Err(e) => return Err(e.into()),
            };
            if let Some(Wire::DumpState {
                req_id,
                addr,
                level,
                records,
            }) = Wire::decode(&env.payload)
            {
                if awaiting.remove(&req_id).is_some() {
                    buckets.push(BucketSnapshot {
                        addr,
                        level,
                        records,
                    });
                }
            }
        }
        buckets.sort_by_key(|b| b.addr);
        Ok(FileSnapshot {
            level: image.level,
            split: image.split,
            buckets,
        })
    }

    /// Starts a fresh cluster and repopulates it from a snapshot: the
    /// coordinator adopts the file state, the bucket sites are spawned at
    /// their recorded levels, and contents are replayed (rebuilding
    /// LH\*<sub>RS</sub> parity when the new config enables it).
    pub fn restore(config: ClusterConfig, snapshot: &FileSnapshot) -> Result<LhCluster, LhError> {
        if let Some(p) = config.parity {
            // the replay path bypasses the insert-time size check, so an
            // oversized value would panic the bucket's slot encoder
            for b in &snapshot.buckets {
                if let Some((key, v)) = b.records.iter().find(|(_, v)| v.len() + 2 > p.slot_size) {
                    return Err(LhError::Rejected(format!(
                        "snapshot record {key} ({} bytes) exceeds the parity slot                          capacity {}; restore with a larger slot_size or without parity",
                        v.len(),
                        p.slot_size - 2
                    )));
                }
            }
        }
        let cluster = LhCluster::start(config);
        let control = cluster.network.register();
        control.send(
            cluster.coordinator,
            Wire::AdoptFileState {
                level: snapshot.level,
                split: snapshot.split,
            }
            .encode(),
        )?;
        {
            let mut spawner = cluster.spawner.lock();
            for b in &snapshot.buckets {
                if b.addr > 0 {
                    spawner(b.addr, b.level);
                }
            }
        }
        for b in &snapshot.buckets {
            // lint: allow(panic-freedom) -- the spawner loop directly above registered every snapshot bucket
            let site = cluster.directory.bucket_site(b.addr).expect("just spawned");
            control.send(
                site,
                Wire::TransferBatch {
                    level: b.level,
                    addr: b.addr,
                    records: b.records.clone(),
                }
                .encode(),
            )?;
        }
        Ok(cluster)
    }

    /// Stops every site thread and joins them.
    pub fn shutdown(self) {
        let control = self.network.register();
        for site in self.shutdown_sites.lock().drain(..) {
            let _ = control.send(site, Wire::Shutdown.encode());
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock();
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Level of bucket `addr` in a file whose true state is `image`.
fn bucket_level(addr: u64, image: ClientImage) -> u8 {
    if addr < image.split || addr >= (1u64 << image.level) {
        image.level + 1
    } else {
        image.level
    }
}

/// Builds the closure that materialises bucket sites (and, lazily, their
/// group's parity sites).
fn make_spawner(
    network: &Network,
    directory: &Arc<Directory>,
    config: &ClusterConfig,
    coordinator: SiteId,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_sites: &Arc<Mutex<Vec<SiteId>>>,
) -> BucketSpawner {
    let network = network.clone();
    let directory = directory.clone();
    let capacity = config.bucket_capacity;
    let parity = config.parity;
    let filter = config.filter.clone();
    let handles = handles.clone();
    let shutdown_sites = shutdown_sites.clone();
    Box::new(move |addr: u64, level: u8| {
        // lazily create the group's parity sites
        if let Some(cfg) = parity {
            let group = addr / cfg.group_size as u64;
            if directory.parity_sites(group).is_empty() {
                let mut sites = Vec::with_capacity(cfg.parity_count);
                for p in 0..cfg.parity_count {
                    let ep = network.register();
                    sites.push(ep.id());
                    shutdown_sites.lock().push(ep.id());
                    let state = ParityState::new(
                        group,
                        p as u32,
                        cfg.group_size,
                        cfg.parity_count,
                        cfg.slot_size,
                    );
                    handles
                        .lock()
                        .push(std::thread::spawn(move || run_parity(ep, state)));
                }
                directory.set_parity(group, sites);
            }
        }
        let ep = network.register();
        let site = ep.id();
        directory.set_bucket(addr, site);
        shutdown_sites.lock().push(site);
        let ctx = BucketCtx {
            directory: directory.clone(),
            coordinator,
            filter: filter.clone(),
            parity,
            // Each site gets its own labeled registry; updates flow into
            // the global aggregate so existing metric readers are
            // unaffected while per-site breakdowns become available.
            obs: sdds_obs::Registry::with_parent(
                format!("bucket-{addr}"),
                sdds_obs::Registry::global(),
            ),
        };
        let state = BucketState::new(addr, level, capacity, filter.index_element_bytes());
        handles
            .lock()
            .push(std::thread::spawn(move || run_bucket(ep, state, ctx)));
        site
    })
}
