//! Multi-process LH\* over the TCP transport.
//!
//! [`serve`] brings up one *site host*: an OS process (one per registry
//! rank) that owns every bucket whose address hashes to its rank
//! (`addr % num_servers`). Rank 0 additionally runs the split
//! coordinator. Bucket sites register under their bucket address
//! (`SiteRegistry::bucket_id`), so the client-visible addressing is
//! *static*: a [`Directory`] in static mode maps address → site id by
//! identity and the registry's modular partition decides which process
//! answers. [`TcpCluster`] is the client-side hub: it dials the same
//! registry and hands out ordinary [`LhClient`]s whose messages now
//! cross real sockets.
//!
//! Scope: parity (LH\*<sub>RS</sub>), kill/recover and snapshot/restore
//! remain channel-transport features — they need the cluster-wide
//! directory and spawner a single process provides. `serve` rejects
//! parity configs. Merges retire addresses only in the serving
//! processes' directories; a long-lived client that keeps addressing a
//! merged-away bucket sees the send fail and recovers through its
//! normal retry path (ingest/search workloads never delete, so this is
//! theoretical).

use crate::client::{LhClient, LhError};
use crate::cluster::{send_control, ClusterConfig, Directory, SiteBuilder};
use crate::coordinator::{run_coordinator, BucketRetirer, BucketSpawner};
use crate::messages::Wire;
use bytes::Bytes;
use parking_lot::Mutex;
use sdds_net::{Endpoint, NetConfig, Network, SiteId, SiteRegistry, COORD_ID};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Control messages between the coordinator's process and the site
/// hosts. These ride the same TCP fabric as [`Wire`] but address the
/// per-rank host endpoints (`SiteRegistry::host_id`), which speak only
/// this protocol — the two codecs never meet in one inbox.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum HostMsg {
    /// Materialise bucket `addr` at `level` on the receiving host.
    Spawn {
        /// Bucket address (also its site id).
        addr: u64,
        /// Initial bucket level.
        level: u8,
    },
    /// Sever every established connection (fault injection for tests;
    /// streams re-establish with backoff).
    DropConns,
    /// Shut down every local site and exit the host loop.
    Shutdown,
}

impl HostMsg {
    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = sdds_net::PooledBuf::take();
        // lint: allow(panic-freedom) -- plain-data enum with no map keys or non-string tags; serialization is infallible
        serde_json::to_writer(&mut buf, self).expect("HostMsg serializes");
        buf.into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Option<HostMsg> {
        serde_json::from_slice(payload).ok()
    }
}

/// A running site host; join it with [`wait`](ServeHandle::wait).
pub struct ServeHandle {
    host: JoinHandle<()>,
}

impl ServeHandle {
    /// Blocks until the host receives [`HostMsg::Shutdown`] (or its
    /// network dies) and every local site thread has been joined.
    pub fn wait(self) {
        let _ = self.host.join();
    }
}

/// Everything a host needs to materialise a bucket site locally.
struct SiteHost {
    network: Network,
    builder: SiteBuilder,
    /// Locally hosted sites that accept [`Wire::Shutdown`].
    local_sites: Arc<Mutex<Vec<SiteId>>>,
}

impl SiteHost {
    /// Registers bucket `addr` under its static id and starts its site
    /// thread. Returns `false` when the id is already taken in this
    /// process (a duplicate `Spawn` — first one wins).
    fn spawn_bucket(&self, addr: u64, level: u8) -> bool {
        let Some(ep) = self.network.register_with_id(SiteRegistry::bucket_id(addr)) else {
            return false;
        };
        self.local_sites.lock().push(ep.id());
        self.builder.launch(addr, level, ep);
        true
    }
}

/// Starts this process's share of a multi-process LH\* cluster and
/// returns once the listener is up and every rank-local site is running
/// (rank 0: the coordinator and bucket 0). The returned handle joins
/// the host control loop, which exits on [`HostMsg::Shutdown`] — sent
/// by [`TcpCluster::shutdown`] or `sdds serve`'s peer tooling.
pub fn serve(
    registry: SiteRegistry,
    rank: usize,
    config: ClusterConfig,
) -> Result<ServeHandle, LhError> {
    if config.parity.is_some() {
        return Err(LhError::Rejected(
            "parity requires the in-process transport (kill/recover need a cluster-wide spawner)"
                .into(),
        ));
    }
    if rank >= registry.num_servers() {
        return Err(LhError::Rejected(format!(
            "rank {rank} out of range: registry lists {} servers",
            registry.num_servers()
        )));
    }
    let network = Network::tcp_serve(registry.clone(), rank, config.net.clone())
        .map_err(|e| LhError::Rejected(format!("rank {rank}: bind failed: {e}")))?;
    let directory = Arc::new(Directory::new_static());
    let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    // SiteBuilder's own shutdown list is unused here (we track local
    // sites ourselves: the builder only records ids it registered, and
    // on TCP the host registers endpoints before handing them over).
    let builder_shutdown: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));
    let builder = SiteBuilder::new(
        &network,
        &directory,
        &config,
        SiteId(COORD_ID),
        &handles,
        &builder_shutdown,
    );
    let host = Arc::new(SiteHost {
        network: network.clone(),
        builder,
        local_sites: Arc::new(Mutex::new(Vec::new())),
    });

    if rank == 0 {
        let coordinator_ep = network
            .register_with_id(SiteId(COORD_ID))
            .ok_or_else(|| LhError::Rejected("coordinator id already registered".into()))?;
        host.local_sites.lock().push(coordinator_ep.id());
        // The primordial bucket lives wherever address 0 hashes — which
        // is always rank 0 (`0 % n == 0`).
        host.spawn_bucket(0, 0);

        let spawner = make_tcp_spawner(registry.clone(), host.clone(), directory.clone());
        let dir = directory.clone();
        let retirer: BucketRetirer = Box::new(move |addr| dir.clear_bucket(addr));
        let dir = directory.clone();
        let lookup = Box::new(move |addr: u64| dir.bucket_site(addr));
        let budget = config.drain_budget;
        handles.lock().push(std::thread::spawn(move || {
            run_coordinator(coordinator_ep, spawner, retirer, lookup, budget)
        }));
    }

    let host_ep = network
        .register_with_id(SiteRegistry::host_id(rank))
        .ok_or_else(|| LhError::Rejected("host id already registered".into()))?;
    let loop_host = host.clone();
    let loop_handles = handles.clone();
    let h = std::thread::spawn(move || host_loop(host_ep, loop_host, loop_handles));
    Ok(ServeHandle { host: h })
}

/// The host control loop: spawns buckets the coordinator assigns to
/// this rank, severs connections on request, and tears the process's
/// sites down on shutdown.
fn host_loop(ep: Endpoint, host: Arc<SiteHost>, handles: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        let Ok(env) = ep.recv() else {
            break;
        };
        match HostMsg::decode(&env.payload) {
            Some(HostMsg::Spawn { addr, level }) => {
                let fresh = host.spawn_bucket(addr, level);
                if !fresh {
                    sdds_obs::counter("lh.serve.duplicate_spawns").inc();
                }
            }
            Some(HostMsg::DropConns) => host.network.drop_connections(),
            Some(HostMsg::Shutdown) => break,
            None => {}
        }
    }
    for site in host.local_sites.lock().drain(..) {
        let _ = send_control(&ep, site, Wire::Shutdown.encode());
    }
    let joins: Vec<JoinHandle<()>> = handles.lock().drain(..).collect();
    for h in joins {
        let _ = h.join();
    }
}

/// The coordinator's bucket spawner over TCP: local addresses
/// materialise in-process; remote ones become a [`HostMsg::Spawn`] to
/// the owning rank's host endpoint. Either way the new site's id is the
/// bucket address — the coordinator can hand it to the split victim
/// immediately, while the remote registration races the victim's first
/// `TransferBatch` (the transport parks deliveries for unregistered
/// owned ids during a spawn grace window, so the race is benign).
fn make_tcp_spawner(
    registry: SiteRegistry,
    host: Arc<SiteHost>,
    directory: Arc<Directory>,
) -> BucketSpawner {
    // Dynamic endpoint for host-control sends; its hello broadcast makes
    // it routable from every rank.
    let control = host.network.register();
    Box::new(move |addr: u64, level: u8| {
        let id = SiteRegistry::bucket_id(addr);
        // lint: allow(panic-freedom) -- bucket ids are below DYN_BASE, always owned by some rank
        let owner = registry.owner_rank(id).expect("bucket id has an owner");
        if owner == 0 {
            host.spawn_bucket(addr, level);
        } else {
            let msg = HostMsg::Spawn { addr, level }.encode();
            if send_control(&control, SiteRegistry::host_id(owner), msg).is_err() {
                sdds_obs::counter("lh.serve.spawn_send_failures").inc();
            }
        }
        // Un-retire the address in the static directory (no-op unless a
        // merge retired it earlier).
        directory.set_bucket(addr, id);
        id
    })
}

/// Client-side hub for a TCP cluster: dials the registry's ranks lazily
/// and hands out [`LhClient`]s addressing the static bucket ids.
pub struct TcpCluster {
    registry: SiteRegistry,
    network: Network,
    directory: Arc<Directory>,
    client_timeout: std::time::Duration,
}

impl TcpCluster {
    /// Connects to a served cluster. No I/O happens until the first
    /// send (connections are dialed lazily, with backoff).
    pub fn connect(registry: SiteRegistry, net: NetConfig) -> TcpCluster {
        let network = Network::tcp_client(registry.clone(), net);
        TcpCluster {
            registry,
            network,
            directory: Arc::new(Directory::new_static()),
            client_timeout: std::time::Duration::from_secs(10),
        }
    }

    /// Sets the per-operation timeout handed to clients created after
    /// this call.
    pub fn set_client_timeout(&mut self, timeout: std::time::Duration) {
        self.client_timeout = timeout;
    }

    /// Registers a new client of the file.
    pub fn client(&self) -> LhClient {
        let client = LhClient::new(
            self.network.register(),
            self.directory.clone(),
            SiteId(COORD_ID),
        );
        client.set_timeout(self.client_timeout);
        client
    }

    /// The underlying network (for traffic statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Severs this client process's established connections (they
    /// re-establish with backoff on the next send).
    pub fn drop_connections(&self) {
        self.network.drop_connections();
    }

    /// Asks rank `rank`'s host to sever all of *its* connections —
    /// fault injection across the cluster, not just this process.
    pub fn sever_rank(&self, rank: usize) -> Result<(), LhError> {
        let control = self.network.register();
        send_control(
            &control,
            SiteRegistry::host_id(rank),
            HostMsg::DropConns.encode(),
        )
        .map_err(LhError::Net)
    }

    /// Shuts the whole cluster down: every rank's host loop exits after
    /// stopping its local sites, and the `serve` processes return.
    pub fn shutdown(&self) {
        let control = self.network.register();
        for rank in 0..self.registry.num_servers() {
            let _ = send_control(
                &control,
                SiteRegistry::host_id(rank),
                HostMsg::Shutdown.encode(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Reserves `n` distinct loopback ports by binding and dropping
    /// listeners. Racy in principle, fine for tests.
    fn free_ports(n: usize) -> Vec<u16> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").port())
            .collect()
    }

    fn local_registry(n: usize) -> SiteRegistry {
        let addrs: Vec<String> = free_ports(n)
            .into_iter()
            .map(|p| format!("127.0.0.1:{p}"))
            .collect();
        SiteRegistry::from_addrs(addrs).expect("registry")
    }

    /// Three "ranks" in one process (threads stand in for processes —
    /// the full multi-process path is exercised by `tests/tcp_cluster.rs`
    /// via the `sdds serve` binary): inserts spread over real sockets,
    /// lookups and scans return, splits spawn buckets on remote ranks.
    #[test]
    fn three_rank_cluster_in_threads_serves_traffic() {
        let registry = local_registry(3);
        let config = ClusterConfig {
            bucket_capacity: 8,
            ..ClusterConfig::default()
        };
        let mut serves = Vec::new();
        for rank in 0..3 {
            serves.push(serve(registry.clone(), rank, config.clone()).expect("serve"));
        }
        let hub = TcpCluster::connect(registry, NetConfig::default());
        let client = hub.client();
        for key in 0..200u64 {
            client
                .insert(key, format!("value-{key}").into_bytes())
                .expect("insert");
        }
        for key in (0..200u64).step_by(17) {
            assert_eq!(
                client.lookup(key).expect("lookup"),
                Some(format!("value-{key}").into_bytes())
            );
        }
        assert!(client.image().extent() > 1, "file must have split");
        hub.shutdown();
        for s in serves {
            s.wait();
        }
    }

    #[test]
    fn serve_rejects_parity_configs() {
        let registry = local_registry(1);
        let config = ClusterConfig {
            parity: Some(crate::cluster::ParityConfig::default()),
            ..ClusterConfig::default()
        };
        assert!(matches!(
            serve(registry, 0, config),
            Err(LhError::Rejected(_))
        ));
    }

    #[test]
    fn serve_rejects_out_of_range_rank() {
        let registry = local_registry(2);
        assert!(matches!(
            serve(registry, 5, ClusterConfig::default()),
            Err(LhError::Rejected(_))
        ));
    }
}
