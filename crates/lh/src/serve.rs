//! Multi-process LH\* over the TCP transport.
//!
//! [`serve`] brings up one *site host*: an OS process (one per registry
//! rank) that owns every bucket whose address hashes to its rank
//! (`addr % num_servers`). Rank 0 additionally runs the split
//! coordinator. Bucket sites register under their bucket address
//! (`SiteRegistry::bucket_id`), so the client-visible addressing is
//! *static*: a [`Directory`] in static mode maps address → site id by
//! identity and the registry's modular partition decides which process
//! answers. [`TcpCluster`] is the client-side hub: it dials the same
//! registry and hands out ordinary [`LhClient`]s whose messages now
//! cross real sockets.
//!
//! Scope: parity (LH\*<sub>RS</sub>), kill/recover and snapshot/restore
//! remain channel-transport features — they need the cluster-wide
//! directory and spawner a single process provides. `serve` rejects
//! parity configs. Merges retire addresses only in the serving
//! processes' directories; a long-lived client that keeps addressing a
//! merged-away bucket sees the send fail and recovers through its
//! normal retry path (ingest/search workloads never delete, so this is
//! theoretical).

use crate::client::{LhClient, LhError};
use crate::cluster::{send_control, ClusterConfig, Directory, ObsOptions, SiteBuilder};
use crate::coordinator::{run_coordinator, BucketRetirer, BucketSpawner};
use crate::health;
use crate::messages::Wire;
use bytes::Bytes;
use parking_lot::Mutex;
use sdds_net::{Endpoint, NetConfig, NetError, Network, SiteId, SiteRegistry, COORD_ID};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Control messages between the coordinator's process and the site
/// hosts. These ride the same TCP fabric as [`Wire`] but address the
/// per-rank host endpoints (`SiteRegistry::host_id`), which speak only
/// this protocol — the two codecs never meet in one inbox.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) enum HostMsg {
    /// Materialise bucket `addr` at `level` on the receiving host.
    Spawn {
        /// Bucket address (also its site id).
        addr: u64,
        /// Initial bucket level.
        level: u8,
    },
    /// Sever every established connection (fault injection for tests;
    /// streams re-establish with backoff).
    DropConns,
    /// Scrape request from a [`ClusterObs`](crate::ClusterObs) client:
    /// the host replies with one [`HostMsg::ObsReport`] to `reply_to`
    /// (a dynamic client endpoint id). See `docs/PROTOCOL.md` for the
    /// wire format.
    ObsPull {
        /// Correlates the report with the request (echoed verbatim).
        req_id: u64,
        /// Endpoint id the report must be sent to.
        reply_to: u32,
        /// Ship the rank's metrics (aggregate + per-site snapshots).
        metrics: bool,
        /// Drain and ship the rank's flight-recorder spans.
        spans: bool,
        /// Ship the rank's timestamped snapshot-ring history.
        history: bool,
    },
    /// One rank's scrape reply. Metrics travel as `MetricsSnapshot`
    /// JSON documents, spans as the flight recorder's JSONL schema —
    /// the same formats the CLI writes to sidecar files.
    ObsReport {
        /// The request's `req_id`, echoed.
        req_id: u64,
        /// The reporting rank.
        rank: u32,
        /// The rank's process-global snapshot (when `metrics` was set).
        metrics: Option<String>,
        /// Per-site (per-bucket) snapshots (when `metrics` was set).
        sites: Vec<String>,
        /// Drained spans as JSONL (empty unless `spans` was set).
        spans: String,
        /// Snapshot ring: (unix millis, snapshot JSON), oldest first
        /// (empty unless `history` was set).
        history: Vec<(u64, String)>,
    },
    /// Shut down every local site and exit the host loop.
    Shutdown,
}

impl HostMsg {
    /// Encodes to JSON. Infallible: `HostMsg` is a plain-data enum with
    /// no map keys or non-string tags, so serialization cannot fail —
    /// but rather than asserting that with a panic, the unreachable
    /// error path ships an empty frame (which decodes to `None` and is
    /// dropped by the receiver) and counts `lh.host_encode_failures`.
    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = sdds_net::PooledBuf::take();
        if serde_json::to_writer(&mut buf, self).is_err() {
            sdds_obs::counter("lh.host_encode_failures").inc();
            return Bytes::new();
        }
        buf.into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Option<HostMsg> {
        serde_json::from_slice(payload).ok()
    }
}

/// A running site host; join it with [`wait`](ServeHandle::wait).
pub struct ServeHandle {
    host: JoinHandle<()>,
}

impl ServeHandle {
    /// Blocks until the host receives [`HostMsg::Shutdown`] (or its
    /// network dies) and every local site thread has been joined.
    pub fn wait(self) {
        let _ = self.host.join();
    }
}

/// Everything a host needs to materialise a bucket site locally.
struct SiteHost {
    network: Network,
    builder: SiteBuilder,
    /// Locally hosted sites that accept [`Wire::Shutdown`].
    local_sites: Arc<Mutex<Vec<SiteId>>>,
}

impl SiteHost {
    /// Registers bucket `addr` under its static id and starts its site
    /// thread. Returns `false` when the id is already taken in this
    /// process (a duplicate `Spawn` — first one wins).
    fn spawn_bucket(&self, addr: u64, level: u8) -> bool {
        let Some(ep) = self.network.register_with_id(SiteRegistry::bucket_id(addr)) else {
            return false;
        };
        self.local_sites.lock().push(ep.id());
        self.builder.launch(addr, level, ep);
        true
    }
}

/// Starts this process's share of a multi-process LH\* cluster and
/// returns once the listener is up and every rank-local site is running
/// (rank 0: the coordinator and bucket 0). The returned handle joins
/// the host control loop, which exits on [`HostMsg::Shutdown`] — sent
/// by [`TcpCluster::shutdown`] or `sdds serve`'s peer tooling.
pub fn serve(
    registry: SiteRegistry,
    rank: usize,
    config: ClusterConfig,
) -> Result<ServeHandle, LhError> {
    if config.parity.is_some() {
        return Err(LhError::Rejected(
            "parity requires the in-process transport (kill/recover need a cluster-wide spawner)"
                .into(),
        ));
    }
    if rank >= registry.num_servers() {
        return Err(LhError::Rejected(format!(
            "rank {rank} out of range: registry lists {} servers",
            registry.num_servers()
        )));
    }
    let network = Network::tcp_serve(registry.clone(), rank, config.net.clone())
        .map_err(|e| LhError::Rejected(format!("rank {rank}: bind failed: {e}")))?;
    let directory = Arc::new(Directory::new_static());
    let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    // SiteBuilder's own shutdown list is unused here (we track local
    // sites ourselves: the builder only records ids it registered, and
    // on TCP the host registers endpoints before handing them over).
    let builder_shutdown: Arc<Mutex<Vec<SiteId>>> = Arc::new(Mutex::new(Vec::new()));
    let builder = SiteBuilder::new(
        &network,
        &directory,
        &config,
        SiteId(COORD_ID),
        &handles,
        &builder_shutdown,
    );
    let host = Arc::new(SiteHost {
        network: network.clone(),
        builder,
        local_sites: Arc::new(Mutex::new(Vec::new())),
    });

    if rank == 0 {
        let coordinator_ep = network
            .register_with_id(SiteId(COORD_ID))
            .ok_or_else(|| LhError::Rejected("coordinator id already registered".into()))?;
        host.local_sites.lock().push(coordinator_ep.id());
        // The primordial bucket lives wherever address 0 hashes — which
        // is always rank 0 (`0 % n == 0`).
        host.spawn_bucket(0, 0);

        let spawner = make_tcp_spawner(registry.clone(), host.clone(), directory.clone());
        let dir = directory.clone();
        let retirer: BucketRetirer = Box::new(move |addr| dir.clear_bucket(addr));
        let dir = directory.clone();
        let lookup = Box::new(move |addr: u64| dir.bucket_site(addr));
        let budget = config.drain_budget;
        handles.lock().push(std::thread::spawn(move || {
            run_coordinator(coordinator_ep, spawner, retirer, lookup, budget)
        }));
    }

    let host_ep = network
        .register_with_id(SiteRegistry::host_id(rank))
        .ok_or_else(|| LhError::Rejected("host id already registered".into()))?;
    let loop_host = host.clone();
    let loop_handles = handles.clone();
    let obs = config.obs.clone();
    let h = std::thread::spawn(move || host_loop(host_ep, loop_host, loop_handles, rank, obs));
    Ok(ServeHandle { host: h })
}

/// The host's periodic observability state: the snapshot ring, the
/// optional trace-flush sink, and the watchdog gauge.
struct ObsTicker {
    opts: ObsOptions,
    /// (unix millis, snapshot JSON), oldest first, capped at
    /// `opts.history`.
    ring: VecDeque<(u64, String)>,
    sink: Option<sdds_obs::trace::TraceSink<std::io::BufWriter<std::fs::File>>>,
    age_gauge: sdds_obs::Gauge,
}

impl ObsTicker {
    fn new(opts: ObsOptions) -> ObsTicker {
        let sink = opts
            .trace_flush
            .as_ref()
            .and_then(|path| match std::fs::File::create(path) {
                Ok(f) => Some(sdds_obs::trace::TraceSink::new(std::io::BufWriter::new(f))),
                Err(_) => {
                    sdds_obs::counter("obs.trace_flush_failures").inc();
                    None
                }
            });
        ObsTicker {
            opts,
            ring: VecDeque::new(),
            sink,
            age_gauge: sdds_obs::gauge("lh.loop_last_tick_age"),
        }
    }

    /// One observability tick: refresh the watchdog gauge, sample the
    /// snapshot ring, flush the flight recorder if configured.
    fn tick(&mut self) {
        self.refresh_watchdog();
        if self.opts.history > 0 {
            self.ring.push_back((unix_millis(), snapshot_json()));
            while self.ring.len() > self.opts.history {
                self.ring.pop_front();
            }
        }
        if let Some(sink) = &mut self.sink {
            if sink.drain().is_err() {
                sdds_obs::counter("obs.trace_flush_failures").inc();
            }
        }
    }

    /// Publishes the oldest in-flight dispatch age (milliseconds) so a
    /// scrape sees a wedged loop as a growing gauge.
    fn refresh_watchdog(&self) {
        self.age_gauge
            .set(health::max_busy_age().as_millis() as i64);
    }
}

fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn snapshot_json() -> String {
    sdds_obs::MetricsSnapshot::capture().to_json()
}

/// Drains the flight recorder into one JSONL string.
fn spans_jsonl() -> String {
    let spans = sdds_obs::trace::drain_spans();
    let mut out = String::with_capacity(spans.len() * 160);
    for s in &spans {
        out.push_str(&s.to_json_line());
        out.push('\n');
    }
    out
}

/// The host control loop: spawns buckets the coordinator assigns to
/// this rank, severs connections on request, answers observability
/// scrapes, runs the periodic obs tick, and tears the process's sites
/// down on shutdown.
fn host_loop(
    ep: Endpoint,
    host: Arc<SiteHost>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    rank: usize,
    obs: ObsOptions,
) {
    let mut ticker = ObsTicker::new(obs);
    let tick = ticker.opts.tick.max(Duration::from_millis(1));
    let mut next_tick = Instant::now() + tick;
    loop {
        let wait = next_tick.saturating_duration_since(Instant::now());
        let env = match ep.recv_timeout(wait) {
            Ok(env) => env,
            Err(NetError::Timeout) => {
                ticker.tick();
                next_tick = Instant::now() + tick;
                continue;
            }
            Err(_) => break,
        };
        match HostMsg::decode(&env.payload) {
            Some(HostMsg::Spawn { addr, level }) => {
                let fresh = host.spawn_bucket(addr, level);
                if !fresh {
                    sdds_obs::counter("lh.serve.duplicate_spawns").inc();
                }
            }
            Some(HostMsg::DropConns) => host.network.drop_connections(),
            Some(HostMsg::ObsPull {
                req_id,
                reply_to,
                metrics,
                spans,
                history,
            }) => {
                sdds_obs::counter("obs.scrape_requests").inc();
                // Refresh the watchdog gauge first so the shipped
                // snapshot carries a current loop-age reading.
                ticker.refresh_watchdog();
                let report = HostMsg::ObsReport {
                    req_id,
                    rank: rank as u32,
                    metrics: metrics.then(snapshot_json),
                    sites: if metrics {
                        sdds_obs::capture_sites()
                            .iter()
                            .map(|s| s.to_json())
                            .collect()
                    } else {
                        Vec::new()
                    },
                    spans: if spans { spans_jsonl() } else { String::new() },
                    history: if history {
                        ticker.ring.iter().cloned().collect()
                    } else {
                        Vec::new()
                    },
                };
                let _ = send_control(&ep, SiteId(reply_to), report.encode());
            }
            // Client-bound; a misrouted report is dropped, not answered.
            Some(HostMsg::ObsReport { .. }) => {}
            Some(HostMsg::Shutdown) => break,
            None => {}
        }
    }
    for site in host.local_sites.lock().drain(..) {
        let _ = send_control(&ep, site, Wire::Shutdown.encode());
    }
    let joins: Vec<JoinHandle<()>> = handles.lock().drain(..).collect();
    for h in joins {
        let _ = h.join();
    }
}

/// The coordinator's bucket spawner over TCP: local addresses
/// materialise in-process; remote ones become a [`HostMsg::Spawn`] to
/// the owning rank's host endpoint. Either way the new site's id is the
/// bucket address — the coordinator can hand it to the split victim
/// immediately, while the remote registration races the victim's first
/// `TransferBatch` (the transport parks deliveries for unregistered
/// owned ids during a spawn grace window, so the race is benign).
fn make_tcp_spawner(
    registry: SiteRegistry,
    host: Arc<SiteHost>,
    directory: Arc<Directory>,
) -> BucketSpawner {
    // Dynamic endpoint for host-control sends; its hello broadcast makes
    // it routable from every rank.
    let control = host.network.register();
    Box::new(move |addr: u64, level: u8| {
        let id = SiteRegistry::bucket_id(addr);
        // lint: allow(panic-freedom) -- bucket ids are below DYN_BASE, always owned by some rank
        let owner = registry.owner_rank(id).expect("bucket id has an owner");
        if owner == 0 {
            host.spawn_bucket(addr, level);
        } else {
            let msg = HostMsg::Spawn { addr, level }.encode();
            if send_control(&control, SiteRegistry::host_id(owner), msg).is_err() {
                sdds_obs::counter("lh.serve.spawn_send_failures").inc();
            }
        }
        // Un-retire the address in the static directory (no-op unless a
        // merge retired it earlier).
        directory.set_bucket(addr, id);
        id
    })
}

/// Client-side hub for a TCP cluster: dials the registry's ranks lazily
/// and hands out [`LhClient`]s addressing the static bucket ids.
pub struct TcpCluster {
    registry: SiteRegistry,
    network: Network,
    directory: Arc<Directory>,
    client_timeout: std::time::Duration,
}

impl TcpCluster {
    /// Connects to a served cluster. No I/O happens until the first
    /// send (connections are dialed lazily, with backoff).
    pub fn connect(registry: SiteRegistry, net: NetConfig) -> TcpCluster {
        let network = Network::tcp_client(registry.clone(), net);
        TcpCluster {
            registry,
            network,
            directory: Arc::new(Directory::new_static()),
            client_timeout: std::time::Duration::from_secs(10),
        }
    }

    /// Sets the per-operation timeout handed to clients created after
    /// this call.
    pub fn set_client_timeout(&mut self, timeout: std::time::Duration) {
        self.client_timeout = timeout;
    }

    /// Registers a new client of the file.
    pub fn client(&self) -> LhClient {
        let client = LhClient::new(
            self.network.register(),
            self.directory.clone(),
            SiteId(COORD_ID),
        );
        client.set_timeout(self.client_timeout);
        client
    }

    /// The underlying network (for traffic statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of server ranks in the cluster's registry.
    pub fn num_ranks(&self) -> usize {
        self.registry.num_servers()
    }

    /// An observability collector scraping every rank of this cluster.
    pub fn obs(&self) -> crate::ClusterObs {
        crate::ClusterObs::new(self.network.register(), self.registry.num_servers())
    }

    /// Severs this client process's established connections (they
    /// re-establish with backoff on the next send).
    pub fn drop_connections(&self) {
        self.network.drop_connections();
    }

    /// Asks rank `rank`'s host to sever all of *its* connections —
    /// fault injection across the cluster, not just this process.
    pub fn sever_rank(&self, rank: usize) -> Result<(), LhError> {
        let control = self.network.register();
        send_control(
            &control,
            SiteRegistry::host_id(rank),
            HostMsg::DropConns.encode(),
        )
        .map_err(LhError::Net)
    }

    /// Shuts the whole cluster down: every rank's host loop exits after
    /// stopping its local sites, and the `serve` processes return.
    pub fn shutdown(&self) {
        let control = self.network.register();
        for rank in 0..self.registry.num_servers() {
            let _ = send_control(
                &control,
                SiteRegistry::host_id(rank),
                HostMsg::Shutdown.encode(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Reserves `n` distinct loopback ports by binding and dropping
    /// listeners. Racy in principle, fine for tests.
    fn free_ports(n: usize) -> Vec<u16> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").port())
            .collect()
    }

    fn local_registry(n: usize) -> SiteRegistry {
        let addrs: Vec<String> = free_ports(n)
            .into_iter()
            .map(|p| format!("127.0.0.1:{p}"))
            .collect();
        SiteRegistry::from_addrs(addrs).expect("registry")
    }

    /// Three "ranks" in one process (threads stand in for processes —
    /// the full multi-process path is exercised by `tests/tcp_cluster.rs`
    /// via the `sdds serve` binary): inserts spread over real sockets,
    /// lookups and scans return, splits spawn buckets on remote ranks.
    #[test]
    fn three_rank_cluster_in_threads_serves_traffic() {
        let registry = local_registry(3);
        let config = ClusterConfig {
            bucket_capacity: 8,
            ..ClusterConfig::default()
        };
        let mut serves = Vec::new();
        for rank in 0..3 {
            serves.push(serve(registry.clone(), rank, config.clone()).expect("serve"));
        }
        let hub = TcpCluster::connect(registry, NetConfig::default());
        let client = hub.client();
        for key in 0..200u64 {
            client
                .insert(key, format!("value-{key}").into_bytes())
                .expect("insert");
        }
        for key in (0..200u64).step_by(17) {
            assert_eq!(
                client.lookup(key).expect("lookup"),
                Some(format!("value-{key}").into_bytes())
            );
        }
        assert!(client.image().extent() > 1, "file must have split");
        hub.shutdown();
        for s in serves {
            s.wait();
        }
    }

    /// Scrapes a three-rank in-thread cluster: every rank reports, the
    /// aggregate equals the per-rank sum for every counter, and the
    /// snapshot ring fills once the obs tick has fired. (The ranks share
    /// one process-global registry here, so per-rank snapshots are
    /// identical — the multi-process distinctness is covered by
    /// `tests/cluster_obs.rs`.)
    #[test]
    fn obs_scrape_reports_every_rank_and_sums_counters() {
        let registry = local_registry(3);
        let config = ClusterConfig {
            bucket_capacity: 8,
            obs: ObsOptions {
                tick: Duration::from_millis(20),
                history: 8,
                trace_flush: None,
            },
            ..ClusterConfig::default()
        };
        let mut serves = Vec::new();
        for rank in 0..3 {
            serves.push(serve(registry.clone(), rank, config.clone()).expect("serve"));
        }
        let hub = TcpCluster::connect(registry, NetConfig::default());
        let client = hub.client();
        for key in 0..60u64 {
            client
                .insert(key, format!("value-{key}").into_bytes())
                .expect("insert");
        }
        // Let at least one obs tick land so the history ring is non-empty.
        std::thread::sleep(Duration::from_millis(80));
        let scrape = hub
            .obs()
            .scrape(&crate::ScrapeOptions {
                history: true,
                ..Default::default()
            })
            .expect("scrape");
        assert!(scrape.missing.is_empty(), "missing: {:?}", scrape.missing);
        assert_eq!(scrape.ranks.len(), 3);
        assert!(scrape
            .aggregate
            .counters
            .keys()
            .any(|name| name.starts_with("lh.requests_hops_")));
        for (name, total) in &scrape.aggregate.counters {
            let sum: u64 = scrape
                .ranks
                .iter()
                .filter_map(|r| r.metrics.as_ref())
                .filter_map(|m| m.counters.get(name))
                .sum();
            assert_eq!(*total, sum, "counter {name} must sum across ranks");
        }
        for r in &scrape.ranks {
            assert!(!r.history.is_empty(), "rank {} ring empty", r.rank);
        }
        hub.shutdown();
        for s in serves {
            s.wait();
        }
    }

    #[test]
    fn serve_rejects_parity_configs() {
        let registry = local_registry(1);
        let config = ClusterConfig {
            parity: Some(crate::cluster::ParityConfig::default()),
            ..ClusterConfig::default()
        };
        assert!(matches!(
            serve(registry, 0, config),
            Err(LhError::Rejected(_))
        ));
    }

    #[test]
    fn serve_rejects_out_of_range_rank() {
        let registry = local_registry(2);
        assert!(matches!(
            serve(registry, 5, ClusterConfig::default()),
            Err(LhError::Rejected(_))
        ));
    }
}
