//! Batch draining and retryable sends for site event loops.
//!
//! Every site thread (bucket, coordinator, parity) wakes up, receives
//! *one* message blockingly, then greedily drains its inbox up to a
//! budget before dispatching the whole batch — paying the condvar
//! roundtrip, gauge sampling, and wakeup bookkeeping once per batch
//! instead of once per message. A drain budget of 1 reproduces the
//! historical one-message-per-wakeup loop exactly (the bench's equality
//! baseline).
//!
//! With bounded inboxes (`NetConfig::inbox_capacity`), any send can now
//! be rejected by admission control. Client-bound replies may be shed —
//! the client's retransmit machinery re-requests them — but
//! control-plane messages (overflow reports, transfer batches/acks,
//! split/merge completions, parity deltas) must eventually land or the
//! protocol stalls. [`SendQueue`] parks those and retries them at every
//! end-of-batch, and — via the `recv_timeout` idle tick — even when no
//! new traffic arrives to wake the loop.

use crate::messages::Wire;
use bytes::Bytes;
use sdds_net::{Endpoint, Envelope, NetError, SiteId};
use sdds_obs::trace::TraceContext;
use std::time::Duration;

/// Default number of messages a site event loop dispatches per wakeup.
pub const DEFAULT_DRAIN_BUDGET: usize = 64;

/// Upper bound on how long a parked control-plane resend can wait when
/// no new traffic wakes the loop.
pub(crate) const IDLE_TICK: Duration = Duration::from_millis(2);

/// What one wakeup of the event loop produced.
pub(crate) enum Wakeup {
    /// At least one envelope was drained into the batch.
    Batch,
    /// The idle tick elapsed with no traffic: flush deferred work.
    Idle,
    /// The channel is gone; the loop should exit.
    Disconnected,
}

/// Blocks for one envelope (bounded by `idle` when given), then greedily
/// drains up to `budget` envelopes total without blocking.
pub(crate) fn fill_batch(
    endpoint: &Endpoint,
    budget: usize,
    idle: Option<Duration>,
    batch: &mut Vec<Envelope>,
) -> Wakeup {
    batch.clear();
    let first = match idle {
        Some(tick) => match endpoint.recv_timeout(tick) {
            Ok(env) => env,
            Err(NetError::Timeout) => return Wakeup::Idle,
            Err(_) => return Wakeup::Disconnected,
        },
        None => match endpoint.recv() {
            Ok(env) => env,
            Err(_) => return Wakeup::Disconnected,
        },
    };
    batch.push(first);
    while batch.len() < budget {
        match endpoint.try_recv() {
            Ok(env) => batch.push(env),
            Err(_) => break,
        }
    }
    Wakeup::Batch
}

/// Outgoing sends with an admission-control retry queue (see module
/// docs). The queue only ever holds messages a bounded inbox rejected,
/// so it is empty on the historical unbounded configuration.
pub(crate) struct SendQueue {
    parked: Vec<(SiteId, Bytes, Option<TraceContext>)>,
}

impl SendQueue {
    pub(crate) fn new() -> SendQueue {
        SendQueue { parked: Vec::new() }
    }

    /// Sends one outgoing message, parking a control-plane message the
    /// destination's admission control rejected. `payload` is `msg`
    /// already encoded (the caller encodes once; a parked retry reuses
    /// the same bytes).
    pub(crate) fn send(
        &mut self,
        endpoint: &Endpoint,
        to: SiteId,
        msg: &Wire,
        payload: Bytes,
        ctx: Option<TraceContext>,
    ) {
        match endpoint.send_traced(to, payload.clone(), ctx) {
            Err(NetError::Overloaded(_)) if must_land(msg) => {
                self.parked.push((to, payload, ctx));
            }
            // Shed client-bound replies (the client retransmits) and
            // sends to peers that already shut down are fine to lose.
            _ => {}
        }
    }

    /// Retries every parked send once, re-parking the still-rejected.
    pub(crate) fn flush(&mut self, endpoint: &Endpoint) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        for (to, payload, ctx) in parked {
            if let Err(NetError::Overloaded(_)) = endpoint.send_traced(to, payload.clone(), ctx) {
                self.parked.push((to, payload, ctx));
            }
        }
    }

    /// Whether any rejected control-plane send is awaiting a retry.
    pub(crate) fn has_parked(&self) -> bool {
        !self.parked.is_empty()
    }
}

/// Whether a message must eventually be delivered for the protocol to
/// make progress (vs. a client-bound reply the client re-requests).
fn must_land(msg: &Wire) -> bool {
    !matches!(
        msg,
        Wire::Response { .. }
            | Wire::ScanResp { .. }
            | Wire::SlotsState { .. }
            | Wire::DumpState { .. }
            | Wire::ParityState { .. }
            | Wire::ExtentResp { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_net::{NetConfig, Network};

    #[test]
    fn fill_batch_drains_up_to_budget() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        for i in 0..10u8 {
            a.send(a.id(), Bytes::copy_from_slice(&[i])).unwrap();
        }
        let mut batch = Vec::new();
        assert!(matches!(fill_batch(&a, 4, None, &mut batch), Wakeup::Batch));
        assert_eq!(batch.len(), 4);
        assert!(matches!(
            fill_batch(&a, 64, None, &mut batch),
            Wakeup::Batch
        ));
        assert_eq!(batch.len(), 6, "second wakeup drains the remainder");
        let payloads: Vec<u8> = batch.iter().map(|e| e.payload[0]).collect();
        assert_eq!(payloads, vec![4, 5, 6, 7, 8, 9], "FIFO order preserved");
    }

    #[test]
    fn fill_batch_budget_one_is_single_message_dispatch() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        for i in 0..3u8 {
            a.send(a.id(), Bytes::copy_from_slice(&[i])).unwrap();
        }
        let mut batch = Vec::new();
        for i in 0..3u8 {
            assert!(matches!(fill_batch(&a, 1, None, &mut batch), Wakeup::Batch));
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].payload[0], i);
        }
    }

    #[test]
    fn fill_batch_idle_tick_fires_on_empty_inbox() {
        let net = Network::new(NetConfig::default());
        let a = net.register();
        let mut batch = Vec::new();
        assert!(matches!(
            fill_batch(&a, 8, Some(Duration::from_millis(1)), &mut batch),
            Wakeup::Idle
        ));
        assert!(batch.is_empty());
    }

    #[test]
    fn send_queue_parks_control_plane_and_flushes() {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(1),
            ..NetConfig::default()
        });
        let a = net.register();
        let b = net.register();
        let mut q = SendQueue::new();
        let ov = Wire::Overflow {
            addr: 1,
            level: 0,
            size: 9,
        };
        q.send(&a, b.id(), &ov, ov.encode(), None);
        assert!(!q.has_parked(), "first send fits the 1-deep inbox");
        q.send(&a, b.id(), &ov, ov.encode(), None);
        assert!(q.has_parked(), "second send is rejected and parked");
        // Still rejected while the inbox is full.
        q.flush(&a);
        assert!(q.has_parked());
        // Draining the inbox lets the retry land.
        b.recv().unwrap();
        q.flush(&a);
        assert!(!q.has_parked());
        assert!(b.try_recv().is_ok(), "parked overflow report delivered");
    }

    #[test]
    fn send_queue_sheds_client_replies() {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(1),
            ..NetConfig::default()
        });
        let a = net.register();
        let b = net.register();
        let mut q = SendQueue::new();
        let resp = Wire::Response {
            req_id: 1,
            result: crate::messages::OpResult::Found { value: None },
            served_by: 0,
            bucket_level: 0,
            hops: 0,
        };
        q.send(&a, b.id(), &resp, resp.encode(), None);
        q.send(&a, b.id(), &resp, resp.encode(), None);
        assert!(
            !q.has_parked(),
            "shed replies are not parked — the client retransmits"
        );
    }
}
