//! The LH\* wire protocol.
//!
//! Every message is a serde-serialized [`Wire`] variant. JSON is used as
//! the wire format: the reproduction's benchmarks measure message counts
//! and protocol shape (the paper's constant-hop claims), not marshalling
//! micro-costs, and JSON keeps captured traffic debuggable.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A key operation requested by a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Insert or overwrite `key`.
    Insert {
        /// Record key.
        key: u64,
        /// Record payload.
        value: Vec<u8>,
    },
    /// Look up `key`.
    Lookup {
        /// Record key.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// Record key.
        key: u64,
    },
}

impl Op {
    /// The key this operation addresses.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Insert { key, .. } | Op::Lookup { key } | Op::Delete { key } => key,
        }
    }
}

/// Result of a key operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// Insert completed; `replaced` tells whether a previous value existed.
    Inserted {
        /// True if an existing record was overwritten.
        replaced: bool,
    },
    /// Lookup completed.
    Found {
        /// The value, if the key was present.
        value: Option<Vec<u8>>,
    },
    /// Delete completed; `existed` tells whether the key was present.
    Deleted {
        /// True if a record was removed.
        existed: bool,
    },
    /// The bucket rejected the operation (e.g. a value too large for the
    /// LH*RS parity slot).
    Error {
        /// Human-readable rejection reason.
        message: String,
    },
}

/// One record matched by a scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanMatch {
    /// Record key.
    pub key: u64,
    /// Record payload (present unless the scan asked for keys only).
    pub value: Option<Vec<u8>>,
}

/// Everything that travels between sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wire {
    /// Client → bucket (and bucket → bucket when forwarding).
    Request {
        /// Correlation id chosen by the client.
        req_id: u64,
        /// Client site to reply to.
        client: u32,
        /// Forwarding hops so far (LH\* guarantees ≤ 2).
        hops: u8,
        /// The operation.
        op: Op,
    },
    /// Bucket → client.
    Response {
        /// Correlation id.
        req_id: u64,
        /// Operation outcome.
        result: OpResult,
        /// Address of the bucket that served the request.
        served_by: u64,
        /// That bucket's level — drives the IAM image update.
        bucket_level: u8,
        /// Hops the request took (0 = client image was correct).
        hops: u8,
    },
    /// Client → bucket: scan this bucket with the installed filter.
    ScanReq {
        /// Correlation id.
        req_id: u64,
        /// Client site to reply to.
        client: u32,
        /// Opaque query handed to the bucket's [`ScanFilter`].
        ///
        /// [`ScanFilter`]: crate::ScanFilter
        query: Vec<u8>,
        /// If true, replies carry keys only (saves bandwidth).
        keys_only: bool,
    },
    /// Bucket → client scan answer.
    ScanResp {
        /// Correlation id.
        req_id: u64,
        /// Bucket address that produced these matches.
        bucket: u64,
        /// Matching records.
        matches: Vec<ScanMatch>,
    },
    /// Bucket → coordinator: bucket exceeded its capacity.
    Overflow {
        /// Overflowing bucket address.
        addr: u64,
        /// Its current level.
        level: u8,
        /// Its current record count.
        size: usize,
    },
    /// Bucket → coordinator: bucket load fell below the shrink threshold.
    Underflow {
        /// Underflowing bucket address.
        addr: u64,
        /// Its current record count.
        size: usize,
    },
    /// Coordinator → the last bucket of the file: merge yourself back into
    /// your split parent (the reverse of a split; shrinks the file by one
    /// bucket).
    MergeCmd {
        /// Address of the bucket being dissolved (the file's last bucket).
        addr: u64,
        /// The split parent receiving the records.
        into_addr: u64,
        /// The parent's site.
        into_site: u32,
    },
    /// Dissolving bucket → coordinator: merge finished.
    MergeDone {
        /// Address of the dissolved bucket.
        addr: u64,
    },
    /// Coordinator → bucket `n`: split yourself into `new_addr`.
    SplitCmd {
        /// Address of the bucket being split (consistency check).
        addr: u64,
        /// Address of the new bucket (`n + 2^i`).
        new_addr: u64,
        /// Site where the new bucket has been spawned.
        new_site: u32,
    },
    /// Splitting bucket → new bucket: records that rehash to you, plus
    /// your starting level.
    TransferBatch {
        /// New bucket's level.
        level: u8,
        /// New bucket's address.
        addr: u64,
        /// The records moving.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Transfer target → transfer source: the batch is applied *and
    /// durable*. Only now may the source delete the shipped records and
    /// report `SplitDone`/`MergeDone`, so a crash on either side of the
    /// handoff can never lose the records (at worst they transiently
    /// exist on both sides, which reopen-time re-addressing resolves).
    TransferAck {
        /// Address of the acknowledging (target) bucket.
        addr: u64,
    },
    /// Splitting bucket → coordinator: split finished.
    SplitDone {
        /// Address of the bucket that split.
        addr: u64,
    },
    /// Client → coordinator: tell me the current file state.
    ExtentReq {
        /// Correlation id.
        req_id: u64,
        /// Client site to reply to.
        client: u32,
    },
    /// Coordinator → client.
    ExtentResp {
        /// Correlation id.
        req_id: u64,
        /// Current file level.
        level: u8,
        /// Current split pointer.
        split: u64,
        /// True while splits/merges are running or queued — scans wait for
        /// quiescence so records mid-transfer are not missed.
        #[serde(default)]
        busy: bool,
    },
    /// Data bucket → parity site: a slot changed (LH*RS).
    ParityUpdate {
        /// Parity group number.
        group: u64,
        /// Member index of the reporting bucket within the group.
        member: u32,
        /// Rank (row) of the record inside its bucket.
        rank: u32,
        /// Key now occupying the rank (`None` = rank freed).
        key: Option<u64>,
        /// XOR delta between old and new fixed-size slot contents.
        delta: Vec<u8>,
    },
    /// Recovery manager → parity site: send your state for `group`.
    ParityRead {
        /// Correlation id.
        req_id: u64,
        /// Requester site.
        client: u32,
        /// Parity group wanted.
        group: u64,
    },
    /// Parity site → recovery manager.
    ParityState {
        /// Correlation id.
        req_id: u64,
        /// Parity index of the responding site within the group (0-based).
        parity_index: u32,
        /// Per-rank: keys of members and this site's parity slot.
        rows: Vec<ParityRow>,
    },
    /// Recovery manager → data bucket: send your slot table.
    SlotsRead {
        /// Correlation id.
        req_id: u64,
        /// Requester site.
        client: u32,
    },
    /// Data bucket → recovery manager.
    SlotsState {
        /// Correlation id.
        req_id: u64,
        /// Bucket address.
        addr: u64,
        /// Bucket level.
        level: u8,
        /// Per-rank `(key, slot)` pairs (`None` = free rank).
        slots: Vec<Option<(u64, Vec<u8>)>>,
    },
    /// Recovery manager → fresh bucket site: adopt this reconstructed
    /// state verbatim. The rank-indexed layout is preserved so future
    /// parity deltas keep addressing the same rows, and **no** parity
    /// updates are emitted (the parity sites already cover these records).
    Adopt {
        /// Bucket address being restored.
        addr: u64,
        /// Bucket level to adopt.
        level: u8,
        /// Rank-indexed `(key, value)` slots (`None` = free rank).
        slots: Vec<Option<(u64, Vec<u8>)>>,
    },
    /// Snapshot protocol: control endpoint → bucket, dump your contents.
    Dump {
        /// Correlation id.
        req_id: u64,
        /// Requester site.
        client: u32,
    },
    /// Bucket → control endpoint: full contents for a snapshot.
    DumpState {
        /// Correlation id.
        req_id: u64,
        /// Bucket address.
        addr: u64,
        /// Bucket level.
        level: u8,
        /// All records.
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Restore protocol: cluster facade → coordinator, adopt this file
    /// state (level, split pointer) before any traffic flows.
    AdoptFileState {
        /// File level to adopt.
        level: u8,
        /// Split pointer to adopt.
        split: u64,
    },
    /// Orderly shutdown of a site thread.
    Shutdown,
}

/// One rank row of a parity site's state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityRow {
    /// Keys of the group's members at this rank (index = member).
    pub keys: Vec<Option<u64>>,
    /// This parity site's encoded slot for the rank.
    pub slot: Vec<u8>,
}

impl Wire {
    /// Serializes for the network.
    pub fn encode(&self) -> Bytes {
        // Stream into a pooled buffer and hand it off zero-copy: the
        // steady-state send path allocates no payload buffers (the pool
        // recycles them when the last `Bytes` clone drops).
        let mut buf = sdds_net::PooledBuf::take();
        // lint: allow(panic-freedom) -- plain-data enum with no map keys or non-string tags; serialization is infallible
        serde_json::to_writer(&mut buf, self).expect("Wire serializes");
        buf.into_bytes()
    }

    /// Deserializes from the network.
    pub fn decode(bytes: &[u8]) -> Option<Wire> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Wire::Request {
                req_id: 1,
                client: 2,
                hops: 0,
                op: Op::Insert {
                    key: 3,
                    value: vec![1, 2, 3],
                },
            },
            Wire::Response {
                req_id: 1,
                result: OpResult::Found {
                    value: Some(vec![9]),
                },
                served_by: 4,
                bucket_level: 2,
                hops: 1,
            },
            Wire::ScanReq {
                req_id: 9,
                client: 1,
                query: vec![0xFF],
                keys_only: true,
            },
            Wire::ScanResp {
                req_id: 9,
                bucket: 3,
                matches: vec![ScanMatch {
                    key: 5,
                    value: None,
                }],
            },
            Wire::Overflow {
                addr: 0,
                level: 1,
                size: 100,
            },
            Wire::Underflow { addr: 3, size: 2 },
            Wire::MergeCmd {
                addr: 3,
                into_addr: 1,
                into_site: 8,
            },
            Wire::MergeDone { addr: 3 },
            Wire::SplitCmd {
                addr: 0,
                new_addr: 2,
                new_site: 7,
            },
            Wire::TransferBatch {
                level: 2,
                addr: 2,
                records: vec![(1, vec![])],
            },
            Wire::TransferAck { addr: 2 },
            Wire::SplitDone { addr: 0 },
            Wire::ExtentReq {
                req_id: 4,
                client: 6,
            },
            Wire::ExtentResp {
                req_id: 4,
                level: 3,
                split: 1,
                busy: false,
            },
            Wire::ParityUpdate {
                group: 0,
                member: 1,
                rank: 2,
                key: Some(77),
                delta: vec![0xAA],
            },
            Wire::ParityRead {
                req_id: 8,
                client: 1,
                group: 0,
            },
            Wire::ParityState {
                req_id: 8,
                parity_index: 0,
                rows: vec![ParityRow {
                    keys: vec![Some(1), None],
                    slot: vec![3],
                }],
            },
            Wire::SlotsRead {
                req_id: 2,
                client: 3,
            },
            Wire::SlotsState {
                req_id: 2,
                addr: 1,
                level: 1,
                slots: vec![Some((5, vec![1])), None],
            },
            Wire::Adopt {
                addr: 1,
                level: 1,
                slots: vec![Some((5, vec![1])), None],
            },
            Wire::Dump {
                req_id: 3,
                client: 4,
            },
            Wire::DumpState {
                req_id: 3,
                addr: 0,
                level: 2,
                records: vec![(1, vec![2])],
            },
            Wire::AdoptFileState { level: 3, split: 2 },
            Wire::Shutdown,
        ];
        for m in msgs {
            let enc = m.encode();
            assert_eq!(Wire::decode(&enc), Some(m));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Wire::decode(b"not json"), None);
        assert_eq!(Wire::decode(b"{}"), None);
    }

    #[test]
    fn op_key_extraction() {
        assert_eq!(
            Op::Insert {
                key: 7,
                value: vec![]
            }
            .key(),
            7
        );
        assert_eq!(Op::Lookup { key: 8 }.key(), 8);
        assert_eq!(Op::Delete { key: 9 }.key(), 9);
    }
}
