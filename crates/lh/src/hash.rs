//! LH\* addressing: the linear-hashing function family and the client's
//! file image.
//!
//! The family is `h_i(K) = K mod 2^i`. A file at *level* `i` with *split
//! pointer* `n` has `2^i + n` buckets, addressed
//!
//! ```text
//! a = h_i(K);  if a < n { a = h_{i+1}(K) }
//! ```
//!
//! Keys are used raw (no pre-mixing): the ICDE'06 paper relies on this by
//! appending chunking and dispersion-site ids as the least significant bits
//! of index-record keys so sibling index records land in different buckets
//! (§5).

use serde::{Deserialize, Serialize};

/// `h_i(K) = K mod 2^i`.
#[inline]
pub fn h(key: u64, level: u8) -> u64 {
    debug_assert!(level < 64);
    key & ((1u64 << level) - 1)
}

/// The LH addressing rule for a file at `(level, split)`.
#[inline]
pub fn address(key: u64, level: u8, split: u64) -> u64 {
    let a = h(key, level);
    if a < split {
        h(key, level + 1)
    } else {
        a
    }
}

/// Number of buckets of a file at `(level, split)`.
#[inline]
pub fn extent(level: u8, split: u64) -> u64 {
    (1u64 << level) + split
}

/// A client's (possibly outdated) view of the file state — LH\*'s *image*.
///
/// Clients start with the primordial image (one bucket) and converge
/// through Image Adjustment Messages; the guarantee is never more than two
/// forwarding hops regardless of staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ClientImage {
    /// Presumed file level `i'`.
    pub level: u8,
    /// Presumed split pointer `n'`.
    pub split: u64,
}

impl ClientImage {
    /// Address of `key` under this image.
    pub fn address(&self, key: u64) -> u64 {
        address(key, self.level, self.split)
    }

    /// Number of buckets this image believes exist.
    pub fn extent(&self) -> u64 {
        extent(self.level, self.split)
    }

    /// Applies an Image Adjustment Message carrying the *serving* bucket's
    /// address `a` and level `j`. This is the \[LNS96\] A3 update with the
    /// address reduced into the new level's range,
    ///
    /// ```text
    /// if j > i' { i' = j - 1; n' = (a mod 2^i') + 1 }
    /// if n' >= 2^i' { n' = 0; i' += 1 }
    /// ```
    ///
    /// (The reduction matters because our IAMs come from the bucket that
    /// finally served the request, whose address may already be `>= 2^i'`;
    /// the mod keeps the image a provable lower bound on the true file
    /// state — see `image_is_always_a_lower_bound` in the tests.)
    pub fn adjust(&mut self, served_by: u64, bucket_level: u8) {
        if bucket_level > self.level {
            self.level = bucket_level - 1;
            self.split = (served_by & ((1u64 << self.level) - 1)) + 1;
        }
        if self.split >= (1u64 << self.level) {
            self.split = 0;
            self.level += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_masks_low_bits() {
        assert_eq!(h(0b1011, 0), 0);
        assert_eq!(h(0b1011, 1), 1);
        assert_eq!(h(0b1011, 3), 0b011);
        assert_eq!(h(u64::MAX, 10), 1023);
    }

    #[test]
    fn address_pre_split_uses_level() {
        // level 1, split 0: two buckets, addresses = key mod 2
        assert_eq!(address(6, 1, 0), 0);
        assert_eq!(address(7, 1, 0), 1);
    }

    #[test]
    fn address_split_region_uses_next_level() {
        // level 1, split 1: bucket 0 has split; keys with h_1 = 0 use h_2
        assert_eq!(address(4, 1, 1), 0); // h_1(4)=0 < 1 → h_2(4)=0
        assert_eq!(address(6, 1, 1), 2); // h_1(6)=0 < 1 → h_2(6)=2
        assert_eq!(address(7, 1, 1), 1); // h_1(7)=1 ≥ 1 → stays
    }

    #[test]
    fn extent_counts_buckets() {
        assert_eq!(extent(0, 0), 1);
        assert_eq!(extent(1, 0), 2);
        assert_eq!(extent(1, 1), 3);
        assert_eq!(extent(3, 5), 13);
    }

    #[test]
    fn addresses_always_within_extent() {
        for level in 0..6u8 {
            for split in 0..(1u64 << level) {
                let ext = extent(level, split);
                for key in 0..500u64 {
                    let a = address(key, level, split);
                    assert!(
                        a < ext,
                        "key {key} level {level} split {split} -> {a} >= {ext}"
                    );
                }
            }
        }
    }

    #[test]
    fn image_default_is_primordial() {
        let img = ClientImage::default();
        assert_eq!(img.extent(), 1);
        assert_eq!(img.address(12345), 0);
    }

    /// Level of bucket `addr` in a file at `(level, split)`.
    fn true_bucket_level(addr: u64, level: u8, split: u64) -> u8 {
        if addr < split || addr >= (1 << level) {
            level + 1
        } else {
            level
        }
    }

    #[test]
    fn image_adjustment_converges() {
        // Simulate a file that has grown to level 3, split 2 while the
        // client still holds the primordial image. Repeatedly address a
        // key, let the "true" file serve it, adjust — the image must
        // approach the true state from below.
        let true_level = 3u8;
        let true_split = 2u64;
        let mut img = ClientImage::default();
        for key in 0..200u64 {
            let true_addr = address(key, true_level, true_split);
            img.adjust(
                true_addr,
                true_bucket_level(true_addr, true_level, true_split),
            );
            assert!(img.extent() <= extent(true_level, true_split));
        }
        // after many adjustments the image is close to the true state
        assert!(img.level >= true_level - 1);
    }

    #[test]
    fn image_is_always_a_lower_bound() {
        // For every file state and every served bucket, adjusting any
        // not-ahead image never overshoots the true extent.
        for level in 0..5u8 {
            for split in 0..(1u64 << level) {
                let ext = extent(level, split);
                for served in 0..ext {
                    let j = true_bucket_level(served, level, split);
                    // try several starting images at or below the state
                    for img_level in 0..=level {
                        for img_split in 0..(1u64 << img_level) {
                            let mut img = ClientImage {
                                level: img_level,
                                split: img_split,
                            };
                            if img.extent() > ext {
                                continue;
                            }
                            img.adjust(served, j);
                            assert!(
                                img.extent() <= ext,
                                "overshoot: file=({level},{split}) served={served} j={j} -> {img:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn image_adjust_wraps_at_level_boundary() {
        let mut img = ClientImage::default();
        img.adjust(0, 1); // bucket 0 at level 1 → level 0, split 1 → wraps
        assert_eq!(img, ClientImage { level: 1, split: 0 });
        img.adjust(1, 2);
        assert_eq!(img, ClientImage { level: 2, split: 0 });
    }
}
