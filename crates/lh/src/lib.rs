//! LH\* — the Scalable Distributed Data Structure of Litwin, Neimat and
//! Schneider \[LNS96\] — with the LH\*<sub>RS</sub> high-availability
//! extension \[LMS05\], running over the simulated multicomputer of
//! `sdds-net`.
//!
//! This is the storage substrate the ICDE'06 paper assumes: "a standard
//! SDDS such as LH\* or its high-availability version LH\*RS is used to
//! store index records and the records themselves" (§5). The
//! implementation is a real distributed protocol: every bucket is a site
//! thread exchanging serialized messages; clients keep a possibly-stale
//! *file image* and learn through Image Adjustment Messages; addressing
//! errors cost at most two forwarding hops (the LH\* invariant).
//!
//! Main entry points:
//!
//! * [`LhCluster`] — spawns a coordinator and bucket sites and hands out
//!   clients.
//! * [`LhClient`] — key operations (`insert`, `lookup`, `delete`) and
//!   parallel scans with a server-side [`ScanFilter`].
//! * [`ParityConfig`] — enables LH\*<sub>RS</sub> record-group parity so
//!   bucket failures are recoverable (Reed–Solomon over `sdds-gf`).
//!
//! ```
//! use sdds_lh::{ClusterConfig, LhCluster};
//!
//! let cluster = LhCluster::start(ClusterConfig::default());
//! let client = cluster.client();
//! client.insert(42, b"hello".to_vec()).unwrap();
//! assert_eq!(client.lookup(42).unwrap(), Some(b"hello".to_vec()));
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod client;
mod cluster;
mod coordinator;
mod drain;
mod filter;
mod hash;
mod health;
mod index;
mod messages;
mod obs_client;
mod parity;
mod serve;

pub use client::{LhClient, LhError, RetryPolicy};
pub use cluster::{
    BucketSnapshot, ClusterConfig, FileSnapshot, LhCluster, ObsOptions, ParityConfig,
};
pub use drain::DEFAULT_DRAIN_BUDGET;
pub use filter::{PreparedQuery, ScanFilter, SubstringFilter};
pub use hash::{address, ClientImage};
pub use messages::ScanMatch;
pub use obs_client::{ClusterObs, ClusterScrape, RankScrape, ScrapeOptions};
pub use sdds_storage::{DiskOptions, FsyncPolicy, StorageConfig};
pub use serve::{serve, ServeHandle, TcpCluster};
