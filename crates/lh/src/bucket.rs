//! The LH\* bucket: a site thread owning one bucket of the file.
//!
//! Buckets hold records, serve key operations with the classical LH\*
//! forwarding rule (each hop re-addresses with the *receiving* bucket's
//! level; at most two hops are ever needed), execute splits ordered by the
//! coordinator, evaluate scan filters locally, and — when LH\*<sub>RS</sub>
//! parity is on — stream slot deltas to their group's parity sites.

use crate::cluster::{Directory, ParityConfig};
use crate::drain::{fill_batch, SendQueue, Wakeup, IDLE_TICK};
use crate::filter::ScanFilter;
use crate::hash::h;
use crate::index::PostingIndex;
use crate::messages::{Op, OpResult, ScanMatch, Wire};
use crate::parity::{slot_delta, slot_of};
use sdds_net::{Endpoint, Envelope, SiteId};
use sdds_obs::trace;
use sdds_obs::Registry;
use sdds_storage::{BatchOp, StorageEngine, StorageError, WriteBatch};
use std::collections::HashMap;
use std::sync::Arc;

/// Forwarding-hop hard stop; LH\* proves 2 suffice, we allow slack for the
/// transient window during a split.
const MAX_HOPS: u8 = 4;

/// Crash-injection hook for the crash-recovery integration tests: when
/// the `SDDS_CRASH_POINT` environment variable names this point, the
/// whole process dies on the spot — no destructors, no flushes — exactly
/// like a SIGKILL, but at a deterministic place in the protocol.
fn crash_point(point: &str) {
    if std::env::var("SDDS_CRASH_POINT").as_deref() == Ok(point) {
        std::process::abort();
    }
}

/// A split/merge transfer shipped to its target but not yet acknowledged.
/// The shipped records stay in this bucket — and the coordinator is not
/// told the operation finished — until the target's durable
/// [`Wire::TransferAck`] arrives.
struct PendingTransfer {
    /// Keys shipped (deleted locally only once the ack lands).
    keys: Vec<u64>,
    /// Target bucket address, for ack correlation.
    target_addr: u64,
    /// What completing the transfer means.
    done: TransferDone,
}

enum TransferDone {
    Split,
    Merge,
}

/// Mutable bucket state (pure logic; the thread loop drives it).
pub(crate) struct BucketState {
    addr: u64,
    level: u8,
    capacity: usize,
    /// Record storage: in-memory or durable WAL+snapshot, behind one
    /// trait. Split/merge transfers and recovery adoption apply through
    /// atomic write batches so a crash cannot half-apply them.
    engine: Box<dyn StorageEngine>,
    /// Inverted element → postings index (present iff the installed
    /// filter requested one via `ScanFilter::index_element_bytes`). Kept
    /// consistent through every record mutation path: insert, overwrite,
    /// delete, split/merge transfers, and recovery adoption — and rebuilt
    /// from the engine's replayed records when a bucket reopens.
    index: Option<PostingIndex>,
    // LH*RS rank bookkeeping (empty when parity is off)
    ranks: Vec<Option<u64>>,
    key_rank: HashMap<u64, u32>,
    free_ranks: Vec<u32>,
    overflow_reported: bool,
    underflow_reported: bool,
    pending_transfer: Option<PendingTransfer>,
}

/// Immutable wiring a bucket needs to route messages.
pub(crate) struct BucketCtx {
    pub directory: Arc<Directory>,
    pub coordinator: SiteId,
    pub filter: Arc<dyn ScanFilter>,
    pub parity: Option<ParityConfig>,
    /// This site's metrics registry (labeled `bucket-<addr>`). Updates
    /// propagate to the parent/global registry, so the default registry
    /// stays the cross-site aggregate while each site keeps its own
    /// breakdown.
    pub obs: Registry,
    /// Messages the event loop dispatches per wakeup (see
    /// [`crate::drain`]); 1 = historical single-message dispatch.
    pub drain_budget: usize,
}

impl BucketState {
    pub(crate) fn new(
        addr: u64,
        level: u8,
        capacity: usize,
        index_element_bytes: Option<usize>,
        engine: Box<dyn StorageEngine>,
    ) -> BucketState {
        BucketState {
            addr,
            level,
            capacity,
            engine,
            index: index_element_bytes
                .filter(|&w| w > 0)
                .map(PostingIndex::new),
            ranks: Vec::new(),
            key_rank: HashMap::new(),
            free_ranks: Vec::new(),
            overflow_reported: false,
            underflow_reported: false,
            pending_transfer: None,
        }
    }

    /// One-time wiring before the message loop: rebuild the volatile
    /// bookkeeping — posting index and LH\*RS rank tables — from whatever
    /// records the engine recovered from disk, and report an overflow if
    /// the recovered bucket is already past capacity (the crash may have
    /// eaten the original report). A fresh, empty engine is a no-op.
    pub(crate) fn startup(&mut self, ctx: &BucketCtx) -> Vec<(SiteId, Wire)> {
        if self.engine.is_empty() {
            return Vec::new();
        }
        let engine = &self.engine;
        if let Some(idx) = &mut self.index {
            idx.clear();
            engine.for_each(&mut |key, value| {
                if ctx.filter.should_index(key) {
                    idx.add(key, value);
                }
            });
        }
        if ctx.parity.is_some() {
            // Deterministic rank assignment (ascending keys). Parity sites
            // hold no persistent state, so recovered ranks need only be
            // self-consistent, not identical to the pre-crash assignment.
            self.ranks.clear();
            self.key_rank.clear();
            self.free_ranks.clear();
            for key in self.engine.keys() {
                let rank = self.ranks.len() as u32;
                self.ranks.push(Some(key));
                self.key_rank.insert(key, rank);
            }
        }
        self.maybe_report_overflow(ctx)
    }

    /// Shrink threshold: an eighth of the capacity (hysteresis well below
    /// the split threshold so files do not thrash).
    fn underflow_threshold(&self) -> usize {
        self.capacity / 8
    }

    #[allow(dead_code)] // diagnostics + unit tests
    pub(crate) fn len(&self) -> usize {
        self.engine.len()
    }

    /// Processes one message, returning the messages to send out.
    pub(crate) fn handle(
        &mut self,
        from: SiteId,
        msg: Wire,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        match msg {
            Wire::Request {
                req_id,
                client,
                hops,
                op,
            } => self.handle_request(req_id, client, hops, op, ctx),
            Wire::ScanReq {
                req_id,
                client,
                query,
                keys_only,
            } => {
                let matches = self.scan(&query, keys_only, ctx);
                vec![(
                    SiteId(client),
                    Wire::ScanResp {
                        req_id,
                        bucket: self.addr,
                        matches,
                    },
                )]
            }
            Wire::SplitCmd {
                addr,
                new_addr,
                new_site,
            } => {
                debug_assert_eq!(addr, self.addr, "split sent to wrong bucket");
                self.split(new_addr, SiteId(new_site), ctx)
            }
            Wire::MergeCmd {
                addr,
                into_addr,
                into_site,
            } => {
                debug_assert_eq!(addr, self.addr, "merge sent to wrong bucket");
                self.merge_into(into_addr, SiteId(into_site), ctx)
            }
            Wire::TransferBatch {
                level,
                addr,
                records,
            } => {
                debug_assert_eq!(addr, self.addr);
                self.level = level;
                self.overflow_reported = false;
                self.underflow_reported = false;
                self.receive_transfer(from, records, ctx)
            }
            Wire::TransferAck { addr } => self.transfer_acked(addr, ctx),
            Wire::SlotsRead { req_id, client } => {
                let slots = self.slot_table(ctx);
                vec![(
                    SiteId(client),
                    Wire::SlotsState {
                        req_id,
                        addr: self.addr,
                        level: self.level,
                        slots,
                    },
                )]
            }
            Wire::Adopt { addr, level, slots } => {
                debug_assert_eq!(addr, self.addr);
                self.adopt(level, slots, ctx);
                Vec::new()
            }
            Wire::Dump { req_id, client } => {
                let mut records = Vec::with_capacity(self.engine.len());
                self.engine
                    .for_each(&mut |k, v| records.push((k, v.to_vec())));
                vec![(
                    SiteId(client),
                    Wire::DumpState {
                        req_id,
                        addr: self.addr,
                        level: self.level,
                        records,
                    },
                )]
            }
            // Shutdown handled by the loop; everything else is not ours.
            _ => Vec::new(),
        }
    }

    fn handle_request(
        &mut self,
        req_id: u64,
        client: u32,
        hops: u8,
        op: Op,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        let key = op.key();
        // The LH* server address computation (A1 of [LNS96]): re-address
        // with *this* bucket's level; the h_{j-1} guard stops the forward
        // from overshooting the file's extent (without it, a level-(j)
        // bucket could route to a bucket that does not exist yet).
        let mut target = h(key, self.level);
        if target != self.addr && self.level > 0 {
            let conservative = h(key, self.level - 1);
            if conservative > self.addr && conservative < target {
                target = conservative;
            }
        }
        if target != self.addr && hops < MAX_HOPS {
            // The target may be transiently absent from the directory
            // (mid-split spawn, or a merge retiring the file's last
            // bucket). Serving locally here would strand the record in
            // the wrong bucket; instead descend levels — h at a lower
            // level addresses the target's split ancestor, which is where
            // a merge ships its records and where lookups will land after
            // the structure change completes. Level 0 (bucket 0) always
            // exists, so the walk terminates.
            let mut resolved = target;
            let mut level = self.level;
            while resolved != self.addr
                && ctx.directory.bucket_site(resolved).is_none()
                && level > 0
            {
                level -= 1;
                resolved = h(key, level);
            }
            if resolved != self.addr {
                if let Some(site) = ctx.directory.bucket_site(resolved) {
                    ctx.obs.counter("lh.forwards").inc();
                    return vec![(
                        site,
                        Wire::Request {
                            req_id,
                            client,
                            hops: hops + 1,
                            op,
                        },
                    )];
                }
            }
            // resolved == self.addr: at this level view we are the home;
            // serve locally.
        }
        let mut out = Vec::new();
        let result = match op {
            Op::Insert { key, value } => {
                if let Some(cfg) = &ctx.parity {
                    if value.len() + 2 > cfg.slot_size {
                        let message = format!(
                            "value of {} bytes exceeds parity slot capacity {}",
                            value.len(),
                            cfg.slot_size - 2
                        );
                        out.push((
                            SiteId(client),
                            Wire::Response {
                                req_id,
                                result: OpResult::Error { message },
                                served_by: self.addr,
                                bucket_level: self.level,
                                hops,
                            },
                        ));
                        return out;
                    }
                }
                match self.store(key, value, ctx) {
                    Ok((replaced, msgs)) => {
                        out.extend(msgs);
                        out.extend(self.maybe_report_overflow(ctx));
                        OpResult::Inserted { replaced }
                    }
                    Err(e) => self.storage_error("insert", e, ctx),
                }
            }
            Op::Lookup { key } => OpResult::Found {
                value: self.engine.get(key),
            },
            Op::Delete { key } => match self.remove(key, ctx) {
                Ok((existed, msgs)) => {
                    out.extend(msgs);
                    if existed {
                        out.extend(self.maybe_report_underflow(ctx));
                    }
                    OpResult::Deleted { existed }
                }
                Err(e) => self.storage_error("delete", e, ctx),
            },
        };
        out.push((
            SiteId(client),
            Wire::Response {
                req_id,
                result,
                served_by: self.addr,
                bucket_level: self.level,
                hops,
            },
        ));
        out
    }

    /// Records a storage failure and surfaces it to the requesting client.
    fn storage_error(&self, during: &str, e: StorageError, ctx: &BucketCtx) -> OpResult {
        ctx.obs.counter("storage.errors").inc();
        OpResult::Error {
            message: format!("storage failure during {during}: {e}"),
        }
    }

    /// Inserts/overwrites a record durably, then runs the bookkeeping.
    /// Returns whether the key already existed plus the parity messages.
    fn store(
        &mut self,
        key: u64,
        value: Vec<u8>,
        ctx: &BucketCtx,
    ) -> Result<(bool, Vec<(SiteId, Wire)>), StorageError> {
        let old = self.engine.put(key, &value)?;
        let existed = old.is_some();
        let msgs = self.note_put(key, &value, old, ctx);
        Ok((existed, msgs))
    }

    /// Deletes a record durably, then runs the bookkeeping. Returns
    /// whether the key existed plus the parity messages.
    fn remove(
        &mut self,
        key: u64,
        ctx: &BucketCtx,
    ) -> Result<(bool, Vec<(SiteId, Wire)>), StorageError> {
        let old = self.engine.delete(key)?;
        let existed = old.is_some();
        let msgs = self.note_delete(key, old, ctx);
        Ok((existed, msgs))
    }

    /// Post-write bookkeeping for one stored record: posting index, rank
    /// table, parity deltas. `old` is the value the write replaced.
    fn note_put(
        &mut self,
        key: u64,
        value: &[u8],
        old: Option<Vec<u8>>,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        if let Some(idx) = &mut self.index {
            if ctx.filter.should_index(key) {
                if let Some(prev) = &old {
                    idx.remove(key, prev);
                }
                idx.add(key, value);
            }
        }
        let Some(cfg) = &ctx.parity else {
            return Vec::new();
        };
        let rank = match self.key_rank.get(&key) {
            Some(&r) => r,
            None => {
                let r = self.free_ranks.pop().unwrap_or_else(|| {
                    self.ranks.push(None);
                    (self.ranks.len() - 1) as u32
                });
                self.key_rank.insert(key, r);
                self.ranks[r as usize] = Some(key);
                r
            }
        };
        let delta = slot_delta(old.as_deref(), Some(value), cfg.slot_size);
        self.parity_update(rank, Some(key), delta, cfg, ctx)
    }

    /// Post-delete bookkeeping for one removed record. `old` is the value
    /// the delete removed; a `None` means the key was absent, and every
    /// table — including `key_rank` — must stay untouched so rank slots
    /// are never freed twice.
    fn note_delete(
        &mut self,
        key: u64,
        old: Option<Vec<u8>>,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        let Some(prev) = old else {
            return Vec::new();
        };
        if let Some(idx) = &mut self.index {
            idx.remove(key, &prev);
        }
        let Some(cfg) = &ctx.parity else {
            return Vec::new();
        };
        let Some(rank) = self.key_rank.remove(&key) else {
            return Vec::new();
        };
        self.ranks[rank as usize] = None;
        self.free_ranks.push(rank);
        let delta = slot_delta(Some(&prev), None, cfg.slot_size);
        self.parity_update(rank, None, delta, cfg, ctx)
    }

    /// Deletes `keys` as **one atomic batch** (a single WAL frame), then
    /// runs per-key bookkeeping. Parity deltas come from the pre-delete
    /// values, captured before the batch applies.
    fn remove_many(
        &mut self,
        keys: &[u64],
        ctx: &BucketCtx,
    ) -> Result<Vec<(SiteId, Wire)>, StorageError> {
        let mut batch = WriteBatch::new();
        let olds: Vec<(u64, Option<Vec<u8>>)> = keys
            .iter()
            .map(|&k| {
                batch.delete(k);
                (k, self.engine.get(k))
            })
            .collect();
        self.engine.apply_batch(&batch)?;
        let mut out = Vec::new();
        for (key, old) in olds {
            out.extend(self.note_delete(key, old, ctx));
        }
        Ok(out)
    }

    /// Applies an incoming split/merge/restore `TransferBatch`: stage the
    /// whole batch as **one atomic write**, force it durable, and only
    /// then acknowledge — the [`Wire::TransferAck`] is a promise that the
    /// records cannot be lost, which is what licenses the source to
    /// delete its copies. On a storage failure no ack is sent, so the
    /// source keeps the records and nothing is lost.
    fn receive_transfer(
        &mut self,
        from: SiteId,
        records: Vec<(u64, Vec<u8>)>,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        let olds: Vec<Option<Vec<u8>>> = records.iter().map(|(k, _)| self.engine.get(*k)).collect();
        // move the records into the batch — the batch is the only owned
        // copy the write path needs; bookkeeping below borrows it back
        let mut batch = WriteBatch::new();
        for (key, value) in records {
            batch.put(key, value);
        }
        let applied = self
            .engine
            .apply_batch(&batch)
            .and_then(|()| self.engine.flush());
        if applied.is_err() {
            ctx.obs.counter("storage.errors").inc();
            return Vec::new();
        }
        let mut out = Vec::new();
        for (op, old) in batch.ops().iter().zip(olds) {
            let BatchOp::Put { key, value } = op else {
                continue;
            };
            out.extend(self.note_put(*key, value, old, ctx));
        }
        crash_point("transfer-applied");
        out.push((from, Wire::TransferAck { addr: self.addr }));
        // adoption of transferred records can itself overflow
        out.extend(self.maybe_report_overflow(ctx));
        out
    }

    /// Completes a pending split/merge once the target has durably
    /// applied the transfer: delete the shipped records locally (one
    /// atomic batch) and only now tell the coordinator the operation
    /// finished. Stray acks — e.g. replies to a restore replay — are
    /// ignored.
    fn transfer_acked(&mut self, target_addr: u64, ctx: &BucketCtx) -> Vec<(SiteId, Wire)> {
        let Some(pending) = self.pending_transfer.take() else {
            return Vec::new();
        };
        if pending.target_addr != target_addr {
            self.pending_transfer = Some(pending);
            return Vec::new();
        }
        let mut out = match self.remove_many(&pending.keys, ctx) {
            Ok(msgs) => msgs,
            Err(_) => {
                // The target holds the records durably; doomed local
                // copies surviving an I/O error are cleaned up by the
                // reopen-time re-addressing pass.
                ctx.obs.counter("storage.errors").inc();
                Vec::new()
            }
        };
        match pending.done {
            TransferDone::Split => {
                self.overflow_reported = false;
                out.push((ctx.coordinator, Wire::SplitDone { addr: self.addr }));
            }
            TransferDone::Merge => {
                // Dissolved: tear down the durable footprint so a reopen
                // cannot resurrect a retired bucket. (A crash before this
                // line leaves an empty — or doomed-copy — directory that
                // re-addressing also resolves.)
                if self.engine.destroy().is_err() {
                    ctx.obs.counter("storage.errors").inc();
                }
                out.push((ctx.coordinator, Wire::MergeDone { addr: self.addr }));
            }
        }
        out
    }

    fn parity_update(
        &self,
        rank: u32,
        key: Option<u64>,
        delta: Vec<u8>,
        cfg: &ParityConfig,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        if delta.iter().all(|&b| b == 0) {
            return Vec::new();
        }
        let group = self.addr / cfg.group_size as u64;
        let member = (self.addr % cfg.group_size as u64) as u32;
        ctx.directory
            .parity_sites(group)
            .into_iter()
            .map(|site| {
                (
                    site,
                    Wire::ParityUpdate {
                        group,
                        member,
                        rank,
                        key,
                        delta: delta.clone(),
                    },
                )
            })
            .collect()
    }

    /// Restores reconstructed state verbatim (recovery): same ranks, no
    /// parity emissions. The posting index is rebuilt from the adopted
    /// records. The replacement is staged as one atomic `Clear` + puts
    /// batch, so a crash mid-adoption cannot leave a half-restored image
    /// on disk.
    fn adopt(&mut self, level: u8, slots: Vec<Option<(u64, Vec<u8>)>>, ctx: &BucketCtx) {
        let mut batch = WriteBatch::new();
        batch.clear_all();
        // move each record into the batch once (no per-value clone); the
        // slot layout — rank = position, holes included — is remembered
        // separately for the rank-table rebuild below
        let mut slot_keys: Vec<Option<u64>> = Vec::with_capacity(slots.len());
        for entry in slots {
            match entry {
                Some((key, value)) => {
                    slot_keys.push(Some(key));
                    batch.put(key, value);
                }
                None => slot_keys.push(None),
            }
        }
        let applied = self
            .engine
            .apply_batch(&batch)
            .and_then(|()| self.engine.flush());
        if applied.is_err() {
            // keep the pre-adopt state (engine and tables) intact rather
            // than desynchronise bookkeeping from storage
            ctx.obs.counter("storage.errors").inc();
            return;
        }
        self.level = level;
        self.ranks.clear();
        self.key_rank.clear();
        self.free_ranks.clear();
        if let Some(idx) = &mut self.index {
            idx.clear();
            // the batch's puts are exactly the occupied slots, in order
            for op in batch.ops() {
                let BatchOp::Put { key, value } = op else {
                    continue;
                };
                if ctx.filter.should_index(*key) {
                    idx.add(*key, value);
                }
            }
        }
        for (rank, entry) in slot_keys.into_iter().enumerate() {
            match entry {
                Some(key) => {
                    self.ranks.push(Some(key));
                    self.key_rank.insert(key, rank as u32);
                }
                None => {
                    self.ranks.push(None);
                    self.free_ranks.push(rank as u32);
                }
            }
        }
    }

    fn maybe_report_overflow(&mut self, ctx: &BucketCtx) -> Vec<(SiteId, Wire)> {
        if self.engine.len() > self.capacity && !self.overflow_reported {
            self.overflow_reported = true;
            self.underflow_reported = false;
            vec![(
                ctx.coordinator,
                Wire::Overflow {
                    addr: self.addr,
                    level: self.level,
                    size: self.engine.len(),
                },
            )]
        } else {
            Vec::new()
        }
    }

    fn maybe_report_underflow(&mut self, ctx: &BucketCtx) -> Vec<(SiteId, Wire)> {
        if self.engine.len() < self.underflow_threshold() && !self.underflow_reported {
            self.underflow_reported = true;
            self.overflow_reported = false;
            vec![(
                ctx.coordinator,
                Wire::Underflow {
                    addr: self.addr,
                    size: self.engine.len(),
                },
            )]
        } else {
            Vec::new()
        }
    }

    /// Dissolves this bucket into its split parent (the reverse of a
    /// split): ship every record over. The local copies — and the
    /// `MergeDone` report — wait for the parent's durable ack (see
    /// [`Self::transfer_acked`]), so a crash on either side of the
    /// handoff can never lose records.
    fn merge_into(
        &mut self,
        into_addr: u64,
        into_site: SiteId,
        ctx: &BucketCtx,
    ) -> Vec<(SiteId, Wire)> {
        ctx.obs.counter("lh.merges").inc();
        let keys = self.engine.keys();
        let mut batch = Vec::with_capacity(keys.len());
        for &key in &keys {
            // listed from the engine just above; a miss would mean a bug,
            // but skipping is strictly better than aborting the whole site
            let Some(value) = self.engine.get(key) else {
                debug_assert!(false, "key listed but missing during merge");
                continue;
            };
            batch.push((key, value));
        }
        self.pending_transfer = Some(PendingTransfer {
            keys,
            target_addr: into_addr,
            done: TransferDone::Merge,
        });
        vec![(
            into_site,
            Wire::TransferBatch {
                level: self.level - 1,
                addr: into_addr,
                records: batch,
            },
        )]
    }

    /// Executes a split: raise the level and ship the rehashing records
    /// to the new bucket. The records stay here — and `SplitDone` stays
    /// unsent — until the target durably acknowledges the transfer (see
    /// [`Self::transfer_acked`]); until then the coordinator keeps the
    /// file marked busy, so scans cannot observe the duplicates.
    fn split(&mut self, new_addr: u64, new_site: SiteId, ctx: &BucketCtx) -> Vec<(SiteId, Wire)> {
        ctx.obs.counter("lh.splits").inc();
        self.level += 1;
        let moving: Vec<u64> = self
            .engine
            .keys()
            .into_iter()
            .filter(|&k| h(k, self.level) == new_addr)
            .collect();
        let mut batch = Vec::with_capacity(moving.len());
        for &key in &moving {
            // listed from the engine just above; skip defensively rather
            // than abort the site (see merge_into)
            let Some(value) = self.engine.get(key) else {
                debug_assert!(false, "key listed but missing during split");
                continue;
            };
            batch.push((key, value));
        }
        crash_point("split-before-transfer");
        self.pending_transfer = Some(PendingTransfer {
            keys: moving,
            target_addr: new_addr,
            done: TransferDone::Split,
        });
        vec![(
            new_site,
            Wire::TransferBatch {
                level: self.level,
                addr: new_addr,
                records: batch,
            },
        )]
    }

    /// Evaluates one `ScanReq`: the wire query is decoded **once** (the
    /// prepared-query protocol), then either the posting index supplies a
    /// candidate key set to confirm, or the bucket falls back to a linear
    /// sweep (filters without probes, or probe widths the index does not
    /// cover). Values are cloned only for full-value replies; `keys_only`
    /// scans never copy record bodies.
    fn scan(&self, query: &[u8], keys_only: bool, ctx: &BucketCtx) -> Vec<ScanMatch> {
        let _timer = ctx.obs.histogram("lh.scan_bucket_seconds").start_timer();
        let prepared = ctx.filter.prepare(query);
        if let (Some(idx), Some(probes)) = (&self.index, prepared.probes()) {
            if probes.iter().all(|p| p.len() == idx.element_bytes()) {
                // Child of this bucket's scan span (inert when the scan
                // request was untraced), so the trace distinguishes an
                // index probe from a linear fallback per bucket.
                let mut span = trace::remote_span("bucket.scan_index", trace::current_context());
                span.set_site(self.addr as i64);
                ctx.obs
                    .counter("lh.scan_index_probes")
                    .add(probes.len() as u64);
                let candidates = idx.candidates(probes);
                span.set_detail(candidates.len() as u64);
                ctx.obs
                    .counter("lh.scan_index_candidates")
                    .add(candidates.len() as u64);
                let mut matches = Vec::with_capacity(candidates.len());
                for key in candidates {
                    // every candidate came from a live posting, so the
                    // record exists; a miss would be an index consistency
                    // bug and skipping is strictly safer than aborting
                    let Some(v) = self.engine.get_ref(key) else {
                        debug_assert!(false, "posting for a record the bucket does not hold");
                        continue;
                    };
                    if prepared.matches(key, v) {
                        matches.push(ScanMatch {
                            key,
                            value: (!keys_only).then(|| v.to_vec()),
                        });
                    }
                }
                return matches;
            }
        }
        let mut span = trace::remote_span("bucket.scan_linear", trace::current_context());
        span.set_site(self.addr as i64);
        span.set_detail(self.engine.len() as u64);
        ctx.obs.counter("lh.scan_fallback_linear").inc();
        let mut matches = Vec::with_capacity(self.engine.len().min(64));
        self.engine.for_each(&mut |key, v| {
            if prepared.matches(key, v) {
                matches.push(ScanMatch {
                    key,
                    value: (!keys_only).then(|| v.to_vec()),
                });
            }
        });
        matches
    }

    /// The rank-indexed slot table for recovery reads.
    fn slot_table(&self, ctx: &BucketCtx) -> Vec<Option<(u64, Vec<u8>)>> {
        let Some(cfg) = &ctx.parity else {
            return Vec::new();
        };
        self.ranks
            .iter()
            .map(|maybe_key| {
                // a rank entry with no backing record (table inconsistency)
                // reads as an empty slot instead of aborting the site
                maybe_key.and_then(|k| {
                    self.engine
                        .get_ref(k)
                        .map(|v| (k, slot_of(v, cfg.slot_size)))
                })
            })
            .collect()
    }
}

/// Static span name for a message a bucket site handles.
fn wire_span_name(msg: &Wire) -> &'static str {
    match msg {
        Wire::Request { .. } => "bucket.request",
        Wire::ScanReq { .. } => "bucket.scan",
        Wire::SplitCmd { .. } => "bucket.split",
        Wire::MergeCmd { .. } => "bucket.merge",
        Wire::TransferBatch { .. } => "bucket.transfer",
        Wire::TransferAck { .. } => "bucket.transfer_ack",
        Wire::SlotsRead { .. } => "bucket.slots_read",
        Wire::Adopt { .. } => "bucket.adopt",
        Wire::Dump { .. } => "bucket.dump",
        _ => "bucket.msg",
    }
}

/// The bucket thread loop: batch-drain, decode, dispatch, send, until
/// [`Wire::Shutdown`].
///
/// Each wakeup blockingly receives one message, then greedily drains the
/// inbox up to `ctx.drain_budget` before dispatching — amortizing the
/// condvar roundtrip and per-wakeup metric sampling over the whole batch
/// at high fan-in. A budget of 1 reproduces the historical
/// one-message-per-wakeup loop exactly.
pub(crate) fn run_bucket(endpoint: Endpoint, mut state: BucketState, ctx: BucketCtx) {
    // a reopened bucket first rebuilds its volatile bookkeeping from the
    // recovered records (and may immediately re-report an overflow)
    let mut outbox = SendQueue::new();
    for (to, out) in state.startup(&ctx) {
        let payload = out.encode();
        outbox.send(&endpoint, to, &out, payload, None);
    }
    let budget = ctx.drain_budget.max(1);
    let depth_gauge = ctx.obs.gauge("lh.inbox_depth");
    let batch_hist = ctx.obs.histogram("lh.drain_batch_size");
    let mut health = crate::health::LoopHealth::register(&ctx.obs);
    let mut batch: Vec<Envelope> = Vec::with_capacity(budget);
    loop {
        // While a rejected control-plane send (overflow report, transfer
        // batch/ack, split completion) is parked, wake on an idle tick so
        // batch draining can never delay it indefinitely: the retry fires
        // within IDLE_TICK even if no new traffic arrives.
        let idle = outbox.has_parked().then_some(IDLE_TICK);
        match fill_batch(&endpoint, budget, idle, &mut batch) {
            Wakeup::Batch => {}
            Wakeup::Idle => {
                outbox.flush(&endpoint);
                continue;
            }
            Wakeup::Disconnected => break,
        }
        health.busy();
        depth_gauge.set(endpoint.inbox_depth() as i64);
        batch_hist.observe(batch.len() as f64);
        let mut shutdown = false;
        for env in batch.drain(..) {
            let Some(msg) = Wire::decode(&env.payload) else {
                continue;
            };
            if matches!(msg, Wire::Shutdown) {
                shutdown = true;
                break;
            }
            // Child span under the sender's context (inert for untraced
            // traffic). It is on this thread's span stack while `handle`
            // runs, so inner spans (index probe vs linear scan) and the
            // outgoing messages below — replies, forwards, transfer
            // batches — all chain under it, giving forwarded requests one
            // correctly-parented path per hop. Spans stay per-message
            // under batching: causality is per operation, not per wakeup.
            let mut span = trace::remote_span(wire_span_name(&msg), env.ctx);
            span.set_site(state.addr as i64);
            if let Wire::Request { hops, .. } = &msg {
                span.set_detail(*hops as u64);
            }
            let out_ctx = span.context();
            for (to, out) in state.handle(env.from, msg, &ctx) {
                // A send can fail if the peer already shut down (fine
                // during teardown) or be rejected by a full inbox — the
                // outbox parks control-plane messages for retry.
                let payload = out.encode();
                outbox.send(&endpoint, to, &out, payload, out_ctx);
            }
        }
        outbox.flush(&endpoint);
        health.idle();
        if shutdown {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::SubstringFilter;
    use sdds_net::{NetConfig, Network};
    use sdds_storage::MemEngine;

    fn mem_bucket(addr: u64, level: u8, capacity: usize) -> BucketState {
        BucketState::new(addr, level, capacity, None, Box::new(MemEngine::new()))
    }

    fn ctx(net: &Network) -> (BucketCtx, SiteId) {
        let directory = Arc::new(Directory::new());
        let coord = net.register();
        let coord_id = coord.id();
        std::mem::forget(coord); // keep channel alive for the test
        (
            BucketCtx {
                directory,
                coordinator: coord_id,
                filter: Arc::new(SubstringFilter),
                parity: None,
                obs: Registry::new("bucket-test"),
                drain_budget: crate::drain::DEFAULT_DRAIN_BUDGET,
            },
            coord_id,
        )
    }

    #[test]
    fn serves_insert_lookup_delete_locally() {
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        let mut b = mem_bucket(0, 0, 100);
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Insert {
                    key: 5,
                    value: vec![1],
                },
            },
            &ctx,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].1,
            Wire::Response {
                result: OpResult::Inserted { replaced: false },
                ..
            }
        ));
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 2,
                client: 9,
                hops: 0,
                op: Op::Lookup { key: 5 },
            },
            &ctx,
        );
        assert!(matches!(
            &out[0].1,
            Wire::Response { result: OpResult::Found { value: Some(v) }, .. } if v == &vec![1]
        ));
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 3,
                client: 9,
                hops: 0,
                op: Op::Delete { key: 5 },
            },
            &ctx,
        );
        assert!(out.iter().any(|(_, m)| matches!(
            m,
            Wire::Response {
                result: OpResult::Deleted { existed: true },
                ..
            }
        )));
        // the bucket is now far below the shrink threshold and says so
        assert!(out.iter().any(|(_, m)| matches!(m, Wire::Underflow { .. })));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn forwards_misaddressed_requests() {
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        ctx.directory.set_bucket(0, SiteId(10));
        ctx.directory.set_bucket(1, SiteId(11));
        // bucket 0 at level 1: key 3 hashes to 1 → forward
        let mut b = mem_bucket(0, 1, 100);
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Lookup { key: 3 },
            },
            &ctx,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(11));
        assert!(matches!(out[0].1, Wire::Request { hops: 1, .. }));
    }

    #[test]
    fn missing_target_descends_to_split_ancestor() {
        // Regression: during a merge the victim is retired from the
        // directory before its records land at the parent. A request whose
        // target is the retired bucket must be forwarded to the split
        // ancestor (where the records are heading), never stored locally
        // at a wrong bucket where it would become unreachable.
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        ctx.directory.set_bucket(0, SiteId(10));
        ctx.directory.set_bucket(1, SiteId(11));
        // bucket 3 (the merge victim) is retired: no directory entry
        // bucket 0 at level 2: key 3 targets bucket 3
        let mut b = mem_bucket(0, 2, 100);
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Insert {
                    key: 3,
                    value: vec![1],
                },
            },
            &ctx,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(11), "descend to h(3, level-1) = bucket 1");
        assert!(matches!(out[0].1, Wire::Request { hops: 1, .. }));
        assert_eq!(b.len(), 0, "nothing stored at the wrong bucket");
    }

    #[test]
    fn overflow_reported_once() {
        let net = Network::new(NetConfig::default());
        let (ctx, coord) = ctx(&net);
        let mut b = mem_bucket(0, 0, 2);
        let mut overflow_msgs = 0;
        for key in 0..5u64 {
            let out = b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert { key, value: vec![] },
                },
                &ctx,
            );
            overflow_msgs += out
                .iter()
                .filter(|(to, m)| *to == coord && matches!(m, Wire::Overflow { .. }))
                .count();
        }
        assert_eq!(overflow_msgs, 1, "overflow must be reported exactly once");
    }

    #[test]
    fn split_moves_rehashing_records() {
        let net = Network::new(NetConfig::default());
        let (ctx, coord) = ctx(&net);
        let mut b = mem_bucket(0, 0, 100);
        for key in 0..10u64 {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert {
                        key,
                        value: vec![key as u8],
                    },
                },
                &ctx,
            );
        }
        let out = b.handle(
            coord,
            Wire::SplitCmd {
                addr: 0,
                new_addr: 1,
                new_site: 77,
            },
            &ctx,
        );
        // transfer carries the odd keys (h_1(k) == 1)
        let transfer = out
            .iter()
            .find_map(|(to, m)| match m {
                Wire::TransferBatch {
                    records,
                    level,
                    addr,
                } if *to == SiteId(77) => Some((records.clone(), *level, *addr)),
                _ => None,
            })
            .expect("transfer sent");
        assert_eq!(transfer.1, 1);
        assert_eq!(transfer.2, 1);
        let moved: Vec<u64> = transfer.0.iter().map(|(k, _)| *k).collect();
        assert_eq!(moved, vec![1, 3, 5, 7, 9]);
        // two-phase handoff: until the target's durable ack, the shipped
        // records stay local and the coordinator hears nothing
        assert_eq!(b.len(), 10, "records must not leave before the ack");
        assert!(
            !out.iter().any(|(_, m)| matches!(m, Wire::SplitDone { .. })),
            "SplitDone must wait for the ack"
        );
        let out = b.handle(SiteId(77), Wire::TransferAck { addr: 1 }, &ctx);
        assert_eq!(b.len(), 5);
        assert!(out
            .iter()
            .any(|(to, m)| *to == coord && matches!(m, Wire::SplitDone { addr: 0 })));
    }

    #[test]
    fn stray_transfer_ack_is_ignored() {
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        let mut b = mem_bucket(0, 0, 100);
        b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Insert {
                    key: 4,
                    value: vec![1],
                },
            },
            &ctx,
        );
        // no transfer pending: an ack (e.g. a restore replay echo) is a no-op
        let out = b.handle(SiteId(7), Wire::TransferAck { addr: 0 }, &ctx);
        assert!(out.is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn merge_ships_everything_and_reports() {
        let net = Network::new(NetConfig::default());
        let (ctx, coord) = ctx(&net);
        let mut b = mem_bucket(2, 2, 100);
        for key in [2u64, 6, 10] {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert {
                        key,
                        value: vec![key as u8],
                    },
                },
                &ctx,
            );
        }
        let out = b.handle(
            coord,
            Wire::MergeCmd {
                addr: 2,
                into_addr: 0,
                into_site: 50,
            },
            &ctx,
        );
        let transfer = out
            .iter()
            .find_map(|(to, m)| match m {
                Wire::TransferBatch {
                    records,
                    level,
                    addr,
                } if *to == SiteId(50) => Some((records.clone(), *level, *addr)),
                _ => None,
            })
            .expect("transfer sent");
        // the parent adopts the pre-merge level minus one, at its address
        assert_eq!(transfer.1, 1);
        assert_eq!(transfer.2, 0);
        let keys: Vec<u64> = transfer.0.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 6, 10], "every record ships");
        // two-phase handoff: nothing is deleted, and MergeDone is not
        // reported, until the parent's durable ack
        assert_eq!(b.len(), 3, "records must not leave before the ack");
        assert!(!out.iter().any(|(_, m)| matches!(m, Wire::MergeDone { .. })));
        let out = b.handle(SiteId(50), Wire::TransferAck { addr: 0 }, &ctx);
        assert_eq!(b.len(), 0, "dissolved bucket is empty");
        assert!(out
            .iter()
            .any(|(to, m)| *to == coord && matches!(m, Wire::MergeDone { addr: 2 })));
    }

    #[test]
    fn adopt_restores_ranks_verbatim_without_parity_noise() {
        let net = Network::new(NetConfig::default());
        let directory = Arc::new(Directory::new());
        let coord = net.register();
        let parity_site = net.register();
        directory.set_parity(0, vec![parity_site.id()]);
        let ctx = BucketCtx {
            directory,
            coordinator: coord.id(),
            filter: Arc::new(SubstringFilter),
            parity: Some(ParityConfig {
                group_size: 2,
                parity_count: 1,
                slot_size: 32,
            }),
            obs: Registry::new("bucket-test"),
            drain_budget: crate::drain::DEFAULT_DRAIN_BUDGET,
        };
        let mut b = mem_bucket(0, 1, 100);
        // adopt a reconstructed slot table with a hole at rank 1
        let out = b.handle(
            coord.id(),
            Wire::Adopt {
                addr: 0,
                level: 1,
                slots: vec![Some((4, vec![1])), None, Some((8, vec![2]))],
            },
            &ctx,
        );
        assert!(out.is_empty(), "adopt must not emit parity updates");
        assert_eq!(b.len(), 2);
        // a subsequent insert reuses the free rank 1 (parity rows stay aligned)
        let out = b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Insert {
                    key: 12,
                    value: vec![3],
                },
            },
            &ctx,
        );
        let update = out
            .iter()
            .find_map(|(to, m)| match m {
                Wire::ParityUpdate { rank, key, .. } if *to == parity_site.id() => {
                    Some((*rank, *key))
                }
                _ => None,
            })
            .expect("parity update for the new record");
        assert_eq!(
            update,
            (1, Some(12)),
            "free rank from the adopted table is reused"
        );
    }

    #[test]
    fn dump_reports_full_contents() {
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        let mut b = mem_bucket(3, 2, 10);
        b.handle(
            SiteId(9),
            Wire::Request {
                req_id: 1,
                client: 9,
                hops: 0,
                op: Op::Insert {
                    key: 3,
                    value: vec![7],
                },
            },
            &ctx,
        );
        let out = b.handle(
            SiteId(5),
            Wire::Dump {
                req_id: 9,
                client: 5,
            },
            &ctx,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(5));
        assert!(matches!(
            &out[0].1,
            Wire::DumpState { req_id: 9, addr: 3, level: 2, records }
                if records == &vec![(3u64, vec![7u8])]
        ));
    }

    #[test]
    fn underflow_reports_once_until_refilled() {
        let net = Network::new(NetConfig::default());
        let (ctx, coord) = ctx(&net);
        let mut b = mem_bucket(0, 0, 64); // threshold 8
        for key in 0..10u64 {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert { key, value: vec![] },
                },
                &ctx,
            );
        }
        let mut underflows = 0;
        for key in 0..10u64 {
            let out = b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: 100 + key,
                    client: 9,
                    hops: 0,
                    op: Op::Delete { key },
                },
                &ctx,
            );
            underflows += out
                .iter()
                .filter(|(to, m)| *to == coord && matches!(m, Wire::Underflow { .. }))
                .count();
        }
        assert_eq!(underflows, 1, "underflow must be reported exactly once");
    }

    #[test]
    fn scan_applies_filter() {
        let net = Network::new(NetConfig::default());
        let (ctx, _) = ctx(&net);
        let mut b = mem_bucket(0, 0, 100);
        for (key, val) in [(1u64, b"SCHWARZ".to_vec()), (2, b"LITWIN".to_vec())] {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert { key, value: val },
                },
                &ctx,
            );
        }
        let out = b.handle(
            SiteId(9),
            Wire::ScanReq {
                req_id: 5,
                client: 9,
                query: b"WARZ".to_vec(),
                keys_only: false,
            },
            &ctx,
        );
        let Wire::ScanResp { matches, .. } = &out[0].1 else {
            panic!("scan resp")
        };
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].key, 1);
        assert_eq!(matches[0].value.as_deref(), Some(b"SCHWARZ".as_slice()));
    }

    /// Regression (ISSUE 6 satellite): `key_rank` must never retain
    /// entries for removed keys — rank drift would corrupt the recovery
    /// slot table and the WAL snapshot ordering. Interleaves inserts,
    /// overwrites, deletes (including of absent keys), and a full merge.
    #[test]
    fn key_rank_never_drifts_from_records() {
        let net = Network::new(NetConfig::default());
        let directory = Arc::new(Directory::new());
        let coord = net.register();
        let parity_site = net.register();
        directory.set_parity(1, vec![parity_site.id()]);
        let ctx = BucketCtx {
            directory,
            coordinator: coord.id(),
            filter: Arc::new(SubstringFilter),
            parity: Some(ParityConfig {
                group_size: 2,
                parity_count: 1,
                slot_size: 32,
            }),
            obs: Registry::new("bucket-test"),
            drain_budget: crate::drain::DEFAULT_DRAIN_BUDGET,
        };
        let mut b = mem_bucket(2, 2, 100);
        let check = |b: &BucketState, step: &str| {
            assert_eq!(
                b.key_rank.len(),
                b.engine.len(),
                "key_rank drifted from records after {step}"
            );
            for (&key, &rank) in &b.key_rank {
                assert_eq!(
                    b.ranks.get(rank as usize).copied().flatten(),
                    Some(key),
                    "rank table inconsistent after {step}"
                );
            }
        };
        let insert = |b: &mut BucketState, key: u64, v: u8| {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: key,
                    client: 9,
                    hops: 0,
                    op: Op::Insert {
                        key,
                        value: vec![v],
                    },
                },
                &ctx,
            );
        };
        let delete = |b: &mut BucketState, key: u64| {
            b.handle(
                SiteId(9),
                Wire::Request {
                    req_id: 1000 + key,
                    client: 9,
                    hops: 0,
                    op: Op::Delete { key },
                },
                &ctx,
            );
        };
        for key in [2u64, 6, 10, 14] {
            insert(&mut b, key, key as u8);
            check(&b, "insert");
        }
        insert(&mut b, 6, 99); // overwrite keeps the same rank
        check(&b, "overwrite");
        delete(&mut b, 10);
        check(&b, "delete");
        delete(&mut b, 10); // double delete of a gone key
        check(&b, "double delete");
        delete(&mut b, 777); // delete of a never-present key
        check(&b, "absent delete");
        insert(&mut b, 18, 7); // reuses the freed rank
        check(&b, "insert after delete");
        // merge ships everything; after the ack the tables must be empty
        b.handle(
            coord.id(),
            Wire::MergeCmd {
                addr: 2,
                into_addr: 0,
                into_site: 50,
            },
            &ctx,
        );
        check(&b, "merge (pre-ack: records still local)");
        b.handle(SiteId(50), Wire::TransferAck { addr: 0 }, &ctx);
        check(&b, "merge ack");
        assert_eq!(b.key_rank.len(), 0);
        assert!(b.ranks.iter().all(Option::is_none));
    }

    /// A bucket reopened over a non-empty engine rebuilds its posting
    /// index and rank tables, and re-reports overflow if it recovers past
    /// capacity.
    #[test]
    fn startup_rebuilds_bookkeeping_from_recovered_records() {
        let net = Network::new(NetConfig::default());
        let (mut ctx, coord) = ctx(&net);
        ctx.parity = Some(ParityConfig {
            group_size: 2,
            parity_count: 1,
            slot_size: 32,
        });
        let mut engine = MemEngine::new();
        for key in [4u64, 8, 12] {
            engine.put(key, &[key as u8]).unwrap();
        }
        // index width 1: SubstringFilter probes are byte-grams
        let mut b = BucketState::new(0, 2, 2, Some(1), Box::new(engine));
        let out = b.startup(&ctx);
        assert_eq!(b.key_rank.len(), 3);
        assert_eq!(b.ranks.iter().flatten().count(), 3);
        assert!(
            b.index.as_ref().is_some_and(|idx| idx.len() > 0),
            "posting index rebuilt from recovered records"
        );
        assert!(
            out.iter()
                .any(|(to, m)| *to == coord && matches!(m, Wire::Overflow { size: 3, .. })),
            "recovered past capacity 2 must re-report overflow"
        );
        // an empty engine's startup is silent
        let mut fresh = mem_bucket(1, 2, 2);
        assert!(fresh.startup(&ctx).is_empty());
    }
}
