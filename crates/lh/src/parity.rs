//! LH\*<sub>RS</sub> parity sites and bucket recovery \[LMS05\].
//!
//! Data buckets are grouped `k` at a time (bucket address `a` belongs to
//! group `a / k` as member `a mod k`). Each group has `m` parity sites.
//! Records occupy fixed-size *slots* addressed by a per-bucket *rank*;
//! parity site `p` of a group stores, per rank, the Reed–Solomon parity
//! share `Σ_i coef(p, i) · slot_i` plus the member keys (the key metadata
//! the recovery needs, exactly as in LH\*RS). Updates arrive as XOR deltas,
//! so a parity site never sees record plaintext ordering beyond slot
//! granularity, and an update costs one message per parity site.
//!
//! Recovery of a failed bucket gathers the slot tables of the surviving
//! members plus the parity rows and solves the code; any `m` simultaneous
//! failures per group are survivable.

use crate::drain::{fill_batch, SendQueue, Wakeup};
use crate::messages::{ParityRow, Wire};
use sdds_gf::rs::ReedSolomon;
use sdds_net::{Endpoint, Envelope, SiteId};

/// Encodes a value into its fixed slot: two little-endian length bytes,
/// the payload, zero padding.
pub(crate) fn slot_of(value: &[u8], slot_size: usize) -> Vec<u8> {
    debug_assert!(value.len() + 2 <= slot_size, "value exceeds slot");
    let mut slot = vec![0u8; slot_size];
    slot[0] = (value.len() & 0xFF) as u8;
    slot[1] = ((value.len() >> 8) & 0xFF) as u8;
    slot[2..2 + value.len()].copy_from_slice(value);
    slot
}

/// Decodes a slot back into the value (`None` for an all-zero/free slot
/// with zero length).
pub(crate) fn value_of(slot: &[u8]) -> Vec<u8> {
    let len = slot[0] as usize | ((slot[1] as usize) << 8);
    slot[2..2 + len].to_vec()
}

/// XOR delta between the slot encodings of an old and a new value
/// (`None` = absent record = all-zero slot).
pub(crate) fn slot_delta(old: Option<&[u8]>, new: Option<&[u8]>, slot_size: usize) -> Vec<u8> {
    let old_slot = old
        .map(|v| slot_of(v, slot_size))
        .unwrap_or_else(|| vec![0; slot_size]);
    let new_slot = new
        .map(|v| slot_of(v, slot_size))
        .unwrap_or_else(|| vec![0; slot_size]);
    old_slot
        .iter()
        .zip(new_slot.iter())
        .map(|(a, b)| a ^ b)
        .collect()
}

/// State of one parity site: `parity_index`-th parity of one group.
pub(crate) struct ParityState {
    group: u64,
    parity_index: u32,
    k: usize,
    slot_size: usize,
    rs: ReedSolomon,
    rows: Vec<Row>,
}

struct Row {
    keys: Vec<Option<u64>>,
    slot: Vec<u8>,
}

impl ParityState {
    pub(crate) fn new(
        group: u64,
        parity_index: u32,
        k: usize,
        m: usize,
        slot_size: usize,
    ) -> ParityState {
        ParityState {
            group,
            parity_index,
            k,
            slot_size,
            // lint: allow(panic-freedom) -- ClusterConfig validation caps k and m well inside RS's k>=1, k+m<=256 domain
            rs: ReedSolomon::new(k, m).expect("validated parity parameters"),
            rows: Vec::new(),
        }
    }

    fn row_mut(&mut self, rank: u32) -> &mut Row {
        while self.rows.len() <= rank as usize {
            self.rows.push(Row {
                keys: vec![None; self.k],
                slot: vec![0; self.slot_size],
            });
        }
        &mut self.rows[rank as usize]
    }

    /// Applies an update delta: `slot += coef(parity_index, member) · delta`.
    pub(crate) fn apply(&mut self, member: u32, rank: u32, key: Option<u64>, delta: &[u8]) {
        debug_assert_eq!(delta.len(), self.slot_size);
        let coef = self
            .rs
            .parity_coefficient(self.parity_index as usize, member as usize);
        let scaled = self.rs.scale_bytes(delta, coef);
        let row = self.row_mut(rank);
        row.keys[member as usize] = key;
        for (s, d) in row.slot.iter_mut().zip(scaled.iter()) {
            *s ^= d;
        }
    }

    /// Snapshot for recovery.
    pub(crate) fn rows(&self) -> Vec<ParityRow> {
        self.rows
            .iter()
            .map(|r| ParityRow {
                keys: r.keys.clone(),
                slot: r.slot.clone(),
            })
            .collect()
    }

    pub(crate) fn handle(&mut self, msg: Wire) -> Vec<(SiteId, Wire)> {
        match msg {
            Wire::ParityUpdate {
                group,
                member,
                rank,
                key,
                delta,
            } => {
                debug_assert_eq!(group, self.group);
                self.apply(member, rank, key, &delta);
                Vec::new()
            }
            Wire::ParityRead {
                req_id,
                client,
                group,
            } => {
                debug_assert_eq!(group, self.group);
                vec![(
                    SiteId(client),
                    Wire::ParityState {
                        req_id,
                        parity_index: self.parity_index,
                        rows: self.rows(),
                    },
                )]
            }
            _ => Vec::new(),
        }
    }
}

/// The parity-site thread loop: batch-drained like the bucket loop. A
/// slot-delta stream from a splitting group arrives at high fan-in, so
/// amortizing the wakeup over a batch matters here too. Parity sites
/// only ever emit client-bound `ParityState` replies (recovery re-reads
/// on loss), so no idle tick is needed.
pub(crate) fn run_parity(endpoint: Endpoint, mut state: ParityState, drain_budget: usize) {
    let budget = drain_budget.max(1);
    let mut batch: Vec<Envelope> = Vec::with_capacity(budget);
    let mut outbox = SendQueue::new();
    let mut health = crate::health::LoopHealth::register(sdds_obs::Registry::global());
    while let Wakeup::Batch = fill_batch(&endpoint, budget, None, &mut batch) {
        health.busy();
        let mut shutdown = false;
        for env in batch.drain(..) {
            let Some(msg) = Wire::decode(&env.payload) else {
                continue;
            };
            if matches!(msg, Wire::Shutdown) {
                shutdown = true;
                break;
            }
            // Child span under the sender's context (inert for untraced
            // traffic): parity updates triggered by a traced insert/delete
            // and parity reads during recovery stay inside the operation's
            // trace.
            let name = match &msg {
                Wire::ParityUpdate { .. } => "parity.update",
                Wire::ParityRead { .. } => "parity.read",
                _ => "parity.msg",
            };
            let mut span = sdds_obs::trace::remote_span(name, env.ctx);
            span.set_site(endpoint.id().0 as i64);
            let out_ctx = span.context();
            for (to, out) in state.handle(msg) {
                let payload = out.encode();
                outbox.send(&endpoint, to, &out, payload, out_ctx);
            }
        }
        outbox.flush(&endpoint);
        health.idle();
        if shutdown {
            break;
        }
    }
}

/// Reconstructs the failed member's `(key, value)` records from survivor
/// slot tables and parity rows.
///
/// * `k`, `m`, `slot_size` — the group's parity parameters;
/// * `failed` — member index being reconstructed;
/// * `members` — per member index: `Some(slot table)` if the member
///   survives (shorter tables are implicitly padded with free ranks),
///   `None` if unavailable. A member bucket that never existed should be
///   passed as survived-with-empty-table.
/// * `parities` — per parity index: `Some(rows)` if available.
#[allow(clippy::type_complexity)] // rank-indexed optional slot tables
pub(crate) fn reconstruct_member(
    k: usize,
    m: usize,
    slot_size: usize,
    failed: usize,
    members: &[Option<Vec<Option<(u64, Vec<u8>)>>>],
    parities: &[Option<Vec<ParityRow>>],
) -> Result<Vec<Option<(u64, Vec<u8>)>>, String> {
    assert_eq!(members.len(), k);
    assert_eq!(parities.len(), m);
    let rs = ReedSolomon::new(k, m).map_err(|e| e.to_string())?;
    // number of ranks = max over all sources
    let nranks = members
        .iter()
        .flatten()
        .map(|t| t.len())
        .chain(parities.iter().flatten().map(|r| r.len()))
        .max()
        .unwrap_or(0);
    let mut recovered = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        // key of the failed member at this rank, from any parity row
        let key = parities
            .iter()
            .flatten()
            .filter_map(|rows| rows.get(rank))
            .find_map(|row| row.keys[failed]);
        let Some(key) = key else {
            recovered.push(None); // free rank
            continue;
        };
        // assemble shares
        let mut shares: Vec<Option<Vec<u8>>> = Vec::with_capacity(k + m);
        for (i, member) in members.iter().enumerate() {
            if i == failed {
                shares.push(None);
                continue;
            }
            match member {
                Some(table) => {
                    let slot = table
                        .get(rank)
                        .and_then(|e| e.as_ref().map(|(_, s)| s.clone()))
                        .unwrap_or_else(|| vec![0; slot_size]);
                    shares.push(Some(slot));
                }
                None => shares.push(None),
            }
        }
        for parity in parities.iter() {
            match parity {
                Some(rows) => {
                    let slot = rows
                        .get(rank)
                        .map(|r| r.slot.clone())
                        .unwrap_or_else(|| vec![0; slot_size]);
                    shares.push(Some(slot));
                }
                None => shares.push(None),
            }
        }
        let data = rs
            .reconstruct(&shares)
            .map_err(|e| format!("rank {rank}: {e}"))?;
        let value = value_of(&data[failed]);
        recovered.push(Some((key, value)));
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let slot = slot_of(b"hello", 16);
        assert_eq!(slot.len(), 16);
        assert_eq!(value_of(&slot), b"hello");
        assert_eq!(value_of(&slot_of(b"", 8)), b"");
    }

    #[test]
    fn slot_delta_cancels() {
        let d = slot_delta(Some(b"abc"), Some(b"abc"), 16);
        assert!(d.iter().all(|&b| b == 0));
        let d = slot_delta(None, Some(b"abc"), 16);
        assert_eq!(d, slot_of(b"abc", 16));
    }

    #[test]
    fn parity_state_tracks_xor_of_deltas() {
        // one member, one parity (k=1, m=1): parity slot equals data slot
        let mut p = ParityState::new(0, 0, 1, 1, 16);
        p.apply(0, 0, Some(7), &slot_delta(None, Some(b"xyz"), 16));
        let rows = p.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].keys, vec![Some(7)]);
        // coef(0,0) for k=1 Cauchy: recover through reconstruct_member
        let rec = reconstruct_member(1, 1, 16, 0, &[None], &[Some(rows)]).unwrap();
        assert_eq!(rec, vec![Some((7, b"xyz".to_vec()))]);
    }

    #[test]
    fn update_then_delete_clears_parity() {
        let mut p = ParityState::new(0, 0, 2, 1, 16);
        let insert = slot_delta(None, Some(b"v1"), 16);
        p.apply(0, 0, Some(1), &insert);
        let delete = slot_delta(Some(b"v1"), None, 16);
        p.apply(0, 0, None, &delete);
        let rows = p.rows();
        assert!(rows[0].slot.iter().all(|&b| b == 0));
        assert_eq!(rows[0].keys, vec![None, None]);
    }

    #[test]
    fn reconstruct_with_two_members_one_parity() {
        let (k, m, slot) = (2usize, 1usize, 32usize);
        let mut p = ParityState::new(0, 0, k, m, slot);
        // member 0: key 10 -> "alpha" at rank 0 ; member 1: key 11 -> "beta"
        p.apply(0, 0, Some(10), &slot_delta(None, Some(b"alpha"), slot));
        p.apply(1, 0, Some(11), &slot_delta(None, Some(b"beta"), slot));
        // lose member 1; member 0 survives
        let member0_table = vec![Some((10u64, slot_of(b"alpha", slot)))];
        let rec = reconstruct_member(
            k,
            m,
            slot,
            1,
            &[Some(member0_table), None],
            &[Some(p.rows())],
        )
        .unwrap();
        assert_eq!(rec, vec![Some((11, b"beta".to_vec()))]);
    }

    #[test]
    fn reconstruct_handles_ragged_ranks_and_free_slots() {
        let (k, m, slot) = (2usize, 1usize, 24usize);
        let mut p = ParityState::new(0, 0, k, m, slot);
        p.apply(0, 0, Some(1), &slot_delta(None, Some(b"a"), slot));
        p.apply(0, 1, Some(2), &slot_delta(None, Some(b"b"), slot));
        // member 1 only ever wrote rank 0
        p.apply(1, 0, Some(3), &slot_delta(None, Some(b"c"), slot));
        let member1_table = vec![Some((3u64, slot_of(b"c", slot)))];
        let rec = reconstruct_member(
            k,
            m,
            slot,
            0,
            &[None, Some(member1_table)],
            &[Some(p.rows())],
        )
        .unwrap();
        assert_eq!(
            rec,
            vec![Some((1, b"a".to_vec())), Some((2, b"b".to_vec()))]
        );
    }

    #[test]
    fn double_failure_with_two_parities() {
        let (k, m, slot) = (2usize, 2usize, 24usize);
        let mut p0 = ParityState::new(0, 0, k, m, slot);
        let mut p1 = ParityState::new(0, 1, k, m, slot);
        for p in [&mut p0, &mut p1] {
            p.apply(0, 0, Some(1), &slot_delta(None, Some(b"one"), slot));
            p.apply(1, 0, Some(2), &slot_delta(None, Some(b"two"), slot));
        }
        // both members lost
        let rec0 = reconstruct_member(
            k,
            m,
            slot,
            0,
            &[None, None],
            &[Some(p0.rows()), Some(p1.rows())],
        )
        .unwrap();
        assert_eq!(rec0, vec![Some((1, b"one".to_vec()))]);
        let rec1 = reconstruct_member(
            k,
            m,
            slot,
            1,
            &[None, None],
            &[Some(p0.rows()), Some(p1.rows())],
        )
        .unwrap();
        assert_eq!(rec1, vec![Some((2, b"two".to_vec()))]);
    }

    #[test]
    fn reconstruct_fails_without_enough_shares() {
        let (k, m, slot) = (3usize, 1usize, 24usize);
        let mut p = ParityState::new(0, 0, k, m, slot);
        p.apply(0, 0, Some(1), &slot_delta(None, Some(b"x"), slot));
        p.apply(1, 0, Some(2), &slot_delta(None, Some(b"y"), slot));
        p.apply(2, 0, Some(3), &slot_delta(None, Some(b"z"), slot));
        // two members lost but only one parity: not recoverable
        let err = reconstruct_member(
            k,
            m,
            slot,
            0,
            &[None, None, Some(vec![Some((3, slot_of(b"z", slot)))])],
            &[Some(p.rows())],
        );
        assert!(err.is_err());
    }
}
