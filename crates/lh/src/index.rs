//! The per-bucket inverted chunk-posting index.
//!
//! Bucket bodies produced by the encrypted scheme are sequences of
//! fixed-width elements (the ECB-encrypted, dispersed chunk values of §2);
//! a scan series matches a record only if the record body *contains the
//! series' first element*. The posting index inverts that containment:
//! element value → postings `(key, element_offset)`, so a scan probes a
//! handful of hash buckets instead of sweeping every record body.
//!
//! Elements are keyed by a 64-bit FNV-1a hash of their bytes rather than
//! by the bytes themselves — a hash collision can only *add* candidates,
//! never lose one, and every candidate is confirmed against the full
//! prepared query before it is reported, so collisions cost a confirmation
//! and nothing else. The index stores only values the bucket already
//! stores (ECB-deterministic ciphertext), so it adds no leakage beyond the
//! bodies themselves.

use std::collections::{BTreeSet, HashMap};

/// FNV-1a over an element's bytes.
fn element_hash(element: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in element {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Inverted index from element value (hashed) to the records containing
/// it. Maintained by the bucket through insert, overwrite, delete,
/// split/merge transfers, and recovery adoption.
pub(crate) struct PostingIndex {
    element_bytes: usize,
    /// element hash → `(record key, element offset)` postings.
    postings: HashMap<u64, Vec<(u64, u32)>>,
    /// Total postings held (diagnostics; not load-bearing).
    entries: usize,
}

impl PostingIndex {
    pub(crate) fn new(element_bytes: usize) -> PostingIndex {
        PostingIndex {
            element_bytes,
            postings: HashMap::new(),
            entries: 0,
        }
    }

    /// The element width this index was built for.
    pub(crate) fn element_bytes(&self) -> usize {
        self.element_bytes
    }

    /// Number of postings currently held.
    #[allow(dead_code)] // diagnostics + unit tests
    pub(crate) fn len(&self) -> usize {
        self.entries
    }

    /// True when `value` splits into whole elements of this index's width.
    /// Ragged bodies can never match an equality series (the query layer
    /// rejects them), so they are simply not indexed.
    fn indexable(&self, value: &[u8]) -> bool {
        self.element_bytes > 0
            && !value.is_empty()
            && value.len().is_multiple_of(self.element_bytes)
    }

    /// Adds the postings of record `(key, value)`.
    pub(crate) fn add(&mut self, key: u64, value: &[u8]) {
        if !self.indexable(value) {
            return;
        }
        for (m, element) in value.chunks_exact(self.element_bytes).enumerate() {
            self.postings
                .entry(element_hash(element))
                .or_default()
                .push((key, m as u32));
            self.entries += 1;
        }
    }

    /// Removes every posting of record `key`, walking the elements of the
    /// value it was indexed under.
    pub(crate) fn remove(&mut self, key: u64, value: &[u8]) {
        if !self.indexable(value) {
            return;
        }
        for element in value.chunks_exact(self.element_bytes) {
            let h = element_hash(element);
            let Some(list) = self.postings.get_mut(&h) else {
                continue;
            };
            let before = list.len();
            // one retain drops *all* of the key's postings under this
            // hash, so repeated elements make later iterations no-ops
            list.retain(|&(k, _)| k != key);
            self.entries -= before - list.len();
            if list.is_empty() {
                self.postings.remove(&h);
            }
        }
    }

    /// Drops everything (recovery adoption rebuilds from scratch).
    pub(crate) fn clear(&mut self) {
        self.postings.clear();
        self.entries = 0;
    }

    /// The candidate keys for a probe set: every record holding at least
    /// one probe element (or sharing its hash). Sorted and deduplicated so
    /// the confirmation pass visits records in deterministic order.
    pub(crate) fn candidates(&self, probes: &[Vec<u8>]) -> BTreeSet<u64> {
        let mut keys = BTreeSet::new();
        for probe in probes {
            if let Some(list) = self.postings.get(&element_hash(probe)) {
                keys.extend(list.iter().map(|&(k, _)| k));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_probe_remove_roundtrip() {
        let mut idx = PostingIndex::new(2);
        idx.add(1, &[0xAA, 0xBB, 0xCC, 0xDD]);
        idx.add(2, &[0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(idx.len(), 4);
        let c = idx.candidates(&[vec![0xCC, 0xDD]]);
        assert_eq!(c.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let c = idx.candidates(&[vec![0xAA, 0xBB]]);
        assert_eq!(c.into_iter().collect::<Vec<_>>(), vec![1]);
        idx.remove(1, &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(idx.len(), 2);
        assert!(idx.candidates(&[vec![0xAA, 0xBB]]).is_empty());
        let c = idx.candidates(&[vec![0xCC, 0xDD]]);
        assert_eq!(c.into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn repeated_elements_remove_cleanly() {
        let mut idx = PostingIndex::new(1);
        idx.add(7, &[5, 5, 5]);
        assert_eq!(idx.len(), 3);
        idx.remove(7, &[5, 5, 5]);
        assert_eq!(idx.len(), 0);
        assert!(idx.candidates(&[vec![5]]).is_empty());
    }

    #[test]
    fn ragged_and_empty_bodies_are_skipped() {
        let mut idx = PostingIndex::new(4);
        idx.add(1, &[1, 2, 3]); // ragged
        idx.add(2, &[]); // empty
        assert_eq!(idx.len(), 0);
        // removal of a never-indexed body is a no-op
        idx.remove(1, &[1, 2, 3]);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn union_over_probes_deduplicates() {
        let mut idx = PostingIndex::new(1);
        idx.add(3, &[1, 2]);
        let c = idx.candidates(&[vec![1], vec![2]]);
        assert_eq!(c.into_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut idx = PostingIndex::new(1);
        idx.add(1, &[9]);
        idx.clear();
        assert_eq!(idx.len(), 0);
        assert!(idx.candidates(&[vec![9]]).is_empty());
    }
}
