//! Server-side scan filters.
//!
//! LH\* scans visit every bucket in parallel; what each bucket evaluates
//! per record is pluggable. The plain SDDS of \[LNS96\] does substring
//! scans on cleartext ([`SubstringFilter`]); the encrypted scheme installs
//! a chunk-series matcher that operates purely on ciphertext equality.

/// A predicate evaluated by bucket sites during scans. The query arrives as
/// opaque bytes so the filter can define its own encoding.
pub trait ScanFilter: Send + Sync + 'static {
    /// True if the record `(key, value)` matches `query`.
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool;
}

/// Plaintext substring search — the "parallel (sub-)string searches" the
/// paper attributes to standard LH\* (§1), and the baseline its encrypted
/// index must preserve.
#[derive(Debug, Default, Clone, Copy)]
pub struct SubstringFilter;

impl ScanFilter for SubstringFilter {
    fn matches(&self, _key: u64, value: &[u8], query: &[u8]) -> bool {
        if query.is_empty() {
            return true;
        }
        value.windows(query.len()).any(|w| w == query)
    }
}

impl<F> ScanFilter for F
where
    F: Fn(u64, &[u8], &[u8]) -> bool + Send + Sync + 'static,
{
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool {
        self(key, value, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_matches() {
        let f = SubstringFilter;
        assert!(f.matches(0, b"SCHWARZ THOMAS", b"WARZ"));
        assert!(f.matches(0, b"SCHWARZ", b"SCHWARZ"));
        assert!(!f.matches(0, b"SCHWARZ", b"SCHWARZT"));
        assert!(!f.matches(0, b"ABC", b"ZX"));
    }

    #[test]
    fn empty_query_matches_everything() {
        assert!(SubstringFilter.matches(0, b"", b""));
        assert!(SubstringFilter.matches(0, b"X", b""));
    }

    #[test]
    fn closure_filters_work() {
        let by_key = |key: u64, _v: &[u8], _q: &[u8]| key.is_multiple_of(2);
        assert!(by_key.matches(4, b"", b""));
        assert!(!by_key.matches(5, b"", b""));
    }
}
