//! Server-side scan filters and the prepared-query protocol.
//!
//! LH\* scans visit every bucket in parallel; what each bucket evaluates
//! per record is pluggable. The plain SDDS of \[LNS96\] does substring
//! scans on cleartext ([`SubstringFilter`]); the encrypted scheme installs
//! a chunk-series matcher that operates purely on ciphertext equality.
//!
//! # Prepared queries
//!
//! A `ScanReq` carries one opaque query evaluated against *every* record
//! of the bucket. Decoding and validating that wire query once per record
//! is pure waste, so buckets call [`ScanFilter::prepare`] **once per
//! `ScanReq`** and evaluate the returned [`PreparedQuery`] per record.
//! A prepared query may additionally expose [`probes`]: fixed-width
//! element values that every matching record must contain. Buckets that
//! maintain a posting index (see [`ScanFilter::index_element_bytes`]) use
//! the probes to compute a candidate key set and confirm full matches only
//! on those candidates, instead of sweeping the whole bucket.
//!
//! [`probes`]: PreparedQuery::probes

/// A query decoded and validated once per `ScanReq`, then evaluated per
/// record (or per candidate record when the bucket can probe its posting
/// index).
pub trait PreparedQuery {
    /// True if the record `(key, value)` matches the prepared query.
    fn matches(&self, key: u64, value: &[u8]) -> bool;

    /// Posting-index probe elements, if the query supports candidate
    /// pruning: every record matching this query is guaranteed to contain
    /// at least one of the returned fixed-width element values in its
    /// body. `None` (the default) disables the index for this query and
    /// the bucket falls back to a linear sweep; `Some(&[])` means *no*
    /// record can match (the bucket answers instantly with no matches).
    fn probes(&self) -> Option<&[Vec<u8>]> {
        None
    }
}

/// The default [`PreparedQuery`]: wraps an unprepared filter and its wire
/// query, delegating every record to [`ScanFilter::matches`].
struct UnpreparedScan<'q, F: ?Sized> {
    filter: &'q F,
    query: &'q [u8],
}

impl<F: ScanFilter + ?Sized> PreparedQuery for UnpreparedScan<'_, F> {
    fn matches(&self, key: u64, value: &[u8]) -> bool {
        self.filter.matches(key, value, self.query)
    }
}

/// A predicate evaluated by bucket sites during scans. The query arrives as
/// opaque bytes so the filter can define its own encoding.
pub trait ScanFilter: Send + Sync + 'static {
    /// True if the record `(key, value)` matches `query`.
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool;

    /// Decodes and validates `query` once per `ScanReq`. The default wraps
    /// [`matches`](Self::matches) (no per-`ScanReq` work saved, no
    /// probes); filters with an expensive wire format override this.
    fn prepare<'q>(&'q self, query: &'q [u8]) -> Box<dyn PreparedQuery + 'q> {
        Box::new(UnpreparedScan {
            filter: self,
            query,
        })
    }

    /// Fixed element width (bytes) the buckets should maintain a posting
    /// index over, or `None` (the default) for no index. When `Some(w)`,
    /// every record body that is a whole number of `w`-byte elements is
    /// indexed element-by-element, and prepared queries whose
    /// [`probes`](PreparedQuery::probes) are `w` bytes wide are answered
    /// from the index.
    fn index_element_bytes(&self) -> Option<usize> {
        None
    }

    /// True if the record under `key` should enter the posting index.
    /// Filters whose key layout marks some records as never matching any
    /// query (e.g. the encrypted scheme's record-store copies) override
    /// this to keep those records out of the index.
    fn should_index(&self, key: u64) -> bool {
        let _ = key;
        true
    }
}

/// Plaintext substring search — the "parallel (sub-)string searches" the
/// paper attributes to standard LH\* (§1), and the baseline its encrypted
/// index must preserve.
#[derive(Debug, Default, Clone, Copy)]
pub struct SubstringFilter;

impl ScanFilter for SubstringFilter {
    fn matches(&self, _key: u64, value: &[u8], query: &[u8]) -> bool {
        if query.is_empty() {
            return true;
        }
        value.windows(query.len()).any(|w| w == query)
    }
}

impl<F> ScanFilter for F
where
    F: Fn(u64, &[u8], &[u8]) -> bool + Send + Sync + 'static,
{
    fn matches(&self, key: u64, value: &[u8], query: &[u8]) -> bool {
        self(key, value, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_matches() {
        let f = SubstringFilter;
        assert!(f.matches(0, b"SCHWARZ THOMAS", b"WARZ"));
        assert!(f.matches(0, b"SCHWARZ", b"SCHWARZ"));
        assert!(!f.matches(0, b"SCHWARZ", b"SCHWARZT"));
        assert!(!f.matches(0, b"ABC", b"ZX"));
    }

    #[test]
    fn empty_query_matches_everything() {
        assert!(SubstringFilter.matches(0, b"", b""));
        assert!(SubstringFilter.matches(0, b"X", b""));
    }

    #[test]
    fn closure_filters_work() {
        let by_key = |key: u64, _v: &[u8], _q: &[u8]| key.is_multiple_of(2);
        assert!(by_key.matches(4, b"", b""));
        assert!(!by_key.matches(5, b"", b""));
    }

    #[test]
    fn default_prepare_delegates_to_matches() {
        let f = SubstringFilter;
        let q = b"WARZ".to_vec();
        let prepared = f.prepare(&q);
        assert!(prepared.matches(0, b"SCHWARZ"));
        assert!(!prepared.matches(0, b"LITWIN"));
        assert!(prepared.probes().is_none(), "default has no probes");
    }

    #[test]
    fn default_filter_has_no_index() {
        assert!(SubstringFilter.index_element_bytes().is_none());
        assert!(SubstringFilter.should_index(7));
    }
}
