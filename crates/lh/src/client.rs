//! The LH\* client: key operations through a possibly-stale file image.

use crate::cluster::Directory;
use crate::hash::ClientImage;
use crate::messages::{Op, OpResult, ScanMatch, Wire};
use bytes::Bytes;
use sdds_net::{Endpoint, NetError, SiteId};
use sdds_obs::trace;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced to LH\* applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LhError {
    /// Underlying network failure.
    Net(NetError),
    /// No response arrived in time.
    Timeout,
    /// The serving bucket rejected the operation.
    Rejected(String),
    /// The durable storage backend failed (rendered, since the underlying
    /// `io::Error` is neither `Clone` nor `Eq`).
    Storage(String),
    /// A scan could not obtain an answer from every bucket (typically
    /// because one is dead and awaiting recovery); returning `Ok` would
    /// silently hide the coverage gap.
    ScanIncomplete {
        /// Bucket addresses that never answered.
        missing: Vec<u64>,
    },
}

impl fmt::Display for LhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LhError::Net(e) => write!(f, "network error: {e}"),
            LhError::Timeout => write!(f, "request timed out"),
            LhError::Rejected(m) => write!(f, "operation rejected: {m}"),
            LhError::Storage(m) => write!(f, "storage error: {m}"),
            LhError::ScanIncomplete { missing } => {
                write!(f, "scan incomplete: no answer from buckets {missing:?}")
            }
        }
    }
}

impl std::error::Error for LhError {}

impl From<NetError> for LhError {
    fn from(e: NetError) -> LhError {
        LhError::Net(e)
    }
}

/// How a client reacts when a bounded site inbox rejects a send with
/// [`NetError::Overloaded`] (admission control). The client backs off and
/// retries the same site with exponential delay; every rejection is
/// counted in `lh.rejected_total`. Once `max_retries` is exhausted the
/// `Overloaded` error propagates like any other network failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first rejected send (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub initial_backoff: Duration,
    /// Ceiling on the per-retry backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first `Overloaded` propagates.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

/// A client of an LH\* file. Each client owns a network endpoint and its
/// private [`ClientImage`], updated by Image Adjustment Messages.
pub struct LhClient {
    endpoint: Endpoint,
    directory: Arc<Directory>,
    coordinator: SiteId,
    image: Cell<ClientImage>,
    next_req: Cell<u64>,
    timeout: Cell<Duration>,
    retry: Cell<RetryPolicy>,
    /// Total IAMs received — observable measure of image staleness.
    iams: Cell<u64>,
    /// Total forwarding hops reported — the paper's ≤2 invariant.
    hops: Cell<u64>,
}

impl fmt::Debug for LhClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LhClient")
            .field("site", &self.endpoint.id())
            .field("image", &self.image.get())
            .finish()
    }
}

impl LhClient {
    pub(crate) fn new(
        endpoint: Endpoint,
        directory: Arc<Directory>,
        coordinator: SiteId,
    ) -> LhClient {
        LhClient {
            endpoint,
            directory,
            coordinator,
            image: Cell::new(ClientImage::default()),
            next_req: Cell::new(1),
            timeout: Cell::new(Duration::from_secs(10)),
            retry: Cell::new(RetryPolicy::default()),
            iams: Cell::new(0),
            hops: Cell::new(0),
        }
    }

    /// Sets the total per-operation timeout (spread over the retry
    /// attempts). Useful under fault injection to fail fast.
    pub fn set_timeout(&self, timeout: Duration) {
        self.timeout.set(timeout);
    }

    /// Sets the backoff policy applied when a bounded site inbox rejects
    /// a send ([`NetError::Overloaded`]).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.retry.set(policy);
    }

    /// The client's current admission-control retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.get()
    }

    /// Sends with admission-control awareness. `Overloaded` means the
    /// target's bounded inbox was full and the network refused the send at
    /// the sender — no message was queued — so the client backs off and
    /// retries the *same* site (the record still hashes there; rerouting
    /// would just forward back into the hot inbox). Every rejection is
    /// visible in `lh.rejected_total`.
    fn send_admitted(&self, site: SiteId, payload: Bytes) -> Result<(), NetError> {
        let policy = self.retry.get();
        let mut backoff = policy.initial_backoff;
        let mut rejections = 0;
        loop {
            match self.endpoint.send(site, payload.clone()) {
                Err(NetError::Overloaded(s)) => {
                    sdds_obs::counter("lh.rejected_total").inc();
                    if rejections >= policy.max_retries {
                        return Err(NetError::Overloaded(s));
                    }
                    rejections += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
                other => return other,
            }
        }
    }

    /// The pipelined-batch variant of [`send_admitted`](Self::send_admitted):
    /// one quick backoff, then shed. Batch operations already retransmit
    /// unanswered items each attempt, so spinning the full backoff ladder
    /// per item would burn the attempt window sleeping instead of draining
    /// the responses that unblock the receiving site.
    fn send_pipelined(&self, site: SiteId, payload: Bytes) -> Result<(), NetError> {
        match self.endpoint.send(site, payload.clone()) {
            Err(NetError::Overloaded(_)) => {
                sdds_obs::counter("lh.rejected_total").inc();
                std::thread::sleep(self.retry.get().initial_backoff);
                match self.endpoint.send(site, payload) {
                    Err(NetError::Overloaded(s)) => {
                        sdds_obs::counter("lh.rejected_total").inc();
                        Err(NetError::Overloaded(s))
                    }
                    other => other,
                }
            }
            other => other,
        }
    }

    /// The client's current image of the file.
    pub fn image(&self) -> ClientImage {
        self.image.get()
    }

    /// Image adjustments received so far.
    pub fn iam_count(&self) -> u64 {
        self.iams.get()
    }

    /// Total forwarding hops across all requests so far.
    pub fn hop_count(&self) -> u64 {
        self.hops.get()
    }

    fn fresh_req_id(&self) -> u64 {
        let id = self.next_req.get();
        self.next_req.set(id + 1);
        id
    }

    /// Inserts or overwrites; returns true if a previous value existed.
    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<bool, LhError> {
        match self.call(Op::Insert { key, value })? {
            OpResult::Inserted { replaced } => Ok(replaced),
            OpResult::Error { message } => Err(LhError::Rejected(message)),
            // a mismatched reply is a peer protocol violation, not a
            // client bug: surface it instead of aborting
            other => Err(LhError::Rejected(format!("insert answered with {other:?}"))),
        }
    }

    /// Looks a key up.
    pub fn lookup(&self, key: u64) -> Result<Option<Vec<u8>>, LhError> {
        match self.call(Op::Lookup { key })? {
            OpResult::Found { value } => Ok(value),
            OpResult::Error { message } => Err(LhError::Rejected(message)),
            // see insert(): protocol violation, not a client bug
            other => Err(LhError::Rejected(format!("lookup answered with {other:?}"))),
        }
    }

    /// Deletes a key; returns true if it existed.
    pub fn delete(&self, key: u64) -> Result<bool, LhError> {
        match self.call(Op::Delete { key })? {
            OpResult::Deleted { existed } => Ok(existed),
            OpResult::Error { message } => Err(LhError::Rejected(message)),
            // see insert(): protocol violation, not a client bug
            other => Err(LhError::Rejected(format!("delete answered with {other:?}"))),
        }
    }

    /// Per-call retransmission attempts: the simulated network may drop
    /// messages (fault injection), so requests are retried like any
    /// RPC-over-datagram protocol. Key operations are idempotent, so
    /// retries are safe even if the original request was served and only
    /// the response was lost.
    const ATTEMPTS: u32 = 5;

    fn call(&self, op: Op) -> Result<OpResult, LhError> {
        // Static per-op names so the obs-drift lint can reconcile them
        // against docs/OBSERVABILITY.md.
        let timer_name = match &op {
            Op::Insert { .. } => "lh.insert_seconds",
            Op::Lookup { .. } => "lh.lookup_seconds",
            Op::Delete { .. } => "lh.delete_seconds",
        };
        // One span per key operation; it stays open across retransmission
        // attempts, so every (re)sent request carries the same context and
        // dropped messages remain attributable to this operation.
        let mut span = trace::child_span("lh.request");
        let _timer = sdds_obs::histogram(timer_name).start_timer();
        let req_id = self.fresh_req_id();
        let key = op.key();
        let msg = Wire::Request {
            req_id,
            client: self.endpoint.id().0,
            hops: 0,
            op,
        };
        let attempt_timeout = self.timeout.get() / Self::ATTEMPTS;
        for attempt in 0..Self::ATTEMPTS {
            if attempt > 0 {
                sdds_obs::counter("lh.retries").inc();
            }
            let mut image = self.image.get();
            let addr = image.address(key);
            let site = self
                .directory
                .bucket_site(addr)
                .or_else(|| self.directory.bucket_site(0))
                .ok_or(LhError::Net(NetError::UnknownSite(SiteId(0))))?;
            if self.send_admitted(site, msg.encode()).is_err() {
                // The addressed bucket was merged away between the
                // directory read and the send (the file shrank), or its
                // inbox stayed full past the retry budget. Bucket 0
                // always exists and forwards correctly.
                let fallback = self
                    .directory
                    .bucket_site(0)
                    .ok_or(LhError::Net(NetError::UnknownSite(SiteId(0))))?;
                self.send_admitted(fallback, msg.encode())?;
            }
            let deadline = Instant::now() + attempt_timeout;
            while let Some(remaining) = deadline.checked_duration_since(Instant::now()) {
                let env = match self.endpoint.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                let Some(Wire::Response {
                    req_id: rid,
                    result,
                    served_by,
                    bucket_level,
                    hops,
                }) = Wire::decode(&env.payload)
                else {
                    continue; // stray message (late scan reply etc.)
                };
                if rid != req_id {
                    continue; // late response to an abandoned request
                }
                record_hops(hops);
                span.set_detail(hops as u64);
                if hops > 0 {
                    sdds_obs::counter("lh.iams").inc();
                    self.iams.set(self.iams.get() + 1);
                    self.hops.set(self.hops.get() + hops as u64);
                    image.adjust(served_by, bucket_level);
                    self.image.set(image);
                }
                return Ok(result);
            }
        }
        Err(LhError::Timeout)
    }

    /// Pipelined bulk insert: all requests are sent before any response is
    /// awaited, so a batch costs one round-trip of latency instead of one
    /// per record (the record store copy and its index records travel
    /// together). Lost messages are retransmitted per item.
    pub fn insert_batch(&self, items: Vec<(u64, Vec<u8>)>) -> Result<(), LhError> {
        let _span = trace::child_span("lh.insert_batch");
        let _timer = sdds_obs::histogram("lh.insert_batch_seconds").start_timer();
        sdds_obs::counter("lh.insert_batch_items").add(items.len() as u64);
        let mut pending: HashMap<u64, Wire> = HashMap::with_capacity(items.len());
        for (key, value) in items {
            let req_id = self.fresh_req_id();
            pending.insert(
                req_id,
                Wire::Request {
                    req_id,
                    client: self.endpoint.id().0,
                    hops: 0,
                    op: Op::Insert { key, value },
                },
            );
        }
        let attempt_timeout = self.timeout.get() / Self::ATTEMPTS;
        for _attempt in 0..Self::ATTEMPTS {
            if pending.is_empty() {
                return Ok(());
            }
            let image = self.image.get();
            for msg in pending.values() {
                // pending only ever holds Wire::Request (built above);
                // skip defensively rather than panic
                let Wire::Request { op, .. } = msg else {
                    continue;
                };
                let addr = image.address(op.key());
                let site = self
                    .directory
                    .bucket_site(addr)
                    .or_else(|| self.directory.bucket_site(0))
                    .ok_or(LhError::Net(NetError::UnknownSite(SiteId(0))))?;
                if self.send_pipelined(site, msg.encode()).is_err() {
                    if let Some(fallback) = self.directory.bucket_site(0) {
                        let _ = self.send_pipelined(fallback, msg.encode());
                    }
                }
            }
            let deadline = Instant::now() + attempt_timeout;
            while !pending.is_empty() {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let env = match self.endpoint.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                let Some(Wire::Response {
                    req_id,
                    result,
                    served_by,
                    bucket_level,
                    hops,
                }) = Wire::decode(&env.payload)
                else {
                    continue;
                };
                if pending.remove(&req_id).is_some() {
                    if let OpResult::Error { message } = result {
                        return Err(LhError::Rejected(message));
                    }
                    record_hops(hops);
                    if hops > 0 {
                        sdds_obs::counter("lh.iams").inc();
                        self.iams.set(self.iams.get() + 1);
                        self.hops.set(self.hops.get() + hops as u64);
                        let mut img = self.image.get();
                        img.adjust(served_by, bucket_level);
                        self.image.set(img);
                    }
                }
            }
        }
        if pending.is_empty() {
            Ok(())
        } else {
            Err(LhError::Timeout)
        }
    }

    /// Pipelined bulk delete: all requests are sent before any response
    /// is awaited, so a batch costs one round-trip of latency instead of
    /// one per key. Returns, per input key in order, whether the record
    /// existed. Deletes are idempotent so lost messages are retransmitted
    /// per item (with the usual caveat that a retry of a served-but-lost
    /// response reports `existed = false`, exactly like [`delete`]).
    ///
    /// [`delete`]: Self::delete
    pub fn delete_batch(&self, keys: Vec<u64>) -> Result<Vec<bool>, LhError> {
        let _span = trace::child_span("lh.delete_batch");
        let _timer = sdds_obs::histogram("lh.delete_batch_seconds").start_timer();
        let batch_items = keys.len();
        sdds_obs::counter("lh.delete_batch_items").add(batch_items as u64);
        let mut existed = vec![false; batch_items];
        // req_id → (input slot, request wire)
        let mut pending: HashMap<u64, (usize, Wire)> = HashMap::with_capacity(keys.len());
        for (slot, key) in keys.into_iter().enumerate() {
            let req_id = self.fresh_req_id();
            pending.insert(
                req_id,
                (
                    slot,
                    Wire::Request {
                        req_id,
                        client: self.endpoint.id().0,
                        hops: 0,
                        op: Op::Delete { key },
                    },
                ),
            );
        }
        let attempt_timeout = self.timeout.get() / Self::ATTEMPTS;
        for _attempt in 0..Self::ATTEMPTS {
            if pending.is_empty() {
                return Ok(existed);
            }
            let image = self.image.get();
            for (_, msg) in pending.values() {
                // pending only ever holds Wire::Request (built above);
                // skip defensively rather than panic
                let Wire::Request { op, .. } = msg else {
                    continue;
                };
                let addr = image.address(op.key());
                let site = self
                    .directory
                    .bucket_site(addr)
                    .or_else(|| self.directory.bucket_site(0))
                    .ok_or(LhError::Net(NetError::UnknownSite(SiteId(0))))?;
                if self.send_pipelined(site, msg.encode()).is_err() {
                    if let Some(fallback) = self.directory.bucket_site(0) {
                        let _ = self.send_pipelined(fallback, msg.encode());
                    }
                }
            }
            let deadline = Instant::now() + attempt_timeout;
            while !pending.is_empty() {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let env = match self.endpoint.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                let Some(Wire::Response {
                    req_id,
                    result,
                    served_by,
                    bucket_level,
                    hops,
                }) = Wire::decode(&env.payload)
                else {
                    continue;
                };
                if let Some((slot, _)) = pending.remove(&req_id) {
                    match result {
                        OpResult::Deleted { existed: e } => {
                            if let Some(out) = existed.get_mut(slot) {
                                *out = e;
                            }
                        }
                        OpResult::Error { message } => return Err(LhError::Rejected(message)),
                        // a mismatched reply is a peer protocol violation;
                        // the slot keeps its default (not existed)
                        _ => {}
                    }
                    record_hops(hops);
                    if hops > 0 {
                        sdds_obs::counter("lh.iams").inc();
                        self.iams.set(self.iams.get() + 1);
                        self.hops.set(self.hops.get() + hops as u64);
                        let mut img = self.image.get();
                        img.adjust(served_by, bucket_level);
                        self.image.set(img);
                    }
                }
            }
        }
        if pending.is_empty() {
            Ok(existed)
        } else {
            Err(LhError::Timeout)
        }
    }

    /// Refreshes the image from the coordinator and returns the exact file
    /// extent (used by scans; one round trip, retried on loss).
    pub fn refresh_image(&self) -> Result<u64, LhError> {
        self.refresh_image_detail().map(|(extent, _)| extent)
    }

    /// [`refresh_image`](Self::refresh_image) plus the coordinator's busy
    /// flag (splits/merges running or queued).
    fn refresh_image_detail(&self) -> Result<(u64, bool), LhError> {
        let req_id = self.fresh_req_id();
        let msg = Wire::ExtentReq {
            req_id,
            client: self.endpoint.id().0,
        };
        let attempt_timeout = self.timeout.get() / Self::ATTEMPTS;
        for _attempt in 0..Self::ATTEMPTS {
            self.send_admitted(self.coordinator, msg.encode())?;
            let deadline = Instant::now() + attempt_timeout;
            while let Some(remaining) = deadline.checked_duration_since(Instant::now()) {
                let env = match self.endpoint.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                match Wire::decode(&env.payload) {
                    Some(Wire::ExtentResp {
                        req_id: rid,
                        level,
                        split,
                        busy,
                    }) if rid == req_id => {
                        self.image.set(ClientImage { level, split });
                        return Ok((ClientImage { level, split }.extent(), busy));
                    }
                    _ => continue,
                }
            }
        }
        Err(LhError::Timeout)
    }

    /// Waits until no splits or merges are running or queued, then returns
    /// the exact extent. Scans and snapshots call this so a record
    /// mid-transfer between buckets cannot be missed; with writers still
    /// active the wait can time out (scans concurrent with sustained
    /// inserts see the usual SDDS weak-consistency caveat).
    pub(crate) fn refresh_image_quiescent(&self) -> Result<u64, LhError> {
        let deadline = Instant::now() + self.timeout.get();
        loop {
            let (extent, busy) = self.refresh_image_detail()?;
            if !busy {
                return Ok(extent);
            }
            if Instant::now() >= deadline {
                return Ok(extent); // best effort under sustained writes
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Parallel scan: sends the opaque `query` to every bucket, which
    /// evaluates its installed [`ScanFilter`](crate::ScanFilter); gathers
    /// all answers. This is the paper's "search records … by content in
    /// parallel at all storage sites".
    pub fn scan(&self, query: &[u8], keys_only: bool) -> Result<Vec<ScanMatch>, LhError> {
        // The scan fan-out span: every ScanReq sent below (including
        // retries) carries this context, so each bucket's scan span —
        // index probe or linear fallback — parents under it.
        let mut span = trace::child_span("lh.scan");
        let _timer = sdds_obs::histogram("lh.scan_seconds").start_timer();
        sdds_obs::counter("lh.scans").inc();
        let extent = self.refresh_image_quiescent()?;
        span.set_detail(extent);
        sdds_obs::counter("lh.scan_fanout_buckets").add(extent);
        let req_id = self.fresh_req_id();
        let msg = Wire::ScanReq {
            req_id,
            client: self.endpoint.id().0,
            query: query.to_vec(),
            keys_only,
        };
        let payload = msg.encode();
        // buckets still owing an answer; lost requests/answers are retried
        let mut outstanding: Vec<u64> = (0..extent).collect();
        let mut matches: HashMap<u64, ScanMatch> = HashMap::new();
        let attempt_timeout = self.timeout.get() / Self::ATTEMPTS;
        if outstanding.is_empty() {
            return Ok(finish(matches));
        }
        for _attempt in 0..Self::ATTEMPTS {
            let mut awaited = std::collections::HashSet::new();
            // Buckets that cannot even be addressed this attempt — dead
            // (no directory entry, awaiting recovery) or unreachable.
            // They stay outstanding: dropping them would let the scan
            // report success while silently missing part of the file.
            let mut dead: Vec<u64> = Vec::new();
            for &addr in &outstanding {
                match self.directory.bucket_site(addr) {
                    Some(site) if self.send_admitted(site, payload.clone()).is_ok() => {
                        awaited.insert(addr);
                    }
                    _ => dead.push(addr),
                }
            }
            if awaited.is_empty() {
                // nothing reachable right now; give a recovery in
                // progress a chance before the next attempt
                outstanding = dead;
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            let gather_timer = sdds_obs::histogram("lh.scan_gather_seconds").start_timer();
            let deadline = Instant::now() + attempt_timeout;
            while !awaited.is_empty() {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let env = match self.endpoint.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                match Wire::decode(&env.payload) {
                    Some(Wire::ScanResp {
                        req_id: rid,
                        bucket,
                        matches: m,
                    }) if rid == req_id => {
                        awaited.remove(&bucket);
                        for sm in m {
                            matches.insert(sm.key, sm);
                        }
                    }
                    _ => continue,
                }
            }
            drop(gather_timer);
            outstanding = awaited.into_iter().chain(dead).collect();
            if outstanding.is_empty() {
                return Ok(finish(matches));
            }
            sdds_obs::counter("lh.scan_retries").inc();
        }
        outstanding.sort_unstable();
        sdds_obs::counter("lh.scan_incomplete").inc();
        Err(LhError::ScanIncomplete {
            missing: outstanding,
        })
    }
}

/// Records one served request's forwarding-hop count. The paper proves at
/// most two hops are ever needed; `lh.requests_hops_gt2` staying zero is
/// that invariant as a queryable metric.
fn record_hops(hops: u8) {
    sdds_obs::counter("lh.requests").inc();
    sdds_obs::counter("lh.hops").add(hops as u64);
    // materialize every bucket so the >2 counter is readable as an
    // explicit 0 — an absent counter would leave the invariant unchecked
    let buckets = [
        sdds_obs::counter("lh.requests_hops_0"),
        sdds_obs::counter("lh.requests_hops_1"),
        sdds_obs::counter("lh.requests_hops_2"),
        sdds_obs::counter("lh.requests_hops_gt2"),
    ];
    buckets[(hops as usize).min(3)].inc();
}

/// Sorted scan output.
fn finish(matches: HashMap<u64, ScanMatch>) -> Vec<ScanMatch> {
    let mut out: Vec<ScanMatch> = matches.into_values().collect();
    out.sort_by_key(|m| m.key);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Directory;
    use sdds_net::{NetConfig, Network};

    /// A client wired to a never-drained "bucket" site behind a bounded
    /// inbox, plus a raw endpoint for stuffing that inbox full.
    fn tiny_inbox_rig(capacity: usize) -> (Network, LhClient, Endpoint, Endpoint) {
        let net = Network::new(NetConfig {
            inbox_capacity: Some(capacity),
            ..NetConfig::default()
        });
        let bucket_ep = net.register();
        let coord_ep = net.register();
        let directory = Arc::new(Directory::new());
        directory.set_bucket(0, bucket_ep.id());
        let client = LhClient::new(net.register(), directory, coord_ep.id());
        let filler = net.register();
        (net, client, bucket_ep, filler)
    }

    #[test]
    fn overloaded_insert_surfaces_error_and_counts_rejections() {
        let (_net, client, bucket_ep, filler) = tiny_inbox_rig(1);
        // one junk message fills the capacity-1 inbox
        filler
            .send(bucket_ep.id(), Bytes::from_static(b"junk"))
            .unwrap();
        client.set_retry_policy(RetryPolicy::none());
        let before = sdds_obs::counter("lh.rejected_total").get();
        let err = client.insert(1, b"v".to_vec()).unwrap_err();
        assert!(
            matches!(err, LhError::Net(NetError::Overloaded(_))),
            "expected Overloaded, got {err:?}"
        );
        // both the image-addressed send and the bucket-0 fallback (the
        // same full site here) were refused
        let after = sdds_obs::counter("lh.rejected_total").get();
        assert!(
            after >= before + 2,
            "rejections must be counted: before={before} after={after}"
        );
    }

    #[test]
    fn retry_policy_rides_out_transient_overload() {
        let (_net, client, bucket_ep, filler) = tiny_inbox_rig(1);
        filler
            .send(bucket_ep.id(), Bytes::from_static(b"junk"))
            .unwrap();
        client.set_retry_policy(RetryPolicy {
            max_retries: 200,
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(1),
        });
        let before = sdds_obs::counter("lh.rejected_total").get();
        // a stand-in bucket 0: drain the blocker after a delay, then
        // serve the (retried) request
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let _ = bucket_ep.recv_timeout(Duration::from_secs(1));
            loop {
                let Ok(env) = bucket_ep.recv_timeout(Duration::from_secs(2)) else {
                    return;
                };
                if let Some(Wire::Request {
                    req_id, client, op, ..
                }) = Wire::decode(&env.payload)
                {
                    let reply = Wire::Response {
                        req_id,
                        result: match op {
                            Op::Insert { .. } => OpResult::Inserted { replaced: false },
                            _ => OpResult::Error {
                                message: "unexpected op".into(),
                            },
                        },
                        served_by: 0,
                        bucket_level: 0,
                        hops: 0,
                    };
                    let _ = bucket_ep.send(SiteId(client), reply.encode());
                    return;
                }
            }
        });
        assert_eq!(
            client.insert(7, b"seven".to_vec()),
            Ok(false),
            "backoff must ride out the transient overload"
        );
        let after = sdds_obs::counter("lh.rejected_total").get();
        assert!(
            after > before,
            "the rejected attempts must be visible in lh.rejected_total"
        );
        server.join().unwrap();
    }
}
